//! Columnar page bodies: position and value arrays with lightweight
//! per-page compression.
//!
//! A page stores its positions and each record column as a separate array.
//! At build time every array picks the cheapest of a small set of encodings
//! (estimated encoded bytes, plain as the fallback):
//!
//! - positions: dense (`first + i`), delta (small positive gaps), or plain;
//! - values: delta (integer columns), run-length, dictionary, or plain.
//!
//! Encodings are chosen per page, so a column can be dictionary-coded on one
//! page and plain on the next. Two contracts keep the encodings invisible to
//! the rest of the engine:
//!
//! 1. **Lossless round trips.** Decoding reproduces the stored values
//!    bit-identically (floats round-trip by bit pattern; run/dictionary
//!    grouping uses strict same-variant equality, never the cross-type
//!    numeric equality of [`Value::total_cmp`], so `Int(2)` and `Float(2.0)`
//!    stay distinct).
//! 2. **Exact in-place predicates.** The filter kernels evaluate
//!    `value op lit` with the same [`Value::total_cmp`] semantics as the
//!    row-at-a-time interpreter — once per run or dictionary entry instead of
//!    once per row — and raise the same type errors whenever a surviving
//!    candidate row would have raised one. Mixed-variant columns fall back to
//!    plain so every encoded column is variant-uniform and error behaviour
//!    stays uniform too.

use std::mem::discriminant;

use seq_core::{CmpOp, Result, SeqError, Value};

/// Approximate in-memory footprint of one value, matching
/// `Record::byte_size`'s per-value accounting.
pub(crate) fn value_bytes(v: &Value) -> usize {
    match v {
        Value::Int(_) | Value::Float(_) => 8,
        Value::Bool(_) => 1,
        Value::Str(s) => 16 + s.len(),
    }
}

/// Strict same-variant equality used for run and dictionary detection.
/// Bitwise on floats (distinct NaN payloads stay distinct) and never
/// cross-variant, so encoding can't conflate `Int(2)` with `Float(2.0)` the
/// way `Value`'s `PartialEq` would. Public so consumers of decoded columns
/// (e.g. run-folding aggregate accumulators) can re-detect the exact runs
/// the encoder saw.
pub fn strict_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => x == y,
        (Value::Float(x), Value::Float(y)) => x.to_bits() == y.to_bits(),
        (Value::Bool(x), Value::Bool(y)) => x == y,
        (Value::Str(x), Value::Str(y)) => x == y,
        _ => false,
    }
}

#[inline]
fn zigzag(d: i64) -> u64 {
    ((d << 1) ^ (d >> 63)) as u64
}

#[inline]
fn unzigzag(z: u64) -> i64 {
    ((z >> 1) as i64) ^ -((z & 1) as i64)
}

#[inline]
fn read_packed(packed: &[u8], width: usize, i: usize) -> u64 {
    let mut v = 0u64;
    for (b, byte) in packed[i * width..(i + 1) * width].iter().enumerate() {
        v |= (*byte as u64) << (8 * b);
    }
    v
}

fn write_packed(packed: &mut Vec<u8>, width: usize, v: u64) {
    packed.extend_from_slice(&v.to_le_bytes()[..width]);
}

/// Smallest of the supported packed widths (1/2/4/8) that holds `z`.
fn width_for(z: u64) -> usize {
    if z <= u8::MAX as u64 {
        1
    } else if z <= u16::MAX as u64 {
        2
    } else if z <= u32::MAX as u64 {
        4
    } else {
        8
    }
}

// ---------------------------------------------------------------------------
// Positions
// ---------------------------------------------------------------------------

/// Encoded page positions (strictly ascending `i64`s).
#[derive(Debug, Clone)]
pub enum PosData {
    /// `pos[i] = first + i` — consecutive positions, O(1) everything.
    Dense {
        /// Position of slot 0.
        first: i64,
        /// Number of slots.
        len: u32,
    },
    /// `pos[0] = first`, `pos[i+1] = pos[i] + deltas[i]` with every gap in
    /// `1..=u32::MAX`.
    Delta {
        /// Position of slot 0.
        first: i64,
        /// Successive gaps, all `>= 1`.
        deltas: Vec<u32>,
    },
    /// Arbitrary sorted positions (gaps too large to delta-encode).
    Plain(Vec<i64>),
}

impl PosData {
    /// Encode a strictly ascending position array, picking the cheapest of
    /// dense / delta / plain.
    pub fn encode(positions: Vec<i64>) -> PosData {
        if positions.is_empty() || positions.len() > u32::MAX as usize {
            return PosData::Plain(positions);
        }
        let mut dense = true;
        let mut small = true;
        for w in positions.windows(2) {
            match w[1].checked_sub(w[0]) {
                Some(1) => {}
                Some(d) if d >= 1 && d <= u32::MAX as i64 => dense = false,
                _ => {
                    small = false;
                    break;
                }
            }
        }
        if !small {
            PosData::Plain(positions)
        } else if dense {
            PosData::Dense { first: positions[0], len: positions.len() as u32 }
        } else {
            let first = positions[0];
            let deltas = positions.windows(2).map(|w| (w[1] - w[0]) as u32).collect();
            PosData::Delta { first, deltas }
        }
    }

    /// Number of slots.
    pub fn len(&self) -> usize {
        match self {
            PosData::Dense { len, .. } => *len as usize,
            PosData::Delta { deltas, .. } => deltas.len() + 1,
            PosData::Plain(v) => v.len(),
        }
    }

    /// Whether the page holds no positions.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Position stored at `slot` (must be `< len`).
    pub fn get(&self, slot: usize) -> i64 {
        match self {
            PosData::Dense { first, .. } => first + slot as i64,
            PosData::Delta { first, deltas } => {
                deltas[..slot].iter().fold(*first, |p, d| p + *d as i64)
            }
            PosData::Plain(v) => v[slot],
        }
    }

    /// First (lowest) position, if any.
    pub fn first(&self) -> Option<i64> {
        match self {
            PosData::Dense { first, .. } | PosData::Delta { first, .. } => Some(*first),
            PosData::Plain(v) => v.first().copied(),
        }
    }

    /// Last (highest) position, if any.
    pub fn last(&self) -> Option<i64> {
        match self {
            PosData::Dense { first, len } => Some(first + (*len as i64 - 1)),
            PosData::Delta { first, deltas } => {
                Some(deltas.iter().fold(*first, |p, d| p + *d as i64))
            }
            PosData::Plain(v) => v.last().copied(),
        }
    }

    /// Index of the first slot with position `>= pos`.
    pub fn lower_bound(&self, pos: i64) -> usize {
        match self {
            PosData::Dense { first, len } => {
                let off = pos as i128 - *first as i128;
                off.clamp(0, *len as i128) as usize
            }
            PosData::Delta { first, deltas } => {
                let mut p = *first;
                if p >= pos {
                    return 0;
                }
                for (i, d) in deltas.iter().enumerate() {
                    p += *d as i64;
                    if p >= pos {
                        return i + 1;
                    }
                }
                deltas.len() + 1
            }
            PosData::Plain(v) => v.partition_point(|p| *p < pos),
        }
    }

    /// Index of the first slot with position `> pos` — i.e. the number of
    /// slots inside a span ending (inclusively) at `pos`.
    pub fn upper_bound(&self, pos: i64) -> usize {
        match self {
            PosData::Dense { first, len } => {
                let off = pos as i128 - *first as i128 + 1;
                off.clamp(0, *len as i128) as usize
            }
            PosData::Delta { first, deltas } => {
                let mut p = *first;
                if p > pos {
                    return 0;
                }
                for (i, d) in deltas.iter().enumerate() {
                    p += *d as i64;
                    if p > pos {
                        return i + 1;
                    }
                }
                deltas.len() + 1
            }
            PosData::Plain(v) => v.partition_point(|p| *p <= pos),
        }
    }

    /// Append the positions of slots `[start, start + take)` to `out`.
    pub fn decode_range_into(&self, out: &mut Vec<i64>, start: usize, take: usize) {
        match self {
            PosData::Dense { first, .. } => {
                let base = first + start as i64;
                out.extend((0..take as i64).map(|i| base + i));
            }
            PosData::Delta { first, deltas } => {
                let mut p = deltas[..start].iter().fold(*first, |p, d| p + *d as i64);
                if take > 0 {
                    out.push(p);
                    for d in &deltas[start..start + take - 1] {
                        p += *d as i64;
                        out.push(p);
                    }
                }
            }
            PosData::Plain(v) => out.extend_from_slice(&v[start..start + take]),
        }
    }

    /// Append the positions of the given ascending `slots` to `out`.
    pub fn gather_into(&self, out: &mut Vec<i64>, slots: &[u32]) {
        match self {
            PosData::Dense { first, .. } => {
                out.extend(slots.iter().map(|s| first + *s as i64));
            }
            PosData::Delta { first, deltas } => {
                // Single forward walk: slots are ascending.
                let mut p = *first;
                let mut at = 0usize;
                for &s in slots {
                    let s = s as usize;
                    while at < s {
                        p += deltas[at] as i64;
                        at += 1;
                    }
                    out.push(p);
                }
            }
            PosData::Plain(v) => out.extend(slots.iter().map(|s| v[*s as usize])),
        }
    }

    /// Approximate encoded footprint in bytes.
    pub fn byte_size(&self) -> usize {
        match self {
            PosData::Dense { .. } => 12,
            PosData::Delta { deltas, .. } => 12 + 4 * deltas.len(),
            PosData::Plain(v) => 8 * v.len(),
        }
    }

    /// Short name of the chosen encoding.
    pub fn label(&self) -> &'static str {
        match self {
            PosData::Dense { .. } => "dense",
            PosData::Delta { .. } => "delta",
            PosData::Plain(_) => "plain",
        }
    }
}

// ---------------------------------------------------------------------------
// Value columns
// ---------------------------------------------------------------------------

/// Largest dictionary the dictionary encoding will build (codes are `u8`).
const DICT_MAX: usize = 256;

/// One encoded value column of a page.
#[derive(Debug, Clone)]
pub enum ColumnData {
    /// Values stored as-is: the fallback, and the only representation for
    /// mixed-variant columns.
    Plain(Vec<Value>),
    /// Integer column stored as a first value plus zigzag deltas packed at a
    /// fixed byte width. Wrapping arithmetic makes the round trip lossless
    /// for the full `i64` range.
    IntDelta {
        /// Value at slot 0.
        first: i64,
        /// Bytes per packed delta (1, 2, 4, or 8).
        width: u8,
        /// `len - 1` little-endian deltas, `width` bytes each.
        packed: Vec<u8>,
    },
    /// Run-length encoding: run `k` covers slots `ends[k-1]..ends[k]`
    /// (with `ends[-1] == 0`) and holds `values[k]`.
    Rle {
        /// One representative value per run.
        values: Vec<Value>,
        /// Cumulative (exclusive) run end slots; the last entry is the
        /// column length.
        ends: Vec<u32>,
    },
    /// Dictionary encoding: `codes[i]` indexes `dict`.
    Dict {
        /// Distinct values in first-occurrence order (at most 256).
        dict: Vec<Value>,
        /// Per-slot dictionary codes.
        codes: Vec<u8>,
    },
}

impl ColumnData {
    /// Encode one column, picking the cheapest representation by estimated
    /// encoded bytes. Mixed-variant and empty columns stay plain.
    pub fn encode(values: Vec<Value>) -> ColumnData {
        let n = values.len();
        if n == 0 || n > u32::MAX as usize {
            return ColumnData::Plain(values);
        }
        let uniform = values.windows(2).all(|w| discriminant(&w[0]) == discriminant(&w[1]));
        if !uniform {
            return ColumnData::Plain(values);
        }

        let plain_cost: usize = values.iter().map(value_bytes).sum();
        let mut best_cost = plain_cost;
        // 0 = plain, 1 = delta, 2 = rle, 3 = dict.
        let mut choice = 0u8;

        // Integer delta: applicable to all-Int columns.
        let mut delta_width = 1usize;
        if let Value::Int(first) = values[0] {
            let mut prev = first;
            let mut max_z = 0u64;
            for v in &values[1..] {
                let Value::Int(i) = v else { unreachable!("uniform Int column") };
                max_z = max_z.max(zigzag(i.wrapping_sub(prev)));
                prev = *i;
            }
            delta_width = width_for(max_z);
            let delta_cost = 9 + (n - 1) * delta_width;
            if delta_cost < best_cost {
                best_cost = delta_cost;
                choice = 1;
            }
        }

        // Run-length: cost is one length plus one representative per run.
        let mut rle_cost = 4 + value_bytes(&values[0]);
        for w in values.windows(2) {
            if !strict_eq(&w[0], &w[1]) {
                rle_cost += 4 + value_bytes(&w[1]);
            }
        }
        if rle_cost < best_cost {
            best_cost = rle_cost;
            choice = 2;
        }

        // Dictionary: distinct values capped at DICT_MAX, one code byte per
        // slot plus the dictionary itself.
        let mut dict: Vec<&Value> = Vec::new();
        let mut dict_ok = true;
        for v in &values {
            if !dict.iter().any(|d| strict_eq(d, v)) {
                if dict.len() == DICT_MAX {
                    dict_ok = false;
                    break;
                }
                dict.push(v);
            }
        }
        if dict_ok {
            let dict_cost = n + dict.iter().map(|v| value_bytes(v)).sum::<usize>();
            if dict_cost < best_cost {
                choice = 3;
            }
        }

        match choice {
            1 => {
                let Value::Int(first) = values[0] else { unreachable!() };
                let mut packed = Vec::with_capacity((n - 1) * delta_width);
                let mut prev = first;
                for v in &values[1..] {
                    let Value::Int(i) = v else { unreachable!() };
                    write_packed(&mut packed, delta_width, zigzag(i.wrapping_sub(prev)));
                    prev = *i;
                }
                ColumnData::IntDelta { first, width: delta_width as u8, packed }
            }
            2 => {
                let mut reps = Vec::new();
                let mut ends = Vec::new();
                for (i, v) in values.iter().enumerate() {
                    if i == 0 || !strict_eq(v, &values[i - 1]) {
                        reps.push(v.clone());
                        ends.push(i as u32 + 1);
                    } else {
                        *ends.last_mut().expect("non-empty run list") = i as u32 + 1;
                    }
                }
                ColumnData::Rle { values: reps, ends }
            }
            3 => {
                let dict: Vec<Value> = dict.into_iter().cloned().collect();
                let codes = values
                    .iter()
                    .map(|v| {
                        dict.iter().position(|d| strict_eq(d, v)).expect("value in dict") as u8
                    })
                    .collect();
                ColumnData::Dict { dict, codes }
            }
            _ => ColumnData::Plain(values),
        }
    }

    /// Number of slots in the column.
    pub fn len(&self) -> usize {
        match self {
            ColumnData::Plain(v) => v.len(),
            ColumnData::IntDelta { width, packed, .. } => packed.len() / *width as usize + 1,
            ColumnData::Rle { ends, .. } => ends.last().map_or(0, |e| *e as usize),
            ColumnData::Dict { codes, .. } => codes.len(),
        }
    }

    /// Whether the column holds no values.
    pub fn is_empty(&self) -> bool {
        matches!(self, ColumnData::Plain(v) if v.is_empty())
    }

    /// The value stored at `slot` (must be `< len`).
    pub fn value_at(&self, slot: usize) -> Value {
        match self {
            ColumnData::Plain(v) => v[slot].clone(),
            ColumnData::IntDelta { first, width, packed } => {
                let w = *width as usize;
                let mut x = *first;
                for i in 0..slot {
                    x = x.wrapping_add(unzigzag(read_packed(packed, w, i)));
                }
                Value::Int(x)
            }
            ColumnData::Rle { values, ends } => {
                let run = ends.partition_point(|e| *e as usize <= slot);
                values[run].clone()
            }
            ColumnData::Dict { dict, codes } => dict[codes[slot] as usize].clone(),
        }
    }

    /// Append the decoded values of slots `[start, start + take)` to `out`.
    /// Returns the approximate plain byte footprint of what was appended.
    pub fn decode_range_into(&self, out: &mut Vec<Value>, start: usize, take: usize) -> usize {
        if take == 0 {
            // Degenerate window: skip the delta prefix walk, which would
            // otherwise read one past the packed array when `start == len`.
            return 0;
        }
        match self {
            ColumnData::Plain(v) => {
                let src = &v[start..start + take];
                out.extend_from_slice(src);
                src.iter().map(value_bytes).sum()
            }
            ColumnData::IntDelta { first, width, packed } => {
                let w = *width as usize;
                let mut x = *first;
                for i in 0..start {
                    x = x.wrapping_add(unzigzag(read_packed(packed, w, i)));
                }
                if take > 0 {
                    out.push(Value::Int(x));
                    for i in start..start + take - 1 {
                        x = x.wrapping_add(unzigzag(read_packed(packed, w, i)));
                        out.push(Value::Int(x));
                    }
                }
                8 * take
            }
            ColumnData::Rle { values, ends } => {
                let mut bytes = 0usize;
                let mut run = ends.partition_point(|e| *e as usize <= start);
                let mut at = start;
                let stop = start + take;
                while at < stop {
                    let end = (ends[run] as usize).min(stop);
                    let v = &values[run];
                    bytes += value_bytes(v) * (end - at);
                    out.extend(std::iter::repeat_with(|| v.clone()).take(end - at));
                    at = end;
                    run += 1;
                }
                bytes
            }
            ColumnData::Dict { dict, codes } => {
                let mut bytes = 0usize;
                for &c in &codes[start..start + take] {
                    let v = &dict[c as usize];
                    bytes += value_bytes(v);
                    out.push(v.clone());
                }
                bytes
            }
        }
    }

    /// Append the decoded values of the given ascending `slots` to `out`.
    /// Returns the approximate plain byte footprint of what was appended.
    pub fn gather_into(&self, out: &mut Vec<Value>, slots: &[u32]) -> usize {
        match self {
            ColumnData::Plain(v) => {
                let mut bytes = 0usize;
                for &s in slots {
                    let v = &v[s as usize];
                    bytes += value_bytes(v);
                    out.push(v.clone());
                }
                bytes
            }
            ColumnData::IntDelta { first, width, packed } => {
                // Single forward walk: slots are ascending.
                let w = *width as usize;
                let mut x = *first;
                let mut at = 0usize;
                for &s in slots {
                    let s = s as usize;
                    while at < s {
                        x = x.wrapping_add(unzigzag(read_packed(packed, w, at)));
                        at += 1;
                    }
                    out.push(Value::Int(x));
                }
                8 * slots.len()
            }
            ColumnData::Rle { values, ends } => {
                let mut bytes = 0usize;
                let mut run = 0usize;
                for &s in slots {
                    while ends[run] as usize <= s as usize {
                        run += 1;
                    }
                    let v = &values[run];
                    bytes += value_bytes(v);
                    out.push(v.clone());
                }
                bytes
            }
            ColumnData::Dict { dict, codes } => {
                let mut bytes = 0usize;
                for &s in slots {
                    let v = &dict[codes[s as usize] as usize];
                    bytes += value_bytes(v);
                    out.push(v.clone());
                }
                bytes
            }
        }
    }

    /// Append to `out` every slot in `[start, end)` whose value satisfies
    /// `value op lit`, evaluating the predicate in place over the encoding:
    /// once per run for RLE, once per dictionary entry for dictionaries, and
    /// per slot (over the sequential decode) otherwise. Comparison semantics
    /// and type errors match the row-at-a-time interpreter exactly; when no
    /// slot is in range nothing is evaluated, mirroring the short-circuit of
    /// the row kernel.
    pub fn matching_slots(
        &self,
        start: usize,
        end: usize,
        op: CmpOp,
        lit: &Value,
        out: &mut Vec<u32>,
    ) -> Result<()> {
        if start >= end {
            return Ok(());
        }
        match self {
            // The literal's variant is fixed for the whole window, so the
            // numeric cases compare raw machine values per slot instead of
            // re-dispatching on both enum discriminants; any non-matching
            // element variant falls back to the general comparison, keeping
            // mixed-type and error semantics bit-identical.
            ColumnData::Plain(v) => match lit {
                Value::Float(x) => {
                    for (i, val) in v[start..end].iter().enumerate() {
                        let ord = match val {
                            Value::Float(f) => f.total_cmp(x),
                            other => other.total_cmp(lit)?,
                        };
                        if op.holds(ord) {
                            out.push((start + i) as u32);
                        }
                    }
                }
                Value::Int(x) => {
                    for (i, val) in v[start..end].iter().enumerate() {
                        let ord = match val {
                            Value::Int(n) => n.cmp(x),
                            other => other.total_cmp(lit)?,
                        };
                        if op.holds(ord) {
                            out.push((start + i) as u32);
                        }
                    }
                }
                _ => {
                    for (i, val) in v[start..end].iter().enumerate() {
                        if op.holds(val.total_cmp(lit)?) {
                            out.push((start + i) as u32);
                        }
                    }
                }
            },
            ColumnData::IntDelta { first, width, packed } => {
                let w = *width as usize;
                let mut x = *first;
                for i in 0..start {
                    x = x.wrapping_add(unzigzag(read_packed(packed, w, i)));
                }
                // Same literal hoist as the plain numeric cases.
                let int_lit = match lit {
                    Value::Int(n) => Some(*n),
                    _ => None,
                };
                for s in start..end {
                    if s > start {
                        x = x.wrapping_add(unzigzag(read_packed(packed, w, s - 1)));
                    }
                    let ord = match int_lit {
                        Some(n) => x.cmp(&n),
                        None => Value::Int(x).total_cmp(lit)?,
                    };
                    if op.holds(ord) {
                        out.push(s as u32);
                    }
                }
            }
            ColumnData::Rle { values, ends } => {
                let mut run = ends.partition_point(|e| *e as usize <= start);
                let mut at = start;
                while at < end {
                    let run_end = (ends[run] as usize).min(end);
                    if op.holds(values[run].total_cmp(lit)?) {
                        out.extend((at..run_end).map(|s| s as u32));
                    }
                    at = run_end;
                    run += 1;
                }
            }
            ColumnData::Dict { dict, codes } => {
                let mask = dict
                    .iter()
                    .map(|d| Ok(op.holds(d.total_cmp(lit)?)))
                    .collect::<Result<Vec<bool>>>()?;
                for (i, &c) in codes[start..end].iter().enumerate() {
                    if mask[c as usize] {
                        out.push((start + i) as u32);
                    }
                }
            }
        }
        Ok(())
    }

    /// Retain only the (ascending) `slots` whose value satisfies
    /// `value op lit`. Same in-place evaluation and error contract as
    /// [`ColumnData::matching_slots`].
    pub fn retain_matching(&self, slots: &mut Vec<u32>, op: CmpOp, lit: &Value) -> Result<()> {
        if slots.is_empty() {
            return Ok(());
        }
        match self {
            ColumnData::Plain(v) => {
                let mut err = None;
                slots.retain(|&s| {
                    if err.is_some() {
                        return false;
                    }
                    match v[s as usize].total_cmp(lit) {
                        Ok(ord) => op.holds(ord),
                        Err(e) => {
                            err = Some(e);
                            false
                        }
                    }
                });
                if let Some(e) = err {
                    return Err(e);
                }
            }
            ColumnData::IntDelta { first, width, packed } => {
                // Single forward walk (`retain` visits in order).
                let w = *width as usize;
                let mut x = *first;
                let mut at = 0usize;
                let mut err = None;
                slots.retain(|&s| {
                    if err.is_some() {
                        return false;
                    }
                    let s = s as usize;
                    while at < s {
                        x = x.wrapping_add(unzigzag(read_packed(packed, w, at)));
                        at += 1;
                    }
                    match Value::Int(x).total_cmp(lit) {
                        Ok(ord) => op.holds(ord),
                        Err(e) => {
                            err = Some(e);
                            false
                        }
                    }
                });
                if let Some(e) = err {
                    return Err(e);
                }
            }
            ColumnData::Rle { values, ends } => {
                // One evaluation per run actually touched by a candidate.
                let mut run = 0usize;
                let mut run_holds = false;
                let mut evaluated = false;
                let mut err = None;
                slots.retain(|&s| {
                    if err.is_some() {
                        return false;
                    }
                    while ends[run] as usize <= s as usize {
                        run += 1;
                        evaluated = false;
                    }
                    if !evaluated {
                        match values[run].total_cmp(lit) {
                            Ok(ord) => run_holds = op.holds(ord),
                            Err(e) => {
                                err = Some(e);
                                return false;
                            }
                        }
                        evaluated = true;
                    }
                    run_holds
                });
                if let Some(e) = err {
                    return Err(e);
                }
            }
            ColumnData::Dict { dict, codes } => {
                let mask = dict
                    .iter()
                    .map(|d| Ok(op.holds(d.total_cmp(lit)?)))
                    .collect::<Result<Vec<bool>>>()?;
                slots.retain(|&s| mask[codes[s as usize] as usize]);
            }
        }
        Ok(())
    }

    /// The per-entry match bitmap of a dictionary-encoded column for
    /// `entry op lit`: `mask[code]` is true iff dictionary entry `code`
    /// satisfies the term. `None` when the column is not
    /// dictionary-encoded. Building the mask evaluates every entry once
    /// (the same eager evaluation [`ColumnData::matching_slots`] performs
    /// for Dict), so a conjunction can AND several term masks together and
    /// pay one codes pass total instead of one per term.
    pub fn dict_entry_mask(&self, op: CmpOp, lit: &Value) -> Option<Result<Vec<bool>>> {
        match self {
            ColumnData::Dict { dict, .. } => {
                Some(dict.iter().map(|d| Ok(op.holds(d.total_cmp(lit)?))).collect())
            }
            _ => None,
        }
    }

    /// Append to `out` every slot in `[start, end)` whose dictionary code
    /// passes `mask`. Dict columns only; `mask` comes from
    /// [`ColumnData::dict_entry_mask`] (possibly ANDed across terms).
    pub fn matching_slots_masked(
        &self,
        start: usize,
        end: usize,
        mask: &[bool],
        out: &mut Vec<u32>,
    ) {
        match self {
            ColumnData::Dict { codes, .. } => {
                for (i, &c) in codes[start..end].iter().enumerate() {
                    if mask[c as usize] {
                        out.push((start + i) as u32);
                    }
                }
            }
            _ => debug_assert!(false, "masked matching on a non-dict column"),
        }
    }

    /// Retain only the (ascending) `slots` whose dictionary code passes
    /// `mask`. Dict columns only.
    pub fn retain_matching_masked(&self, slots: &mut Vec<u32>, mask: &[bool]) {
        match self {
            ColumnData::Dict { codes, .. } => {
                slots.retain(|&s| mask[codes[s as usize] as usize]);
            }
            _ => debug_assert!(false, "masked retain on a non-dict column"),
        }
    }

    /// Whether *any* value stored in the column could satisfy
    /// `value op lit`, judged entirely in the encoded domain: RLE run
    /// representatives and dictionary entries are compared directly — one
    /// evaluation per run or entry, never a per-slot decode. Plain and
    /// delta columns answer `true` (their zone map min/max already bounds
    /// them; enumerating slots here would amount to reading the page).
    /// Cross-type comparisons stay conservative (`true`, no skip), matching
    /// the zone-map contract.
    pub fn may_match(&self, op: CmpOp, lit: &Value) -> bool {
        match self {
            ColumnData::Rle { values, .. } => {
                values.iter().any(|v| v.total_cmp(lit).map_or(true, |ord| op.holds(ord)))
            }
            ColumnData::Dict { dict, .. } => {
                dict.iter().any(|v| v.total_cmp(lit).map_or(true, |ord| op.holds(ord)))
            }
            ColumnData::Plain(_) | ColumnData::IntDelta { .. } => true,
        }
    }

    /// The `[min, max]` value range of the column, derived from the encoded
    /// representation (frame-of-reference bounds for zone maps):
    ///
    /// - **IntDelta** walks the packed zigzag deltas once with pure integer
    ///   arithmetic — no `Value` allocation and no `total_cmp` per slot;
    /// - **RLE** folds over the run representatives only (O(runs));
    /// - **Dict** folds over the dictionary entries only (O(distinct));
    /// - **Plain** falls back to a `total_cmp` scan over the values.
    ///
    /// Returns `None` for an empty column or when the values are not
    /// totally ordered against each other (mixed types — only possible for
    /// Plain, the sole encoding that admits them); such a column gets an
    /// unbounded zone entry that never justifies a skip. The bounds are
    /// exactly the ones a plain-value scan would produce: every encoding is
    /// lossless, and RLE/Dict representatives cover every stored value.
    pub fn value_bounds(&self) -> Option<(Value, Value)> {
        fn fold<'v>(values: impl Iterator<Item = &'v Value>) -> Option<(Value, Value)> {
            let mut best: Option<(&Value, &Value)> = None;
            for v in values {
                best = match best {
                    None => Some((v, v)),
                    Some((mn, mx)) => match (v.total_cmp(mn), v.total_cmp(mx)) {
                        (Ok(lo), Ok(hi)) => Some((
                            if lo == std::cmp::Ordering::Less { v } else { mn },
                            if hi == std::cmp::Ordering::Greater { v } else { mx },
                        )),
                        _ => return None,
                    },
                };
            }
            best.map(|(mn, mx)| (mn.clone(), mx.clone()))
        }
        match self {
            ColumnData::Plain(v) => fold(v.iter()),
            ColumnData::IntDelta { first, width, packed } => {
                let w = *width as usize;
                let (mut x, mut mn, mut mx) = (*first, *first, *first);
                for i in 0..packed.len() / w {
                    x = x.wrapping_add(unzigzag(read_packed(packed, w, i)));
                    mn = mn.min(x);
                    mx = mx.max(x);
                }
                Some((Value::Int(mn), Value::Int(mx)))
            }
            ColumnData::Rle { values, .. } => fold(values.iter()),
            ColumnData::Dict { dict, .. } => fold(dict.iter()),
        }
    }

    /// Approximate encoded footprint in bytes.
    pub fn byte_size(&self) -> usize {
        match self {
            ColumnData::Plain(v) => v.iter().map(value_bytes).sum(),
            ColumnData::IntDelta { packed, .. } => 9 + packed.len(),
            ColumnData::Rle { values, ends } => {
                4 * ends.len() + values.iter().map(value_bytes).sum::<usize>()
            }
            ColumnData::Dict { dict, codes } => {
                codes.len() + dict.iter().map(value_bytes).sum::<usize>()
            }
        }
    }

    /// Short name of the chosen encoding.
    pub fn label(&self) -> &'static str {
        match self {
            ColumnData::Plain(_) => "plain",
            ColumnData::IntDelta { .. } => "delta",
            ColumnData::Rle { .. } => "rle",
            ColumnData::Dict { .. } => "dict",
        }
    }
}

/// Column index out of range for a page: mirrors the schema error the
/// row-at-a-time kernel raises for a bad column reference.
pub(crate) fn column_range_error(col: usize, arity: usize) -> SeqError {
    SeqError::Schema(format!("column index {col} out of range for arity {arity}"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn decode_all(c: &ColumnData) -> Vec<Value> {
        let mut out = Vec::new();
        c.decode_range_into(&mut out, 0, c.len());
        out
    }

    #[test]
    fn positions_pick_dense_delta_plain() {
        let d = PosData::encode((10..20).collect());
        assert_eq!(d.label(), "dense");
        assert_eq!(d.len(), 10);
        assert_eq!(d.first(), Some(10));
        assert_eq!(d.last(), Some(19));

        let g = PosData::encode(vec![1, 4, 9, 100]);
        assert_eq!(g.label(), "delta");
        assert_eq!((g.first(), g.last()), (Some(1), Some(100)));

        let p = PosData::encode(vec![i64::MIN, 0, i64::MAX]);
        assert_eq!(p.label(), "plain");
        assert_eq!(p.last(), Some(i64::MAX));
    }

    #[test]
    fn position_bounds_agree_with_plain() {
        for positions in [vec![2, 5, 9], vec![3, 4, 5, 6], vec![-5, 0, 7, 1_000_000]] {
            let enc = PosData::encode(positions.clone());
            for probe in [-10i64, 0, 2, 3, 5, 6, 9, 10, 999_999, 1_000_000, 2_000_000] {
                assert_eq!(
                    enc.lower_bound(probe),
                    positions.partition_point(|p| *p < probe),
                    "lower_bound({probe}) on {positions:?}"
                );
                assert_eq!(
                    enc.upper_bound(probe),
                    positions.partition_point(|p| *p <= probe),
                    "upper_bound({probe}) on {positions:?}"
                );
            }
            for (i, p) in positions.iter().enumerate() {
                assert_eq!(enc.get(i), *p);
            }
            let mut dec = Vec::new();
            enc.decode_range_into(&mut dec, 1, positions.len() - 1);
            assert_eq!(dec, positions[1..]);
            let mut gathered = Vec::new();
            let slots: Vec<u32> = (0..positions.len() as u32).collect();
            enc.gather_into(&mut gathered, &slots);
            assert_eq!(gathered, positions);
        }
    }

    #[test]
    fn sequential_ints_delta_encode() {
        let vals: Vec<Value> = (0..64).map(|i| Value::Int(100 + i)).collect();
        let c = ColumnData::encode(vals.clone());
        assert_eq!(c.label(), "delta");
        assert!(c.byte_size() < 64 * 8);
        assert_eq!(decode_all(&c), vals);
        assert_eq!(c.value_at(17), Value::Int(117));
    }

    #[test]
    fn extreme_int_deltas_round_trip() {
        let vals = vec![
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::Int(0),
            Value::Int(-1),
            Value::Int(i64::MAX),
        ];
        // Deltas overflow i64; wrapping zigzag still round-trips (the
        // heuristic picks plain here — 8-byte deltas save nothing).
        let c = ColumnData::encode(vals.clone());
        assert_eq!(decode_all(&c), vals);
    }

    #[test]
    fn constant_column_rle_encodes() {
        let vals: Vec<Value> = vec![Value::Float(2.5); 50];
        let c = ColumnData::encode(vals.clone());
        assert_eq!(c.label(), "rle");
        assert_eq!(c.byte_size(), 4 + 8);
        assert_eq!(decode_all(&c), vals);
    }

    #[test]
    fn low_cardinality_strings_dict_encode() {
        let vals: Vec<Value> = (0..60)
            .map(|i| Value::str(["aaaaaaaaaa", "bbbbbbbbbb", "cccccccccc"][i % 3]))
            .collect();
        let c = ColumnData::encode(vals.clone());
        assert_eq!(c.label(), "dict");
        let dec = decode_all(&c);
        assert_eq!(dec.len(), vals.len());
        for (a, b) in dec.iter().zip(&vals) {
            assert!(strict_eq(a, b));
        }
    }

    #[test]
    fn mixed_variant_column_stays_plain() {
        let vals = vec![Value::Int(1), Value::Bool(true), Value::Int(2)];
        let c = ColumnData::encode(vals.clone());
        assert_eq!(c.label(), "plain");
        assert_eq!(decode_all(&c), vals);
    }

    #[test]
    fn mixed_numeric_column_stays_plain() {
        // Int(2) and Float(2.0) compare equal under total_cmp but must not
        // be conflated by an encoding.
        let vals = vec![Value::Int(2), Value::Float(2.0), Value::Int(2)];
        let c = ColumnData::encode(vals.clone());
        assert_eq!(c.label(), "plain");
        let dec = decode_all(&c);
        assert!(matches!(dec[0], Value::Int(2)));
        assert!(matches!(dec[1], Value::Float(f) if f == 2.0));
    }

    #[test]
    fn nan_payloads_round_trip_bitwise() {
        let weird = f64::from_bits(0x7ff8_0000_0000_0001);
        let vals = vec![Value::Float(f64::NAN), Value::Float(weird), Value::Float(f64::NAN)];
        let c = ColumnData::encode(vals.clone());
        let dec = decode_all(&c);
        for (a, b) in dec.iter().zip(&vals) {
            assert!(strict_eq(a, b));
        }
    }

    #[test]
    fn empty_column_is_plain_and_empty() {
        let c = ColumnData::encode(Vec::new());
        assert_eq!(c.label(), "plain");
        assert_eq!(c.len(), 0);
        assert!(c.is_empty());
        let mut out = Vec::new();
        assert_eq!(c.decode_range_into(&mut out, 0, 0), 0);
        assert!(out.is_empty());
        let p = PosData::encode(Vec::new());
        assert_eq!(p.len(), 0);
        assert!(p.is_empty());
        assert_eq!(p.first(), None);
    }

    #[test]
    fn filter_kernels_match_per_slot_evaluation() {
        let columns = [
            ColumnData::encode((0..40).map(|i| Value::Int(i / 5)).collect()),
            ColumnData::encode((0..40).map(|i| Value::Int(i * 3)).collect()),
            ColumnData::encode((0..40).map(|i| Value::Float((i % 4) as f64)).collect()),
            ColumnData::encode(
                (0..40).map(|i| Value::str(if i % 7 < 3 { "lo" } else { "hi" })).collect(),
            ),
            // Long float runs → RLE; incompressible floats → plain.
            ColumnData::encode((0..40).map(|i| Value::Float((i / 10) as f64)).collect()),
            ColumnData::encode((0..40).map(|i| Value::Float(i as f64 * 1.7)).collect()),
        ];
        let labels: std::collections::BTreeSet<_> = columns.iter().map(|c| c.label()).collect();
        for want in ["delta", "dict", "rle", "plain"] {
            assert!(labels.contains(want), "no column picked {want}: {labels:?}");
        }
        let lits = [Value::Int(4), Value::Float(2.0), Value::str("lo")];
        for c in &columns {
            for op in [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge] {
                for lit in &lits {
                    let reference: Result<Vec<u32>> = (5..35)
                        .map(|s| Ok((s, op.holds(c.value_at(s as usize).total_cmp(lit)?))))
                        .collect::<Result<Vec<_>>>()
                        .map(|v| v.into_iter().filter(|(_, k)| *k).map(|(s, _)| s).collect());
                    let mut got = Vec::new();
                    let r = c.matching_slots(5, 35, op, lit, &mut got);
                    match (&reference, &r) {
                        (Ok(want), Ok(())) => assert_eq!(&got, want, "{op:?} {lit} {}", c.label()),
                        (Err(_), Err(_)) => {}
                        other => panic!("kernel/reference disagree: {other:?}"),
                    }
                    // retain_matching agrees with matching_slots.
                    let mut all: Vec<u32> = (5..35).collect();
                    let r2 = c.retain_matching(&mut all, op, lit);
                    match (&r, &r2) {
                        (Ok(()), Ok(())) => assert_eq!(all, got),
                        (Err(a), Err(b)) => assert_eq!(a, b),
                        other => panic!("retain/matching disagree: {other:?}"),
                    }
                }
            }
        }
    }

    #[test]
    fn empty_candidate_sets_never_evaluate() {
        // A string column compared against an Int would error — but only if
        // some candidate slot forces an evaluation.
        let c = ColumnData::encode(vec![Value::str("a"); 10]);
        let mut out = Vec::new();
        assert!(c.matching_slots(3, 3, CmpOp::Eq, &Value::Int(1), &mut out).is_ok());
        let mut none: Vec<u32> = Vec::new();
        assert!(c.retain_matching(&mut none, CmpOp::Eq, &Value::Int(1)).is_ok());
        assert!(c.matching_slots(0, 1, CmpOp::Eq, &Value::Int(1), &mut out).is_err());
    }

    #[test]
    fn gather_walks_ascending_slots() {
        let c = ColumnData::encode((0..30).map(|i| Value::Int(i * i)).collect());
        let mut out = Vec::new();
        let bytes = c.gather_into(&mut out, &[0, 3, 7, 8, 29]);
        assert_eq!(bytes, 5 * 8);
        assert_eq!(
            out,
            vec![Value::Int(0), Value::Int(9), Value::Int(49), Value::Int(64), Value::Int(841)]
        );
    }

    #[test]
    fn pick_cheapest_prefers_smaller_encoding() {
        // Long runs of a wide string: RLE beats dict (fewer entries) and
        // plain by a wide margin.
        let mut vals = Vec::new();
        for r in 0..4 {
            for _ in 0..25 {
                vals.push(Value::str(format!("run-value-{r}-padded-out-to-be-long")));
            }
        }
        let c = ColumnData::encode(vals.clone());
        assert_eq!(c.label(), "rle");
        let plain: usize = vals.iter().map(value_bytes).sum();
        assert!(c.byte_size() * 4 < plain, "{} !< {plain}/4", c.byte_size());
    }
}
