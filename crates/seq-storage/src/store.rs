//! Paged stored sequences with access accounting.
//!
//! [`StoredSequence`] is the physical representation of a base sequence:
//! records packed into fixed-capacity pages in position order, a sparse
//! position index for probed access, and shared [`AccessStats`] counters
//! charged on every page touch. An optional [`BufferPool`] decides whether a
//! page touch is a (cheap) hit or a (charged) read.

use std::sync::Arc;

use seq_core::{
    BaseSequence, CmpOp, Record, RecordBatch, Result, Schema, SeqMeta, Sequence, Span, Value,
};

use crate::buffer::{BufferPool, PageAccess, StoreId};
use crate::filter::ScanFilter;
use crate::index::SparseIndex;
use crate::page::{ColumnSet, DecodedRows, DictMasks, Page, PageId};
use crate::stats::AccessStats;

/// Default number of records per page. With ~16-byte records this models a
/// small page; experiments that care set their own capacity.
pub const DEFAULT_PAGE_CAPACITY: usize = 64;

/// How many pages of one column chose each encoding. Encodings are picked
/// per page, so a column is described by a mix, not a single label.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ColumnEncodingMix {
    /// Pages storing the column plain.
    pub plain: u32,
    /// Pages storing the column delta-encoded.
    pub delta: u32,
    /// Pages storing the column run-length-encoded.
    pub rle: u32,
    /// Pages storing the column dictionary-encoded.
    pub dict: u32,
}

impl ColumnEncodingMix {
    fn bump(&mut self, label: &str) {
        match label {
            "delta" => self.delta += 1,
            "rle" => self.rle += 1,
            "dict" => self.dict += 1,
            _ => self.plain += 1,
        }
    }

    /// The encoding chosen by the most pages (ties prefer the compressed
    /// encodings in delta/rle/dict order).
    pub fn dominant(&self) -> &'static str {
        let mut best = ("plain", self.plain);
        for (label, n) in [("dict", self.dict), ("rle", self.rle), ("delta", self.delta)] {
            if n >= best.1 && n > 0 {
                best = (label, n);
            }
        }
        best.0
    }
}

impl std::fmt::Display for ColumnEncodingMix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.dominant())
    }
}

/// Per-sequence compression summary, computed once at build time from the
/// encoded pages (consulting it never touches a page).
#[derive(Debug, Clone, Default)]
pub struct CompressionStats {
    /// Decoded (row-equivalent) byte footprint of all pages.
    pub plain_bytes: u64,
    /// Encoded byte footprint of all pages.
    pub encoded_bytes: u64,
    /// Encoding mix of each record column across pages.
    pub columns: Vec<ColumnEncodingMix>,
}

impl CompressionStats {
    fn from_pages(pages: &[Page], arity: usize) -> CompressionStats {
        let mut c = CompressionStats {
            plain_bytes: 0,
            encoded_bytes: 0,
            columns: vec![ColumnEncodingMix::default(); arity],
        };
        for page in pages {
            c.plain_bytes += page.plain_bytes() as u64;
            c.encoded_bytes += page.encoded_bytes() as u64;
            for (col, label) in page.column_encodings().enumerate() {
                c.columns[col].bump(label);
            }
        }
        c
    }

    /// Encoded-to-plain size ratio (`1.0` when nothing is stored or nothing
    /// compressed; smaller is better).
    pub fn ratio(&self) -> f64 {
        if self.plain_bytes == 0 {
            1.0
        } else {
            self.encoded_bytes as f64 / self.plain_bytes as f64
        }
    }
}

/// A physically stored base sequence.
pub struct StoredSequence {
    store_id: StoreId,
    name: String,
    schema: Schema,
    meta: SeqMeta,
    /// Shared behind an `Arc` so a re-statted view of the same physical
    /// pages ([`StoredSequence::with_stats`]) costs no page copies.
    pages: Arc<[Page]>,
    index: SparseIndex,
    record_count: u64,
    compression: CompressionStats,
    stats: Arc<AccessStats>,
    buffer: Option<Arc<BufferPool>>,
}

impl std::fmt::Debug for StoredSequence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StoredSequence")
            .field("name", &self.name)
            .field("store_id", &self.store_id)
            .field("pages", &self.pages.len())
            .field("records", &self.record_count)
            .field("meta", &self.meta)
            .finish()
    }
}

impl StoredSequence {
    /// Materialize an in-memory base sequence into pages of `page_capacity`
    /// records each.
    pub fn from_base(
        store_id: StoreId,
        name: impl Into<String>,
        base: &BaseSequence,
        page_capacity: usize,
        stats: Arc<AccessStats>,
        buffer: Option<Arc<BufferPool>>,
    ) -> StoredSequence {
        assert!(page_capacity > 0, "page capacity must be positive");
        let entries = base.entries();
        let mut pages = Vec::with_capacity(entries.len().div_ceil(page_capacity));
        for (i, chunk) in entries.chunks(page_capacity).enumerate() {
            pages.push(Page::new(i as PageId, chunk.to_vec()));
        }
        let index = SparseIndex::build(&pages);
        let compression = CompressionStats::from_pages(&pages, base.schema().arity());
        StoredSequence {
            store_id,
            name: name.into(),
            schema: base.schema().clone(),
            meta: base.meta().clone(),
            pages: pages.into(),
            index,
            record_count: entries.len() as u64,
            compression,
            stats,
            buffer,
        }
    }

    /// A view of the same physical sequence charging a different statistics
    /// context. Pages and buffer pool are shared (same `store_id`, so
    /// hit/miss behavior is unchanged); only the counters charged differ.
    /// Combined with [`AccessStats::scoped`], this is how a profiler
    /// attributes page traffic to the one operator scanning this store.
    pub fn with_stats(self: &Arc<Self>, stats: Arc<AccessStats>) -> Arc<StoredSequence> {
        Arc::new(StoredSequence {
            store_id: self.store_id,
            name: self.name.clone(),
            schema: self.schema.clone(),
            meta: self.meta.clone(),
            pages: Arc::clone(&self.pages),
            index: self.index.clone(),
            record_count: self.record_count,
            compression: self.compression.clone(),
            stats,
            buffer: self.buffer.clone(),
        })
    }

    /// Catalog name of the sequence.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Identifier within the shared buffer pool.
    pub fn store_id(&self) -> StoreId {
        self.store_id
    }

    /// Number of pages the sequence occupies.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// The counters this store charges.
    pub fn stats(&self) -> &Arc<AccessStats> {
        &self.stats
    }

    /// Compression summary of the stored pages (build-time metadata).
    pub fn compression(&self) -> &CompressionStats {
        &self.compression
    }

    /// Charge one page touch against the statistics (and the buffer pool,
    /// when attached).
    fn touch_page(&self, page: PageId) {
        match &self.buffer {
            Some(pool) => match pool.access(self.store_id, page) {
                PageAccess::Hit => self.stats.record_page_hit(),
                PageAccess::Miss => self.stats.record_page_read(),
            },
            None => self.stats.record_page_read(),
        }
    }

    /// The one page-entry decision both the tuple and the batch scan share,
    /// so their charging stays symmetric at every boundary: a scan positioned
    /// before `page` (bounds `start..=end`, optional pushed filter) either
    /// enters it (touch charged, cursor at the first in-span slot), skips it
    /// on zone-map evidence (charged to `pages_skipped`, never fetched), or
    /// learns the span is exhausted (free: `first_pos`, like the zone map, is
    /// header metadata — consulting it is not a page read).
    fn enter_page(
        &self,
        page: &Page,
        start: i64,
        end: i64,
        filter: Option<&ScanFilter>,
    ) -> PageEntry {
        if page.first_pos().is_none_or(|fp| fp > end) {
            return PageEntry::Exhausted;
        }
        if filter.is_some_and(|f| !f.page_may_match(page)) {
            self.stats.record_page_skipped();
            return PageEntry::Skip;
        }
        self.touch_page(page.id());
        PageEntry::Enter(page.lower_bound(start))
    }
}

/// Outcome of [`StoredSequence::enter_page`].
enum PageEntry {
    /// Page materialized; scan continues from this slot.
    Enter(usize),
    /// Zone map refuted the filter: advance past without reading.
    Skip,
    /// The page starts past the span end: the scan is exhausted.
    Exhausted,
}

impl Sequence for StoredSequence {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn meta(&self) -> &SeqMeta {
        &self.meta
    }

    fn get(&self, pos: i64) -> Option<Record> {
        self.stats.record_probe();
        let page_id = self.index.page_for(pos)?;
        self.touch_page(page_id);
        let (rec, bytes) = self.pages[page_id as usize].find(pos)?;
        self.stats.record_bytes_decoded(bytes as u64);
        Some(rec)
    }

    fn scan(&self, span: Span) -> Box<dyn Iterator<Item = (i64, Record)> + '_> {
        self.stats.record_scan_opened();
        if span.is_empty() {
            return Box::new(std::iter::empty());
        }
        let start_page = self.index.first_page_at_or_after(span.start());
        Box::new(StoredScan {
            store: self,
            page_idx: start_page,
            slot: None,
            rows: None,
            end: span.end(),
            start: span.start(),
        })
    }

    fn record_count(&self) -> u64 {
        self.record_count
    }
}

impl StoredSequence {
    /// An owning stream cursor (for executors that cannot hold a borrow on
    /// the store). Touches each page once, in order, like
    /// [`Sequence::scan`], and additionally supports positional skipping.
    pub fn scan_owned(self: &Arc<Self>, span: Span) -> OwnedScan {
        self.scan_owned_filtered(span, None)
    }

    /// [`StoredSequence::scan_owned`] with a pushed-down [`ScanFilter`]:
    /// pages whose zone map refutes the filter are skipped without being
    /// read (charged to `pages_skipped`). Rows of surviving pages are *not*
    /// filtered — the caller re-applies its full predicate per record.
    pub fn scan_owned_filtered(
        self: &Arc<Self>,
        span: Span,
        filter: Option<ScanFilter>,
    ) -> OwnedScan {
        self.stats.record_scan_opened();
        let (page_idx, start, end) = if span.is_empty() {
            (usize::MAX, 1, 0)
        } else {
            (self.index.first_page_at_or_after(span.start()), span.start(), span.end())
        };
        OwnedScan { store: Arc::clone(self), page_idx, slot: None, rows: None, start, end, filter }
    }

    /// A batched owning stream cursor: materializes up to `batch_size`
    /// in-span records at a time into a columnar [`RecordBatch`]. Page
    /// touches are charged exactly as [`StoredSequence::scan_owned`] (once
    /// per page entered, in order); stream-record counts fold into one
    /// atomic add per batch instead of one per record.
    pub fn scan_batch(self: &Arc<Self>, span: Span, batch_size: usize) -> OwnedBatchScan {
        self.scan_batch_filtered(span, batch_size, None)
    }

    /// [`StoredSequence::scan_batch`] with a pushed-down [`ScanFilter`];
    /// page skipping exactly as in [`StoredSequence::scan_owned_filtered`].
    pub fn scan_batch_filtered(
        self: &Arc<Self>,
        span: Span,
        batch_size: usize,
        filter: Option<ScanFilter>,
    ) -> OwnedBatchScan {
        self.stats.record_scan_opened();
        let (page_idx, start, end) = if span.is_empty() {
            (usize::MAX, 1, 0)
        } else {
            (self.index.first_page_at_or_after(span.start()), span.start(), span.end())
        };
        OwnedBatchScan {
            store: Arc::clone(self),
            page_idx,
            slot: None,
            start,
            end,
            batch_size: batch_size.max(1),
            filter,
            survivors: Vec::new(),
            columns: ColumnSet::All,
            masks: None,
        }
    }

    /// Split `span` into up to `parts` contiguous, page-aligned sub-spans
    /// covering exactly `span`'s overlap with the stored data. Parallel
    /// drivers hand each sub-span to an independent [`OwnedBatchScan`] (the
    /// scan is `Clone` and the store is shared behind the `Arc`), and
    /// page-aligned boundaries mean no page is entered by two workers for
    /// the same scan.
    pub fn partition_spans(&self, span: Span, parts: usize) -> Vec<Span> {
        let span = span.intersect(&self.meta.span);
        if span.is_empty() {
            return Vec::new();
        }
        let first = self.index.first_page_at_or_after(span.start());
        let last = self
            .pages
            .iter()
            .rposition(|p| p.first_pos().is_some_and(|fp| fp <= span.end()))
            .unwrap_or(first);
        if first >= self.pages.len() || last < first {
            return Vec::new();
        }
        let pages = last - first + 1;
        let parts = parts.clamp(1, pages);
        let per = pages.div_ceil(parts);
        let mut out = Vec::with_capacity(parts);
        let mut lo = span.start();
        let mut page = first;
        while page <= last {
            let chunk_last = (page + per - 1).min(last);
            let hi = if chunk_last == last {
                span.end()
            } else {
                // End just before the next chunk's first position so the
                // sub-spans tile the span without overlap.
                self.pages[chunk_last + 1].first_pos().expect("pages are non-empty") - 1
            };
            if hi >= lo {
                out.push(Span::new(lo, hi));
                lo = hi + 1;
            }
            page = chunk_last + 1;
        }
        out
    }
}

/// Owning batched streaming scan over an `Arc<StoredSequence>`.
///
/// Yields the same records, in the same order, with the same page-touch
/// accounting as [`OwnedScan`]; only the granularity differs. Cloning is
/// cheap (the page store is shared behind the `Arc`) and yields an
/// independent scan position, so parallel workers can each carry their own.
#[derive(Clone)]
pub struct OwnedBatchScan {
    store: Arc<StoredSequence>,
    page_idx: usize,
    slot: Option<usize>,
    start: i64,
    end: i64,
    batch_size: usize,
    filter: Option<ScanFilter>,
    /// Scratch survivor-slot buffer reused across page windows by
    /// [`OwnedBatchScan::next_batch_selected`], so the hot filtered-scan
    /// loop allocates nothing per window.
    survivors: Vec<u32>,
    /// Which record columns to materialize into emitted batches
    /// ([`ColumnSet::All`] unless the planner pruned some); positions are
    /// always decoded. Pruned columns leave empty (unmaterialized) slots in
    /// the batch, charged to `columns_pruned` once per page entered.
    columns: ColumnSet,
    /// Per-dict-entry match bitmaps for the conjunction last passed to
    /// [`OwnedBatchScan::next_batch_selected`], cached per entered page
    /// (keyed by page index) so multi-window visits to one page evaluate
    /// each dict term against the dictionary exactly once.
    masks: Option<(usize, DictMasks)>,
}

impl OwnedBatchScan {
    /// Restrict which record columns the scan materializes. Positions are
    /// always decoded; unlisted columns stay unmaterialized in emitted
    /// batches (reading one through [`RecordBatch`] row accessors is a
    /// schema error, so callers prune only columns the plan never reads).
    pub fn set_columns(&mut self, columns: ColumnSet) {
        self.columns = columns;
    }

    /// The column restriction currently applied by this scan.
    pub fn columns(&self) -> &ColumnSet {
        &self.columns
    }

    /// Charge the per-page late-materialization saving when entering a page:
    /// one `columns_pruned` count per column the scan will not decode.
    fn charge_pruned(&self, arity: usize) {
        let pruned = self.columns.pruned_of(arity);
        if pruned > 0 {
            self.store.stats.record_columns_pruned(pruned as u64);
        }
    }
    /// Next run of up to `batch_size` in-span records, or `None` when the
    /// span is exhausted. Charges one folded `stream_records` add per batch.
    pub fn next_batch(&mut self) -> Option<RecordBatch> {
        let arity = self.store.schema().arity();
        let mut batch = RecordBatch::with_capacity(arity, self.batch_size);
        while batch.len() < self.batch_size {
            let Some(page) = self.store.pages.get(self.page_idx) else { break };
            let slot = match self.slot {
                Some(s) => s,
                // Entry (exhaustion check, zone-map skip, touch charging) is
                // the logic shared with the tuple path — see `enter_page`.
                None => {
                    match self.store.enter_page(page, self.start, self.end, self.filter.as_ref()) {
                        PageEntry::Enter(s) => {
                            self.charge_pruned(arity);
                            s
                        }
                        PageEntry::Skip => {
                            self.page_idx += 1;
                            continue;
                        }
                        PageEntry::Exhausted => {
                            self.page_idx = usize::MAX;
                            break;
                        }
                    }
                }
            };
            // The in-span run on this page is contiguous: bulk-decode it
            // column-wise straight into the batch, with no per-record
            // materialization.
            let in_span = page.upper_bound(self.end);
            let take = (self.batch_size - batch.len()).min(in_span.saturating_sub(slot));
            let bytes = page.append_range_into_cols(&mut batch, slot, take, &self.columns);
            self.store.stats.record_bytes_decoded(bytes as u64);
            let slot = slot + take;
            if slot >= page.len() {
                self.page_idx += 1;
                self.slot = None;
            } else if slot >= in_span {
                // The span ends inside this page: the scan is exhausted.
                self.page_idx = usize::MAX;
                self.slot = None;
                break;
            } else {
                self.slot = Some(slot);
            }
        }
        if batch.is_empty() {
            None
        } else {
            self.store.stats.record_stream_records(batch.len() as u64);
            Some(batch)
        }
    }

    /// Like [`OwnedBatchScan::next_batch`], but evaluates a conjunction of
    /// `col op lit` terms *in place* over the encoded page columns and
    /// materializes only the surviving rows — non-survivors are never
    /// decoded. Returns the survivors (possibly an empty batch) plus the
    /// number of rows scanned, which is exactly the row count
    /// [`OwnedBatchScan::next_batch`] would have materialized for the same
    /// window: page entry/skip decisions, batch window boundaries, and the
    /// per-window `stream_records` fold are all identical, so every counter
    /// except `bytes_decoded` stays bit-identical to scan-then-filter.
    /// `None` means the span is exhausted.
    pub fn next_batch_selected(
        &mut self,
        terms: &[(usize, CmpOp, Value)],
    ) -> Result<Option<(RecordBatch, u64)>> {
        let arity = self.store.schema().arity();
        let mut batch = RecordBatch::with_capacity(arity, self.batch_size.min(64));
        let mut scanned = 0usize;
        while scanned < self.batch_size {
            let Some(page) = self.store.pages.get(self.page_idx) else { break };
            let slot = match self.slot {
                Some(s) => s,
                None => {
                    match self.store.enter_page(page, self.start, self.end, self.filter.as_ref()) {
                        PageEntry::Enter(s) => {
                            self.charge_pruned(arity);
                            s
                        }
                        PageEntry::Skip => {
                            self.page_idx += 1;
                            continue;
                        }
                        PageEntry::Exhausted => {
                            self.page_idx = usize::MAX;
                            break;
                        }
                    }
                }
            };
            let in_span = page.upper_bound(self.end);
            let take = (self.batch_size - scanned).min(in_span.saturating_sub(slot));
            if take > 0 {
                // Dict-entry bitmaps for this page's dictionary columns are
                // built once on first use and reused across windows (the
                // executor drives one cursor with one fixed conjunction).
                if self.masks.as_ref().is_none_or(|(idx, _)| *idx != self.page_idx) {
                    self.masks = Some((self.page_idx, page.dict_masks(terms)?));
                }
                let masks = &self.masks.as_ref().expect("masks built above").1;
                let mut survivors = std::mem::take(&mut self.survivors);
                page.filter_slots_masked(terms, masks, slot, slot + take, &mut survivors)?;
                // Contiguous survivor runs bulk-decode via the range path;
                // only scattered survivors pay the per-slot gather.
                let bytes = page.append_slot_runs_into_cols(&mut batch, &survivors, &self.columns);
                self.survivors = survivors;
                self.store.stats.record_bytes_decoded(bytes as u64);
                scanned += take;
            }
            let slot = slot + take;
            if slot >= page.len() {
                self.page_idx += 1;
                self.slot = None;
            } else if slot >= in_span {
                // The span ends inside this page: the scan is exhausted.
                self.page_idx = usize::MAX;
                self.slot = None;
                break;
            } else {
                self.slot = Some(slot);
            }
        }
        if scanned == 0 {
            Ok(None)
        } else {
            self.store.stats.record_stream_records(scanned as u64);
            Ok(Some((batch, scanned as u64)))
        }
    }

    /// Raise the scan's lower bound, exactly like [`OwnedScan::skip_to`]:
    /// skipped records are not charged, pages are still entered in order.
    pub fn skip_to(&mut self, lower: i64) {
        if lower > self.start {
            self.start = lower;
            if let Some(slot) = self.slot {
                if let Some(page) = self.store.pages.get(self.page_idx) {
                    if page.last_pos().map(|lp| lp < lower).unwrap_or(true) {
                        self.page_idx += 1;
                        self.slot = None;
                    } else {
                        let lb = page.lower_bound(lower);
                        self.slot = Some(lb.max(slot));
                    }
                }
            }
        }
    }
}

/// Owning streaming scan over an `Arc<StoredSequence>`.
pub struct OwnedScan {
    store: Arc<StoredSequence>,
    page_idx: usize,
    slot: Option<usize>,
    /// Row view of the current page, decoded once on page entry; yielded
    /// records are slice views into its shared buffer.
    rows: Option<DecodedRows>,
    start: i64,
    end: i64,
    filter: Option<ScanFilter>,
}

impl OwnedScan {
    /// Next non-empty position, or `None` when the span is exhausted.
    pub fn next_record(&mut self) -> Option<(i64, Record)> {
        loop {
            let page = self.store.pages.get(self.page_idx)?;
            let slot = match self.slot {
                Some(s) => s,
                // Same shared entry decision as the batched scan, so both
                // paths charge identically at every page boundary. Entering
                // decodes the page into a row view once.
                None => {
                    match self.store.enter_page(page, self.start, self.end, self.filter.as_ref()) {
                        PageEntry::Enter(s) => {
                            let rows = page.decode_rows();
                            self.store.stats.record_bytes_decoded(rows.byte_size() as u64);
                            self.rows = Some(rows);
                            s
                        }
                        PageEntry::Skip => {
                            self.page_idx += 1;
                            continue;
                        }
                        PageEntry::Exhausted => {
                            self.page_idx = usize::MAX;
                            return None;
                        }
                    }
                }
            };
            let rows = self.rows.as_ref().expect("page rows decoded on entry");
            if slot < rows.len() {
                let pos = rows.pos(slot);
                if pos > self.end {
                    self.page_idx = usize::MAX;
                    return None;
                }
                self.slot = Some(slot + 1);
                self.store.stats.record_stream_record();
                return Some((pos, rows.record(slot)));
            }
            self.page_idx = self.page_idx.wrapping_add(1);
            self.slot = None;
            self.rows = None;
        }
    }

    /// Raise the scan's lower bound: subsequent records have position
    /// `>= lower`. Skipped records are *not* charged as stream records, but
    /// pages between here and there are still entered one by one (a stream
    /// access cannot jump; cf. §3.3's distinction from probed access).
    pub fn skip_to(&mut self, lower: i64) {
        if lower > self.start {
            self.start = lower;
            if let Some(slot) = self.slot {
                // Stay on the current page if it may still hold positions
                // >= lower; otherwise re-enter pages forward.
                if let Some(page) = self.store.pages.get(self.page_idx) {
                    if page.last_pos().map(|lp| lp < lower).unwrap_or(true) {
                        self.page_idx += 1;
                        self.slot = None;
                        self.rows = None;
                    } else {
                        let lb = page.lower_bound(lower);
                        self.slot = Some(lb.max(slot));
                    }
                }
            }
        }
    }
}

impl Iterator for OwnedScan {
    type Item = (i64, Record);

    fn next(&mut self) -> Option<(i64, Record)> {
        self.next_record()
    }
}

/// Streaming scan over a stored sequence: touches each page once, in order.
struct StoredScan<'a> {
    store: &'a StoredSequence,
    page_idx: usize,
    /// Slot within the current page; `None` before the page is entered.
    slot: Option<usize>,
    /// Row view of the current page, decoded once on page entry.
    rows: Option<DecodedRows>,
    start: i64,
    end: i64,
}

impl Iterator for StoredScan<'_> {
    type Item = (i64, Record);

    fn next(&mut self) -> Option<(i64, Record)> {
        loop {
            let page = self.store.pages.get(self.page_idx)?;
            let slot = match self.slot {
                Some(s) => s,
                None => {
                    // Entering this page: charge the touch, decode the row
                    // view, and position the cursor at the first in-span
                    // entry.
                    self.store.touch_page(page.id());
                    let rows = page.decode_rows();
                    self.store.stats.record_bytes_decoded(rows.byte_size() as u64);
                    self.rows = Some(rows);
                    page.lower_bound(self.start)
                }
            };
            let rows = self.rows.as_ref().expect("page rows decoded on entry");
            if slot < rows.len() {
                let pos = rows.pos(slot);
                if pos > self.end {
                    return None;
                }
                self.slot = Some(slot + 1);
                self.store.stats.record_stream_record();
                return Some((pos, rows.record(slot)));
            }
            // Page exhausted; move on.
            self.page_idx += 1;
            self.slot = None;
            self.rows = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seq_core::{record, schema, AttrType};

    fn base(n: i64, step: i64) -> BaseSequence {
        let entries = (0..n)
            .map(|i| {
                let p = 1 + i * step;
                (p, record![p, (p as f64) * 0.5])
            })
            .collect();
        BaseSequence::from_entries(
            schema(&[("time", AttrType::Int), ("close", AttrType::Float)]),
            entries,
        )
        .unwrap()
    }

    fn stored(n: i64, step: i64, cap: usize) -> (StoredSequence, Arc<AccessStats>) {
        let stats = AccessStats::new();
        let s = StoredSequence::from_base(0, "t", &base(n, step), cap, stats.clone(), None);
        (s, stats)
    }

    #[test]
    fn pagination_matches_capacity() {
        let (s, _) = stored(100, 1, 16);
        assert_eq!(s.page_count(), 7); // ceil(100/16)
        assert_eq!(s.record_count(), 100);
    }

    #[test]
    fn full_scan_touches_each_page_once() {
        let (s, stats) = stored(100, 1, 16);
        let n = s.scan(Span::all()).count();
        assert_eq!(n, 100);
        let snap = stats.snapshot();
        assert_eq!(snap.page_reads, 7);
        assert_eq!(snap.stream_records, 100);
        assert_eq!(snap.scans_opened, 1);
    }

    #[test]
    fn restricted_scan_touches_fewer_pages() {
        let (s, stats) = stored(100, 1, 16);
        // Positions 1..=100, pages of 16: positions 1..16 on page 0, etc.
        let got: Vec<i64> = s.scan(Span::new(40, 50)).map(|(p, _)| p).collect();
        assert_eq!(got, (40..=50).collect::<Vec<_>>());
        let snap = stats.snapshot();
        // Positions 40..50 live on pages 2 (33..48) and 3 (49..64).
        assert_eq!(snap.page_reads, 2);
    }

    #[test]
    fn probe_charges_one_page() {
        let (s, stats) = stored(100, 1, 16);
        assert!(s.get(50).is_some());
        assert!(s.get(101).is_none()); // out of range: no page touched
        let snap = stats.snapshot();
        assert_eq!(snap.probes, 2);
        assert_eq!(snap.page_reads, 1);
    }

    #[test]
    fn probe_empty_position_in_range_touches_page() {
        let (s, stats) = stored(50, 2, 16); // positions 1,3,5,...
        assert!(s.get(2).is_none());
        assert_eq!(stats.snapshot().page_reads, 1);
    }

    #[test]
    fn buffer_pool_absorbs_repeat_probes() {
        let stats = AccessStats::new();
        let pool = Arc::new(BufferPool::new(8));
        let s = StoredSequence::from_base(0, "t", &base(100, 1), 16, stats.clone(), Some(pool));
        s.get(10);
        s.get(11);
        s.get(12);
        let snap = stats.snapshot();
        assert_eq!(snap.page_reads, 1);
        assert_eq!(snap.page_hits, 2);
    }

    #[test]
    fn scan_on_sparse_sequence() {
        let (s, _) = stored(10, 5, 4); // positions 1,6,11,...,46
        let got: Vec<i64> = s.scan(Span::new(7, 30)).map(|(p, _)| p).collect();
        assert_eq!(got, vec![11, 16, 21, 26]);
    }

    #[test]
    fn empty_span_scan_reads_nothing() {
        let (s, stats) = stored(10, 1, 4);
        assert_eq!(s.scan(Span::empty()).count(), 0);
        assert_eq!(stats.snapshot().page_reads, 0);
    }

    #[test]
    fn meta_comes_from_base() {
        let (s, _) = stored(10, 1, 4);
        assert_eq!(s.meta().span, Span::new(1, 10));
        assert_eq!(s.meta().density, 1.0);
        assert_eq!(s.schema().arity(), 2);
    }
}

#[cfg(test)]
mod owned_scan_tests {
    use super::*;
    use seq_core::{record, schema, AttrType};

    fn stored(n: i64, step: i64, cap: usize) -> (Arc<StoredSequence>, Arc<AccessStats>) {
        let entries = (0..n).map(|i| (1 + i * step, record![1 + i * step])).collect();
        let base = BaseSequence::from_entries(schema(&[("x", AttrType::Int)]), entries).unwrap();
        let stats = AccessStats::new();
        let s = Arc::new(StoredSequence::from_base(0, "t", &base, cap, stats.clone(), None));
        (s, stats)
    }

    #[test]
    fn owned_scan_matches_borrowed_scan() {
        let (s, _) = stored(50, 3, 8);
        let borrowed: Vec<i64> = s.scan(Span::new(10, 100)).map(|(p, _)| p).collect();
        let owned: Vec<i64> = s.scan_owned(Span::new(10, 100)).map(|(p, _)| p).collect();
        assert_eq!(borrowed, owned);
    }

    #[test]
    fn skip_to_advances_without_counting_records() {
        let (s, stats) = stored(100, 1, 16);
        let mut scan = s.scan_owned(Span::new(1, 100));
        assert_eq!(scan.next_record().unwrap().0, 1);
        scan.skip_to(60);
        assert_eq!(scan.next_record().unwrap().0, 60);
        // Only two records were streamed out.
        assert_eq!(stats.snapshot().stream_records, 2);
    }

    #[test]
    fn skip_backward_is_a_no_op() {
        let (s, _) = stored(10, 1, 4);
        let mut scan = s.scan_owned(Span::new(1, 10));
        scan.next_record();
        scan.next_record();
        scan.skip_to(1); // lower than current: ignored
        assert_eq!(scan.next_record().unwrap().0, 3);
    }

    #[test]
    fn skip_within_current_page() {
        let (s, _) = stored(20, 1, 16);
        let mut scan = s.scan_owned(Span::new(1, 20));
        assert_eq!(scan.next_record().unwrap().0, 1);
        scan.skip_to(5);
        assert_eq!(scan.next_record().unwrap().0, 5);
    }

    #[test]
    fn empty_span_owned_scan() {
        let (s, _) = stored(10, 1, 4);
        let mut scan = s.scan_owned(Span::empty());
        assert!(scan.next_record().is_none());
    }

    fn drain_batches(s: &Arc<StoredSequence>, span: Span, batch_size: usize) -> Vec<RecordBatch> {
        let mut scan = s.scan_batch(span, batch_size);
        let mut out = Vec::new();
        while let Some(b) = scan.next_batch() {
            out.push(b);
        }
        out
    }

    #[test]
    fn batch_scan_matches_owned_scan() {
        for (batch_size, cap) in [(4, 16), (16, 16), (1000, 16), (7, 5)] {
            let (s, stats) = stored(100, 3, cap);
            let span = Span::new(10, 250);
            let owned: Vec<(i64, Record)> = s.scan_owned(span).collect();
            let owned_snap = stats.snapshot();
            stats.reset();
            let batches = drain_batches(&s, span, batch_size);
            let batched: Vec<(i64, Record)> = batches.iter().flat_map(|b| b.to_records()).collect();
            let batch_snap = stats.snapshot();
            assert_eq!(owned, batched, "batch_size={batch_size} cap={cap}");
            assert_eq!(owned_snap.stream_records, batch_snap.stream_records);
            assert_eq!(owned_snap.page_accesses(), batch_snap.page_accesses());
            for b in &batches {
                assert!(b.len() <= batch_size);
            }
        }
    }

    #[test]
    fn batch_scan_folds_stats_per_batch() {
        let (s, stats) = stored(100, 1, 16);
        let batches = drain_batches(&s, Span::all(), 8);
        let snap = stats.snapshot();
        assert_eq!(snap.stream_records, 100);
        // One folded add per non-empty batch, not one per record.
        assert_eq!(snap.stat_folds, batches.len() as u64);
        assert_eq!(batches.len(), 13); // ceil(100/8)
    }

    #[test]
    fn batch_scan_skip_to_advances_without_counting() {
        let (s, stats) = stored(100, 1, 16);
        let mut scan = s.scan_batch(Span::new(1, 100), 4);
        assert_eq!(scan.next_batch().unwrap().positions(), &[1, 2, 3, 4]);
        scan.skip_to(60);
        assert_eq!(scan.next_batch().unwrap().positions(), &[60, 61, 62, 63]);
        assert_eq!(stats.snapshot().stream_records, 8);
    }

    #[test]
    fn empty_span_batch_scan() {
        let (s, stats) = stored(10, 1, 4);
        let mut scan = s.scan_batch(Span::empty(), 8);
        assert!(scan.next_batch().is_none());
        assert_eq!(stats.snapshot().page_reads, 0);
    }

    #[test]
    fn batch_scan_clone_is_independent() {
        let (s, _) = stored(100, 1, 16);
        let mut a = s.scan_batch(Span::new(1, 100), 8);
        assert_eq!(a.next_batch().unwrap().positions(), &[1, 2, 3, 4, 5, 6, 7, 8]);
        let mut b = a.clone();
        // Advancing the clone does not move the original, and vice versa.
        b.skip_to(50);
        assert_eq!(b.next_batch().unwrap().first_pos(), Some(50));
        assert_eq!(a.next_batch().unwrap().positions(), &[9, 10, 11, 12, 13, 14, 15, 16]);
        assert_eq!(b.next_batch().unwrap().first_pos(), Some(58));
    }

    #[test]
    fn partition_spans_tile_the_span() {
        let (s, _) = stored(100, 1, 16); // positions 1..=100, 7 pages of 16
        for parts in [1, 2, 3, 4, 7, 20] {
            let spans = s.partition_spans(Span::new(1, 100), parts);
            assert!(!spans.is_empty());
            assert!(spans.len() <= parts.min(7));
            // Contiguous tiling: starts at 1, ends at 100, no gaps/overlap.
            assert_eq!(spans[0].start(), 1);
            assert_eq!(spans.last().unwrap().end(), 100);
            for w in spans.windows(2) {
                assert_eq!(w[1].start(), w[0].end() + 1);
            }
            // Interior boundaries are page-aligned (multiples of 16 + 1).
            for sp in &spans[1..] {
                assert_eq!((sp.start() - 1) % 16, 0);
            }
            // Each partition scans exactly its own records.
            let total: usize = spans
                .iter()
                .map(|sp| {
                    let mut sc = s.scan_batch(*sp, 32);
                    let mut n = 0;
                    while let Some(b) = sc.next_batch() {
                        n += b.len();
                    }
                    n
                })
                .sum();
            assert_eq!(total, 100);
        }
    }

    #[test]
    fn partition_spans_degenerate_cases() {
        let (s, _) = stored(100, 1, 16);
        assert!(s.partition_spans(Span::empty(), 4).is_empty());
        assert!(s.partition_spans(Span::new(200, 300), 4).is_empty());
        // Span narrower than a page: one partition covering it.
        let spans = s.partition_spans(Span::new(40, 44), 8);
        assert_eq!(spans, vec![Span::new(40, 44)]);
        // Unbounded request clamps to the stored span.
        let spans = s.partition_spans(Span::all(), 2);
        assert_eq!(spans[0].start(), 1);
        assert_eq!(spans.last().unwrap().end(), 100);
    }

    #[test]
    fn with_stats_view_shares_pages_and_tees_charges() {
        let (s, global) = stored(100, 1, 16);
        let scope = AccessStats::scoped(&global);
        let view = s.with_stats(scope.clone());
        assert_eq!(view.store_id(), s.store_id());
        assert_eq!(view.page_count(), s.page_count());
        // Scan the view: the scope sees the traffic, and so does the global
        // context (identical to scanning the original store).
        let n = view.scan_owned(Span::new(1, 100)).count();
        assert_eq!(n, 100);
        assert_eq!(scope.snapshot().page_reads, 7);
        assert_eq!(scope.snapshot().stream_records, 100);
        assert_eq!(global.snapshot().page_reads, 7);
        assert_eq!(global.snapshot().stream_records, 100);
        // The original store still charges only the global context.
        s.scan_owned(Span::new(1, 16)).count();
        assert_eq!(scope.snapshot().page_reads, 7);
        assert_eq!(global.snapshot().page_reads, 8);
    }

    #[test]
    fn compression_stats_summarize_pages() {
        let (s, _) = stored(100, 3, 16); // x column = position: sequential ints
        let c = s.compression();
        assert!(c.plain_bytes > 0);
        assert!(c.encoded_bytes > 0);
        assert!(c.ratio() < 1.0, "sequential ints should compress: {}", c.ratio());
        assert_eq!(c.columns.len(), 1);
        assert_eq!(c.columns[0].dominant(), "delta");
        assert_eq!(c.columns[0].delta as usize, s.page_count());
    }

    #[test]
    fn scans_charge_bytes_decoded() {
        let (s, stats) = stored(100, 1, 16);
        s.scan_owned(Span::new(1, 100)).count();
        let tuple = stats.snapshot().bytes_decoded;
        assert!(tuple > 0);
        stats.reset();
        drain_batches(&s, Span::new(1, 100), 8);
        assert!(stats.snapshot().bytes_decoded > 0);
    }

    #[test]
    fn shared_storage_types_are_sync() {
        fn assert_sync<T: Sync + Send>() {}
        assert_sync::<StoredSequence>();
        assert_sync::<AccessStats>();
        assert_sync::<OwnedBatchScan>();
    }
}

#[cfg(test)]
mod filtered_scan_tests {
    use super::*;
    use crate::filter::ScanFilter;
    use seq_core::{record, schema, AttrType, CmpOp, Value};

    /// Positions 1..=n, column 0 equal to the position (clustered values).
    fn stored(n: i64, cap: usize) -> (Arc<StoredSequence>, Arc<AccessStats>) {
        let entries = (1..=n).map(|p| (p, record![p])).collect();
        let base = BaseSequence::from_entries(schema(&[("x", AttrType::Int)]), entries).unwrap();
        let stats = AccessStats::new();
        let s = Arc::new(StoredSequence::from_base(0, "t", &base, cap, stats.clone(), None));
        (s, stats)
    }

    fn ge(lit: i64) -> Option<ScanFilter> {
        Some(ScanFilter::new(vec![(0, CmpOp::Ge, Value::Int(lit))]))
    }

    #[test]
    fn filtered_scan_skips_refuted_pages() {
        let (s, stats) = stored(100, 16); // 7 pages: 1..16, 17..32, ..., 97..100
        let got: Vec<i64> =
            s.scan_owned_filtered(Span::new(1, 100), ge(90)).map(|(p, _)| p).collect();
        // Surviving pages (max >= 90) are the last two; their *whole* in-span
        // runs are yielded — the caller re-applies the predicate per record.
        assert_eq!(got, (81..=100).collect::<Vec<_>>());
        let snap = stats.snapshot();
        assert_eq!(snap.pages_skipped, 5);
        assert_eq!(snap.page_reads, 2);
        assert_eq!(snap.stream_records, 20);
    }

    #[test]
    fn reads_plus_skips_conserve_unfiltered_reads() {
        for lit in [1, 40, 90, 1000] {
            let (s, stats) = stored(100, 16);
            s.scan_owned(Span::new(5, 95)).count();
            let unfiltered = stats.snapshot();
            stats.reset();
            s.scan_owned_filtered(Span::new(5, 95), ge(lit)).count();
            let filtered = stats.snapshot();
            assert_eq!(
                filtered.page_reads + filtered.pages_skipped,
                unfiltered.page_reads,
                "lit={lit}: every page is either read or skipped"
            );
            assert_eq!(unfiltered.pages_skipped, 0);
        }
    }

    #[test]
    fn batch_filtered_scan_matches_tuple_filtered_scan() {
        for (batch_size, cap, lit) in [(4, 16, 50), (16, 16, 90), (1000, 16, 101), (7, 5, 33)] {
            let (s, stats) = stored(100, cap);
            let span = Span::new(3, 97);
            let tuple: Vec<(i64, Record)> = s.scan_owned_filtered(span, ge(lit)).collect();
            let tuple_snap = stats.snapshot();
            stats.reset();
            let mut scan = s.scan_batch_filtered(span, batch_size, ge(lit));
            let mut batched = Vec::new();
            while let Some(b) = scan.next_batch() {
                batched.extend(b.to_records());
            }
            let batch_snap = stats.snapshot();
            assert_eq!(tuple, batched, "bs={batch_size} cap={cap} lit={lit}");
            assert_eq!(tuple_snap.stream_records, batch_snap.stream_records);
            assert_eq!(tuple_snap.page_accesses(), batch_snap.page_accesses());
            assert_eq!(tuple_snap.pages_skipped, batch_snap.pages_skipped);
        }
    }

    #[test]
    fn skip_to_charges_intermediate_pages_symmetrically() {
        // With values clustered on position, a `>= 50` filter refutes the
        // first three 16-record pages; skip_to then hops over entered pages
        // one by one exactly as the unfiltered scan would.
        let (s, stats) = stored(100, 16);
        let mut tuple = s.scan_owned_filtered(Span::new(1, 100), ge(50));
        assert_eq!(tuple.next_record().unwrap().0, 49);
        tuple.skip_to(90);
        assert_eq!(tuple.next_record().unwrap().0, 90);
        while tuple.next_record().is_some() {}
        let tuple_snap = stats.snapshot();

        stats.reset();
        let mut batch = s.scan_batch_filtered(Span::new(1, 100), 1, ge(50));
        assert_eq!(batch.next_batch().unwrap().positions(), &[49]);
        batch.skip_to(90);
        assert_eq!(batch.next_batch().unwrap().positions(), &[90]);
        while batch.next_batch().is_some() {}
        let batch_snap = stats.snapshot();

        assert_eq!(tuple_snap.pages_skipped, 3);
        assert_eq!(tuple_snap.page_reads, batch_snap.page_reads);
        assert_eq!(tuple_snap.pages_skipped, batch_snap.pages_skipped);
        assert_eq!(tuple_snap.stream_records, batch_snap.stream_records);
    }

    #[test]
    fn selected_batch_scan_matches_filter_after_scan() {
        for (batch_size, cap, lit) in
            [(4, 16, 50), (16, 16, 90), (1000, 16, 101), (7, 5, 33), (1, 16, 50)]
        {
            let (s, stats) = stored(100, cap);
            let span = Span::new(3, 97);
            let terms = vec![(0usize, CmpOp::Ge, Value::Int(lit))];
            // Reference: zone-filtered scan, predicate re-applied per row.
            let mut scan = s.scan_batch_filtered(span, batch_size, ge(lit));
            let mut want = Vec::new();
            while let Some(b) = scan.next_batch() {
                for (p, r) in b.to_records() {
                    if r.values()[0].total_cmp(&Value::Int(lit)).unwrap().is_ge() {
                        want.push((p, r));
                    }
                }
            }
            let want_snap = stats.snapshot();

            stats.reset();
            let mut scan = s.scan_batch_filtered(span, batch_size, ge(lit));
            let mut got = Vec::new();
            let mut scanned_total = 0u64;
            while let Some((b, scanned)) = scan.next_batch_selected(&terms).unwrap() {
                scanned_total += scanned;
                got.extend(b.to_records());
            }
            let got_snap = stats.snapshot();

            assert_eq!(got, want, "bs={batch_size} cap={cap} lit={lit}");
            // The in-place path scans (and charges) exactly what the decode
            // path materialized; every counter but bytes_decoded matches.
            assert_eq!(scanned_total, want_snap.stream_records);
            assert_eq!(got_snap.stream_records, want_snap.stream_records);
            assert_eq!(got_snap.page_accesses(), want_snap.page_accesses());
            assert_eq!(got_snap.pages_skipped, want_snap.pages_skipped);
            assert_eq!(got_snap.stat_folds, want_snap.stat_folds);
            // Only survivors are decoded.
            assert!(got_snap.bytes_decoded <= want_snap.bytes_decoded);
        }
    }

    #[test]
    fn selected_batch_scan_skip_to_stays_symmetric() {
        let (s, stats) = stored(100, 16);
        let terms = vec![(0usize, CmpOp::Ge, Value::Int(50))];
        let mut reference = s.scan_batch_filtered(Span::new(1, 100), 1, ge(50));
        assert_eq!(reference.next_batch().unwrap().positions(), &[49]);
        reference.skip_to(90);
        while reference.next_batch().is_some() {}
        let want_snap = stats.snapshot();

        stats.reset();
        let mut selected = s.scan_batch_filtered(Span::new(1, 100), 1, ge(50));
        let (first, scanned) = selected.next_batch_selected(&terms).unwrap().unwrap();
        assert_eq!(scanned, 1);
        assert!(first.is_empty(), "49 fails >= 50 in place");
        selected.skip_to(90);
        while selected.next_batch_selected(&terms).unwrap().is_some() {}
        let got_snap = stats.snapshot();

        assert_eq!(got_snap.page_reads, want_snap.page_reads);
        assert_eq!(got_snap.pages_skipped, want_snap.pages_skipped);
        assert_eq!(got_snap.stream_records, want_snap.stream_records);
    }

    /// Positions 1..=n with three columns: position, a wide string, and a
    /// low-cardinality dict-encodable label.
    fn stored_wide(n: i64, cap: usize) -> (Arc<StoredSequence>, Arc<AccessStats>) {
        let entries = (1..=n)
            .map(|p| (p, record![p, "a-reasonably-wide-payload", ["lo", "hi"][(p % 2) as usize]]))
            .collect();
        let base = BaseSequence::from_entries(
            schema(&[("x", AttrType::Int), ("note", AttrType::Str), ("lvl", AttrType::Str)]),
            entries,
        )
        .unwrap();
        let stats = AccessStats::new();
        let s = Arc::new(StoredSequence::from_base(0, "w", &base, cap, stats.clone(), None));
        (s, stats)
    }

    #[test]
    fn column_pruned_scan_decodes_less_and_charges_columns_pruned() {
        let (s, stats) = stored_wide(100, 16);
        let span = Span::new(1, 100);
        let mut full = s.scan_batch(span, 32);
        while full.next_batch().is_some() {}
        let full_snap = stats.snapshot();

        stats.reset();
        let mut pruned = s.scan_batch(span, 32);
        pruned.set_columns(ColumnSet::Only(vec![0]));
        let mut rows = 0usize;
        let mut positions = Vec::new();
        while let Some(b) = pruned.next_batch() {
            rows += b.len();
            positions.extend_from_slice(b.positions());
            assert!(b.column_is_materialized(0));
            assert!(!b.column_is_materialized(1) && !b.column_is_materialized(2));
        }
        let pruned_snap = stats.snapshot();

        assert_eq!(rows, 100);
        assert_eq!(positions, (1..=100).collect::<Vec<_>>());
        // Same page traffic and record counts; only decode volume changes.
        assert_eq!(pruned_snap.page_accesses(), full_snap.page_accesses());
        assert_eq!(pruned_snap.stream_records, full_snap.stream_records);
        assert!(
            pruned_snap.bytes_decoded * 2 <= full_snap.bytes_decoded,
            "pruning two of three columns (one wide) should at least halve decode volume: \
             {} vs {}",
            pruned_snap.bytes_decoded,
            full_snap.bytes_decoded
        );
        // Two pruned columns, charged once per page entered (7 pages).
        assert_eq!(pruned_snap.columns_pruned, 2 * 7);
        assert_eq!(full_snap.columns_pruned, 0);
    }

    #[test]
    fn selected_scan_with_dict_terms_and_pruning_matches_reference() {
        let (s, stats) = stored_wide(100, 16);
        let span = Span::new(1, 100);
        let terms =
            vec![(2usize, CmpOp::Eq, Value::str("hi")), (0usize, CmpOp::Le, Value::Int(80))];
        // Reference: full decode, filter per row.
        let mut scan = s.scan_batch(span, 16);
        let mut want = Vec::new();
        while let Some(b) = scan.next_batch() {
            for (p, r) in b.to_records() {
                if crate::column::strict_eq(&r.values()[2], &Value::str("hi"))
                    && r.values()[0].total_cmp(&Value::Int(80)).unwrap().is_le()
                {
                    want.push((p, r.values()[0].clone()));
                }
            }
        }
        let want_snap = stats.snapshot();

        stats.reset();
        let mut scan = s.scan_batch(span, 16);
        scan.set_columns(ColumnSet::Only(vec![0]));
        let mut got = Vec::new();
        while let Some((b, _)) = scan.next_batch_selected(&terms).unwrap() {
            for i in 0..b.len() {
                got.push((b.position_at(i), b.value_at(0, i).clone()));
            }
        }
        let got_snap = stats.snapshot();

        assert_eq!(got, want);
        assert_eq!(got_snap.page_accesses(), want_snap.page_accesses());
        assert_eq!(got_snap.stream_records, want_snap.stream_records);
        assert!(got_snap.bytes_decoded < want_snap.bytes_decoded);
        assert_eq!(got_snap.columns_pruned, 2 * 7);
    }

    #[test]
    fn empty_span_filtered_scan_charges_nothing() {
        let (s, stats) = stored(10, 4);
        assert!(s.scan_owned_filtered(Span::empty(), ge(0)).next_record().is_none());
        assert!(s.scan_batch_filtered(Span::empty(), 8, ge(0)).next_batch().is_none());
        let snap = stats.snapshot();
        assert_eq!(snap.page_reads, 0);
        assert_eq!(snap.pages_skipped, 0);
    }
}
