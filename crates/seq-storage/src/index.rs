//! Sparse position index over the pages of a stored sequence.
//!
//! The paper assumes "available access paths to base sequences, and the costs
//! of access along these paths" (§3). The sparse index maps a position to the
//! page that could contain it, supporting both exact probes and positioned
//! scans (`first page holding a position >= p`). The index itself is assumed
//! resident (it is a few entries per page), so only leaf-page accesses are
//! charged — mirroring how a B+-tree's inner nodes stay cached.

use crate::page::{Page, PageId};

/// One index entry: the lowest and highest positions stored on a page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IndexEntry {
    /// Lowest position stored on the page.
    pub first_pos: i64,
    /// Highest position stored on the page.
    pub last_pos: i64,
    /// The page holding those positions.
    pub page: PageId,
}

/// Sparse, sorted position index.
#[derive(Debug, Clone, Default)]
pub struct SparseIndex {
    entries: Vec<IndexEntry>,
}

impl SparseIndex {
    /// Build from the (non-empty) pages of a sequence, in page order.
    pub fn build(pages: &[Page]) -> SparseIndex {
        let entries = pages
            .iter()
            .filter(|p| !p.is_empty())
            .map(|p| IndexEntry {
                first_pos: p.first_pos().expect("non-empty"),
                last_pos: p.last_pos().expect("non-empty"),
                page: p.id(),
            })
            .collect();
        SparseIndex { entries }
    }

    /// Whether the index covers no pages.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of indexed pages.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// The page that would contain `pos` if present, i.e. the last page whose
    /// `first_pos <= pos`, provided `pos <= last_pos`.
    pub fn page_for(&self, pos: i64) -> Option<PageId> {
        let idx = self.entries.partition_point(|e| e.first_pos <= pos);
        if idx == 0 {
            return None;
        }
        let e = &self.entries[idx - 1];
        if pos <= e.last_pos {
            Some(e.page)
        } else {
            None
        }
    }

    /// Index (into page order) of the first page containing any position
    /// `>= pos`; `len()` when no such page exists.
    pub fn first_page_at_or_after(&self, pos: i64) -> usize {
        self.entries.partition_point(|e| e.last_pos < pos)
    }

    /// The i-th index entry, in page order.
    pub fn entry(&self, i: usize) -> Option<&IndexEntry> {
        self.entries.get(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seq_core::record;

    fn pages() -> Vec<Page> {
        vec![
            Page::new(0, vec![(1, record![1i64]), (3, record![3i64])]),
            Page::new(1, vec![(7, record![7i64]), (9, record![9i64])]),
            Page::new(2, vec![(12, record![12i64])]),
        ]
    }

    #[test]
    fn exact_probe_routing() {
        let idx = SparseIndex::build(&pages());
        assert_eq!(idx.page_for(1), Some(0));
        assert_eq!(idx.page_for(3), Some(0));
        assert_eq!(idx.page_for(7), Some(1));
        assert_eq!(idx.page_for(12), Some(2));
    }

    #[test]
    fn gaps_between_pages_route_nowhere() {
        let idx = SparseIndex::build(&pages());
        // Position 5 falls between page 0's last (3) and page 1's first (7):
        // no page can contain it.
        assert_eq!(idx.page_for(5), None);
        assert_eq!(idx.page_for(0), None);
        assert_eq!(idx.page_for(100), None);
        // Position 2 is inside page 0's range, even though absent — the index
        // routes to the page; the page lookup then misses.
        assert_eq!(idx.page_for(2), Some(0));
    }

    #[test]
    fn positioned_scan_start() {
        let idx = SparseIndex::build(&pages());
        assert_eq!(idx.first_page_at_or_after(-5), 0);
        assert_eq!(idx.first_page_at_or_after(3), 0);
        assert_eq!(idx.first_page_at_or_after(4), 1);
        assert_eq!(idx.first_page_at_or_after(10), 2);
        assert_eq!(idx.first_page_at_or_after(13), 3);
    }

    #[test]
    fn empty_index() {
        let idx = SparseIndex::build(&[]);
        assert!(idx.is_empty());
        assert_eq!(idx.page_for(1), None);
        assert_eq!(idx.first_page_at_or_after(1), 0);
    }

    #[test]
    fn skips_empty_pages() {
        let ps = vec![Page::new(0, vec![]), Page::new(1, vec![(5, record![5i64])])];
        let idx = SparseIndex::build(&ps);
        assert_eq!(idx.len(), 1);
        assert_eq!(idx.page_for(5), Some(1));
    }
}
