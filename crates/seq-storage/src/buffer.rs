//! A simulated buffer pool.
//!
//! Probed access to positions scattered across a large sequence thrashes an
//! LRU buffer, while a stream scan touches each page exactly once — this is
//! precisely why the paper distinguishes stream from probed per-record access
//! costs (§3.3). The pool tracks residency only (records live in the store);
//! what matters for the experiments is the hit/miss accounting.
//!
//! Large pools are sharded into independent lock stripes keyed by a hash of
//! `(store, page)`, so morsel-parallel workers touching disjoint pages stop
//! serializing on one global mutex. Hit/miss accounting stays exact — a page
//! always maps to the same stripe, so residency is never double-counted —
//! and LRU eviction is per stripe. Pools smaller than one stripe's worth of
//! pages keep a single stripe, making small-pool behavior (which the caching
//! experiments pin down to the exact eviction order) bit-identical to the
//! unsharded pool.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::page::PageId;

/// Identifier of a stored sequence within a catalog.
pub type StoreId = u32;

/// Whether a page access was served from the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageAccess {
    /// Served from the pool.
    Hit,
    /// Fetched from storage (charged as a page read).
    Miss,
}

/// Pages per stripe below which adding another stripe is not worth the LRU
/// fragmentation. Pools under `2 * STRIPE_GRAIN` pages stay single-striped.
const STRIPE_GRAIN: usize = 32;

/// Upper bound on stripes; past this, contention is already negligible.
const MAX_STRIPES: usize = 16;

#[derive(Debug)]
struct PoolInner {
    /// (store, page) → LRU clock value at last touch.
    resident: HashMap<(StoreId, PageId), u64>,
    clock: u64,
    capacity: usize,
}

impl PoolInner {
    fn access(&mut self, key: (StoreId, PageId)) -> PageAccess {
        self.clock += 1;
        let clock = self.clock;
        if self.capacity == 0 {
            return PageAccess::Miss;
        }
        if let Some(slot) = self.resident.get_mut(&key) {
            *slot = clock;
            return PageAccess::Hit;
        }
        if self.resident.len() >= self.capacity {
            // Evict the least-recently-used entry. Linear scan is fine: pools
            // in the experiments are small and this code is not on the timed
            // fast path of any wall-clock benchmark conclusion.
            if let Some((&victim, _)) = self.resident.iter().min_by_key(|(_, &t)| t) {
                self.resident.remove(&victim);
            }
        }
        self.resident.insert(key, clock);
        PageAccess::Miss
    }
}

/// Per-stripe access counters, kept outside the stripe's mutex so telemetry
/// reads never take the lock and the hot path pays one relaxed atomic add.
#[derive(Debug, Default)]
struct StripeCounters {
    hits: AtomicU64,
    misses: AtomicU64,
    /// Accesses that found the stripe lock held and had to block. A skewed
    /// stripe hash or too few stripes for the worker count shows up here.
    contended: AtomicU64,
}

/// Point-in-time copy of one stripe's access counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StripeStats {
    /// Accesses served from the stripe's resident set.
    pub hits: u64,
    /// Accesses that fetched from storage (charged as page reads).
    pub misses: u64,
    /// Accesses that blocked on the stripe lock.
    pub contended: u64,
}

/// A shared LRU buffer pool, sized in pages.
#[derive(Debug)]
pub struct BufferPool {
    stripes: Vec<Mutex<PoolInner>>,
    counters: Vec<StripeCounters>,
    capacity: usize,
}

impl BufferPool {
    /// A pool holding at most `capacity` pages. A capacity of zero means
    /// every access misses (the "no buffering" configuration).
    pub fn new(capacity: usize) -> BufferPool {
        let stripes = (capacity / STRIPE_GRAIN).clamp(1, MAX_STRIPES);
        let per = capacity / stripes;
        let extra = capacity % stripes;
        let counters = (0..stripes).map(|_| StripeCounters::default()).collect();
        let stripes = (0..stripes)
            .map(|i| {
                // Stripe capacities sum exactly to the requested total.
                let cap = per + usize::from(i < extra);
                Mutex::new(PoolInner { resident: HashMap::new(), clock: 0, capacity: cap })
            })
            .collect();
        BufferPool { stripes, counters, capacity }
    }

    /// The stripe responsible for `(store, page)` — a fixed function of the
    /// key, so residency bookkeeping for one page is always under one lock.
    fn stripe_of(&self, store: StoreId, page: PageId) -> usize {
        if self.stripes.len() == 1 {
            return 0;
        }
        // SplitMix64-style finalizer over the packed key: cheap, stateless,
        // and spreads sequential page ids across stripes.
        let mut h = ((store as u64) << 32) | page as u64;
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        (h % self.stripes.len() as u64) as usize
    }

    /// Touch a page: returns whether it was resident, and makes it resident
    /// (evicting the stripe's least recently used page if it is full).
    pub fn access(&self, store: StoreId, page: PageId) -> PageAccess {
        let stripe = self.stripe_of(store, page);
        let counters = &self.counters[stripe];
        // An uncontended access takes the lock without blocking; counting
        // failed try_locks is the contention signal without timers.
        let mut inner = match self.stripes[stripe].try_lock() {
            Ok(inner) => inner,
            Err(_) => {
                counters.contended.fetch_add(1, Ordering::Relaxed);
                self.stripes[stripe].lock().unwrap()
            }
        };
        let outcome = inner.access((store, page));
        drop(inner);
        match outcome {
            PageAccess::Hit => counters.hits.fetch_add(1, Ordering::Relaxed),
            PageAccess::Miss => counters.misses.fetch_add(1, Ordering::Relaxed),
        };
        outcome
    }

    /// Drop all resident pages and zero the stripe counters (between
    /// measurements — the pool's counters share the measurement window of
    /// [`crate::AccessStats`], reset together by `Catalog::reset_measurement`).
    pub fn clear(&self) {
        for (stripe, counters) in self.stripes.iter().zip(&self.counters) {
            let mut inner = stripe.lock().unwrap();
            inner.resident.clear();
            inner.clock = 0;
            counters.hits.store(0, Ordering::Relaxed);
            counters.misses.store(0, Ordering::Relaxed);
            counters.contended.store(0, Ordering::Relaxed);
        }
    }

    /// Per-stripe hit/miss/contention counters, in stripe order.
    pub fn stripe_stats(&self) -> Vec<StripeStats> {
        self.counters
            .iter()
            .map(|c| StripeStats {
                hits: c.hits.load(Ordering::Relaxed),
                misses: c.misses.load(Ordering::Relaxed),
                contended: c.contended.load(Ordering::Relaxed),
            })
            .collect()
    }

    /// Number of currently resident pages.
    pub fn resident_pages(&self) -> usize {
        self.stripes.iter().map(|s| s.lock().unwrap().resident.len()).sum()
    }

    /// Maximum resident pages (summed across stripes).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of lock stripes the pool is sharded into.
    pub fn stripe_count(&self) -> usize {
        self.stripes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_misses_second_hits() {
        let pool = BufferPool::new(4);
        assert_eq!(pool.access(0, 1), PageAccess::Miss);
        assert_eq!(pool.access(0, 1), PageAccess::Hit);
        assert_eq!(pool.resident_pages(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let pool = BufferPool::new(2);
        pool.access(0, 1); // miss
        pool.access(0, 2); // miss
        pool.access(0, 1); // hit, 1 is now more recent than 2
        pool.access(0, 3); // miss, evicts 2
        assert_eq!(pool.access(0, 2), PageAccess::Miss);
        // page 1 was evicted by reinserting 2 (capacity 2: {3, 2} now).
        assert_eq!(pool.access(0, 3), PageAccess::Hit);
    }

    #[test]
    fn zero_capacity_always_misses() {
        let pool = BufferPool::new(0);
        assert_eq!(pool.access(0, 1), PageAccess::Miss);
        assert_eq!(pool.access(0, 1), PageAccess::Miss);
        assert_eq!(pool.resident_pages(), 0);
    }

    #[test]
    fn stores_are_namespaced() {
        let pool = BufferPool::new(8);
        pool.access(0, 1);
        assert_eq!(pool.access(1, 1), PageAccess::Miss);
        assert_eq!(pool.access(0, 1), PageAccess::Hit);
    }

    #[test]
    fn clear_empties_pool() {
        let pool = BufferPool::new(8);
        pool.access(0, 1);
        pool.clear();
        assert_eq!(pool.resident_pages(), 0);
        assert_eq!(pool.access(0, 1), PageAccess::Miss);
    }

    #[test]
    fn sequential_scan_touches_each_page_once() {
        let pool = BufferPool::new(4);
        let mut misses = 0;
        for page in 0..100u32 {
            if pool.access(0, page) == PageAccess::Miss {
                misses += 1;
            }
        }
        assert_eq!(misses, 100);
        // Rescanning a sequence larger than the pool misses again (LRU).
        let mut misses2 = 0;
        for page in 0..100u32 {
            if pool.access(0, page) == PageAccess::Miss {
                misses2 += 1;
            }
        }
        assert_eq!(misses2, 100);
    }

    #[test]
    fn stripe_stats_account_every_access() {
        let pool = BufferPool::new(256);
        assert!(pool.stripe_count() > 1);
        for page in 0..100u32 {
            pool.access(0, page); // miss
            pool.access(0, page); // hit
        }
        let stats = pool.stripe_stats();
        assert_eq!(stats.len(), pool.stripe_count());
        assert_eq!(stats.iter().map(|s| s.misses).sum::<u64>(), 100);
        assert_eq!(stats.iter().map(|s| s.hits).sum::<u64>(), 100);
        // Uncontended single-threaded access never blocks.
        assert_eq!(stats.iter().map(|s| s.contended).sum::<u64>(), 0);
        // The SplitMix64 stripe hash spreads sequential pages around: no
        // stripe owns everything.
        assert!(stats.iter().filter(|s| s.misses > 0).count() > 1);
        pool.clear();
        assert_eq!(pool.stripe_stats().iter().map(|s| s.hits + s.misses).sum::<u64>(), 0);
    }

    #[test]
    fn stripe_stats_match_global_accounting_under_contention() {
        // Same shape as the exact-accounting test below, but reconciling the
        // per-stripe counters against the known totals.
        const WORKERS: u32 = 8;
        const PAGES: u32 = 64;
        let pool = BufferPool::new(MAX_STRIPES * (WORKERS * PAGES) as usize);
        std::thread::scope(|scope| {
            for w in 0..WORKERS {
                let pool = &pool;
                scope.spawn(move || {
                    for _ in 0..2 {
                        for page in 0..PAGES {
                            pool.access(w, page);
                        }
                    }
                });
            }
        });
        let stats = pool.stripe_stats();
        assert_eq!(stats.iter().map(|s| s.misses).sum::<u64>(), (WORKERS * PAGES) as u64);
        assert_eq!(stats.iter().map(|s| s.hits).sum::<u64>(), (WORKERS * PAGES) as u64);
    }

    #[test]
    fn stripe_count_scales_with_capacity() {
        assert_eq!(BufferPool::new(0).stripe_count(), 1);
        assert_eq!(BufferPool::new(8).stripe_count(), 1);
        assert_eq!(BufferPool::new(63).stripe_count(), 1);
        assert_eq!(BufferPool::new(64).stripe_count(), 2);
        assert_eq!(BufferPool::new(10_000).stripe_count(), MAX_STRIPES);
    }

    #[test]
    fn stripe_capacities_sum_to_total() {
        for cap in [0, 1, 31, 64, 100, 515, 4096] {
            let pool = BufferPool::new(cap);
            let total: usize = pool.stripes.iter().map(|s| s.lock().unwrap().capacity).sum();
            assert_eq!(total, cap);
            assert_eq!(pool.capacity(), cap);
        }
    }

    #[test]
    fn sharded_pool_keeps_exact_accounting_under_contention() {
        // Each worker touches its own store's pages twice. The pool is big
        // enough that even a worst-case hash distribution cannot overflow a
        // stripe, so every first touch must miss and every second must hit —
        // exact accounting regardless of interleaving.
        const WORKERS: u32 = 8;
        const PAGES: u32 = 100;
        let pool = BufferPool::new(MAX_STRIPES * (WORKERS * PAGES) as usize);
        assert!(pool.stripe_count() > 1);
        let counts: Vec<(u32, u32)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..WORKERS)
                .map(|w| {
                    let pool = &pool;
                    scope.spawn(move || {
                        let (mut hits, mut misses) = (0u32, 0u32);
                        for round in 0..2 {
                            for page in 0..PAGES {
                                match pool.access(w, page) {
                                    PageAccess::Hit => hits += 1,
                                    PageAccess::Miss => misses += 1,
                                }
                                // Touch a common page too: cross-stripe
                                // traffic from every worker.
                                pool.access(u32::MAX, round);
                            }
                        }
                        (hits, misses)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        for (hits, misses) in counts {
            assert_eq!(misses, PAGES, "first touch of each private page misses");
            assert_eq!(hits, PAGES, "second touch of each private page hits");
        }
        assert_eq!(pool.resident_pages(), (WORKERS * PAGES) as usize + 2);
    }
}
