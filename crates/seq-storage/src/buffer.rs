//! A simulated buffer pool.
//!
//! Probed access to positions scattered across a large sequence thrashes an
//! LRU buffer, while a stream scan touches each page exactly once — this is
//! precisely why the paper distinguishes stream from probed per-record access
//! costs (§3.3). The pool tracks residency only (records live in the store);
//! what matters for the experiments is the hit/miss accounting.

use std::collections::HashMap;
use std::sync::Mutex;

use crate::page::PageId;

/// Identifier of a stored sequence within a catalog.
pub type StoreId = u32;

/// Whether a page access was served from the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageAccess {
    /// Served from the pool.
    Hit,
    /// Fetched from storage (charged as a page read).
    Miss,
}

#[derive(Debug)]
struct PoolInner {
    /// (store, page) → LRU clock value at last touch.
    resident: HashMap<(StoreId, PageId), u64>,
    clock: u64,
    capacity: usize,
}

/// A shared LRU buffer pool, sized in pages.
#[derive(Debug)]
pub struct BufferPool {
    inner: Mutex<PoolInner>,
}

impl BufferPool {
    /// A pool holding at most `capacity` pages. A capacity of zero means
    /// every access misses (the "no buffering" configuration).
    pub fn new(capacity: usize) -> BufferPool {
        BufferPool { inner: Mutex::new(PoolInner { resident: HashMap::new(), clock: 0, capacity }) }
    }

    /// Touch a page: returns whether it was resident, and makes it resident
    /// (evicting the least recently used page if the pool is full).
    pub fn access(&self, store: StoreId, page: PageId) -> PageAccess {
        let mut inner = self.inner.lock().unwrap();
        inner.clock += 1;
        let clock = inner.clock;
        if inner.capacity == 0 {
            return PageAccess::Miss;
        }
        let key = (store, page);
        if let Some(slot) = inner.resident.get_mut(&key) {
            *slot = clock;
            return PageAccess::Hit;
        }
        if inner.resident.len() >= inner.capacity {
            // Evict the least-recently-used entry. Linear scan is fine: pools
            // in the experiments are small and this code is not on the timed
            // fast path of any wall-clock benchmark conclusion.
            if let Some((&victim, _)) = inner.resident.iter().min_by_key(|(_, &t)| t) {
                inner.resident.remove(&victim);
            }
        }
        inner.resident.insert(key, clock);
        PageAccess::Miss
    }

    /// Drop all resident pages (between benchmark iterations).
    pub fn clear(&self) {
        let mut inner = self.inner.lock().unwrap();
        inner.resident.clear();
        inner.clock = 0;
    }

    /// Number of currently resident pages.
    pub fn resident_pages(&self) -> usize {
        self.inner.lock().unwrap().resident.len()
    }

    /// Maximum resident pages.
    pub fn capacity(&self) -> usize {
        self.inner.lock().unwrap().capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_misses_second_hits() {
        let pool = BufferPool::new(4);
        assert_eq!(pool.access(0, 1), PageAccess::Miss);
        assert_eq!(pool.access(0, 1), PageAccess::Hit);
        assert_eq!(pool.resident_pages(), 1);
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let pool = BufferPool::new(2);
        pool.access(0, 1); // miss
        pool.access(0, 2); // miss
        pool.access(0, 1); // hit, 1 is now more recent than 2
        pool.access(0, 3); // miss, evicts 2
        assert_eq!(pool.access(0, 2), PageAccess::Miss);
        // page 1 was evicted by reinserting 2 (capacity 2: {3, 2} now).
        assert_eq!(pool.access(0, 3), PageAccess::Hit);
    }

    #[test]
    fn zero_capacity_always_misses() {
        let pool = BufferPool::new(0);
        assert_eq!(pool.access(0, 1), PageAccess::Miss);
        assert_eq!(pool.access(0, 1), PageAccess::Miss);
        assert_eq!(pool.resident_pages(), 0);
    }

    #[test]
    fn stores_are_namespaced() {
        let pool = BufferPool::new(8);
        pool.access(0, 1);
        assert_eq!(pool.access(1, 1), PageAccess::Miss);
        assert_eq!(pool.access(0, 1), PageAccess::Hit);
    }

    #[test]
    fn clear_empties_pool() {
        let pool = BufferPool::new(8);
        pool.access(0, 1);
        pool.clear();
        assert_eq!(pool.resident_pages(), 0);
        assert_eq!(pool.access(0, 1), PageAccess::Miss);
    }

    #[test]
    fn sequential_scan_touches_each_page_once() {
        let pool = BufferPool::new(4);
        let mut misses = 0;
        for page in 0..100u32 {
            if pool.access(0, page) == PageAccess::Miss {
                misses += 1;
            }
        }
        assert_eq!(misses, 100);
        // Rescanning a sequence larger than the pool misses again (LRU).
        let mut misses2 = 0;
        for page in 0..100u32 {
            if pool.access(0, page) == PageAccess::Miss {
                misses2 += 1;
            }
        }
        assert_eq!(misses2, 100);
    }
}
