//! Randomized round-trip property tests for the page column encodings.
//!
//! Every encoding ([`ColumnData::Plain`], `IntDelta`, `Rle`, `Dict`, and the
//! delta-compressed position arrays) must be *lossless*: whatever shape of
//! column goes in, every read path — single-slot access, bulk range decode,
//! slot gather, and the in-place comparison kernels — must reproduce exactly
//! the values that were encoded. The generator below produces columns shaped
//! to land in each encoding (plus mixed-variant columns, which must fall back
//! to plain, and empty columns), then drives all read paths against the
//! original vector as the oracle. A final section round-trips whole pages,
//! since `Page::new` is the integration point that routes positions and
//! columns through the encoders.

use seq_core::{record, CmpOp, Record, Value};
use seq_storage::{ColumnData, Page, PosData};

/// Minimal xorshift64* generator so the suite stays dependency-free while
/// covering a different column population every seed.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Rng {
        Rng(seed.max(1))
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform draw from `0..n` (`n > 0`).
    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn int(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next() % (hi - lo + 1) as u64) as i64
    }

    fn float(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64 * 200.0 - 100.0
    }

    fn chance(&mut self, percent: usize) -> bool {
        self.below(100) < percent
    }
}

/// One column shaped to favour a particular encoding, plus the label the
/// pick-cheapest heuristic is expected to choose for it (None = any).
fn shaped_column(rng: &mut Rng, shape: usize, len: usize) -> (Vec<Value>, Option<&'static str>) {
    match shape {
        // Slowly drifting ints: small deltas pack at width 1-2.
        0 => {
            let mut v = rng.int(-1_000_000, 1_000_000);
            let values = (0..len)
                .map(|_| {
                    v = v.wrapping_add(rng.int(-40, 40));
                    Value::Int(v)
                })
                .collect();
            (values, (len > 4).then_some("delta"))
        }
        // Long constant runs of a type-homogeneous value: RLE territory.
        1 => {
            let float_runs = rng.chance(50);
            let mut values = Vec::with_capacity(len);
            while values.len() < len {
                let run = 1 + rng.below(len.div_ceil(3));
                let v = if float_runs {
                    Value::Float(rng.int(-4, 4) as f64 * 0.5)
                } else {
                    Value::Int(rng.int(-4, 4))
                };
                for _ in 0..run.min(len - values.len()) {
                    values.push(v.clone());
                }
            }
            (values, None) // short runs of tiny ints may tie with dict/delta
        }
        // Few distinct strings, interleaved: dictionary territory.
        2 => {
            let tags = ["ACME", "GLOBEX", "INITECH", "HOOLI", "UMBRELLA"];
            let distinct = 2 + rng.below(tags.len() - 1);
            let values = (0..len)
                .map(|_| Value::Str(tags[rng.below(distinct)].to_string().into()))
                .collect();
            (values, (len > 40).then_some("dict"))
        }
        // High-entropy floats: nothing beats plain.
        3 => ((0..len).map(|_| Value::Float(rng.float())).collect(), Some("plain")),
        // Full-range ints: deltas need width 8, still never *worse* than plain.
        4 => ((0..len).map(|_| Value::Int(rng.next() as i64)).collect(), None),
        // Mixed variants: must fall back to plain regardless of content.
        _ => {
            let values = (0..len)
                .map(|_| match rng.below(3) {
                    0 => Value::Int(rng.int(-5, 5)),
                    1 => Value::Float(rng.int(-5, 5) as f64),
                    _ => Value::Str("x".to_string().into()),
                })
                .collect();
            (values, Some("plain"))
        }
    }
}

/// Reference implementation of the comparison kernels: decode-then-compare.
fn reference_matches(values: &[Value], op: CmpOp, lit: &Value) -> Option<Vec<u32>> {
    let mut out = Vec::new();
    for (i, v) in values.iter().enumerate() {
        match v.total_cmp(lit) {
            Ok(ord) => {
                if op.holds(ord) {
                    out.push(i as u32);
                }
            }
            Err(_) => return None, // type error: the kernel must error too
        }
    }
    Some(out)
}

fn assert_column_roundtrip(rng: &mut Rng, values: &[Value], expect: Option<&'static str>) {
    let col = ColumnData::encode(values.to_vec());
    let label = col.label();
    if let Some(expected) = expect {
        assert_eq!(label, expected, "unexpected encoding for {values:?}");
    }
    assert_eq!(col.len(), values.len(), "[{label}] length diverged");

    // Single-slot access.
    for (i, v) in values.iter().enumerate() {
        assert_eq!(&col.value_at(i), v, "[{label}] slot {i} diverged");
    }

    // Bulk range decode, over random in-bounds windows including empty
    // and full (the contract leaves clamping to the caller).
    for _ in 0..8 {
        let start = rng.below(values.len() + 1);
        let take = rng.below(values.len() - start + 1);
        let mut out = vec![Value::Int(-777)]; // decode must append, not clobber
        col.decode_range_into(&mut out, start, take);
        assert_eq!(out[0], Value::Int(-777), "[{label}] decode clobbered the sink");
        assert_eq!(&out[1..], &values[start..start + take], "[{label}] range {start}+{take}");
    }

    // Gather of random ascending slot lists (the contract's precondition).
    for _ in 0..4 {
        let mut slots: Vec<u32> =
            (0..rng.below(20)).map(|_| rng.below(values.len().max(1)) as u32).collect();
        slots.sort_unstable();
        slots.dedup();
        let slots: Vec<u32> = slots.into_iter().filter(|s| (*s as usize) < values.len()).collect();
        let mut out = Vec::new();
        col.gather_into(&mut out, &slots);
        let expect: Vec<Value> = slots.iter().map(|s| values[*s as usize].clone()).collect();
        assert_eq!(out, expect, "[{label}] gather diverged");
    }

    // In-place comparison kernels against decode-then-compare, over literals
    // of every type so both the match and type-error behaviour are covered.
    let literals = [Value::Int(rng.int(-10, 10)), Value::Float(rng.float()), Value::Int(0)];
    for lit in &literals {
        for op in [CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge, CmpOp::Eq, CmpOp::Ne] {
            let mut got = Vec::new();
            match (
                col.matching_slots(0, values.len(), op, lit, &mut got),
                reference_matches(values, op, lit),
            ) {
                (Ok(()), Some(expect)) => {
                    assert_eq!(got, expect, "[{label}] {op:?} {lit} diverged");
                    // retain_matching must agree when seeded with all slots.
                    let mut slots: Vec<u32> = (0..values.len() as u32).collect();
                    col.retain_matching(&mut slots, op, lit).unwrap();
                    assert_eq!(slots, expect, "[{label}] retain {op:?} {lit} diverged");
                }
                (Err(_), None) => {}
                (Ok(()), None) => panic!("[{label}] kernel accepted a type error ({op:?} {lit})"),
                (Err(e), Some(_)) => panic!("[{label}] kernel errored on valid input: {e}"),
            }
        }
    }

    // The pick-cheapest contract: the chosen representation is never larger
    // than what plain storage of the same column would take.
    let plain_size = ColumnData::Plain(values.to_vec()).byte_size();
    assert!(
        col.byte_size() <= plain_size,
        "[{label}] encoded {} bytes > plain {plain_size}",
        col.byte_size()
    );
}

#[test]
fn random_columns_roundtrip_through_every_encoding() {
    let mut rng = Rng::new(0x0E0C_0DE5);
    let mut seen = std::collections::BTreeSet::new();
    for trial in 0..120 {
        let shape = trial % 6;
        let len = [1, 2, 7, 64, 257][rng.below(5)];
        let (values, expect) = shaped_column(&mut rng, shape, len);
        assert_column_roundtrip(&mut rng, &values, expect);
        seen.insert(ColumnData::encode(values).label());
    }
    // The shape mix must actually reach all four encodings, or the
    // assertions above silently test plain five ways.
    for label in ["plain", "delta", "rle", "dict"] {
        assert!(seen.contains(label), "no trial produced a {label} column (got {seen:?})");
    }
}

#[test]
fn empty_and_singleton_columns_are_degenerate_plain() {
    let empty = ColumnData::encode(Vec::new());
    assert_eq!(empty.label(), "plain");
    assert_eq!(empty.len(), 0);
    assert!(empty.is_empty());
    let mut out = Vec::new();
    empty.decode_range_into(&mut out, 0, 0);
    empty.gather_into(&mut out, &[]);
    assert!(out.is_empty());
    let mut slots = Vec::new();
    empty.matching_slots(0, 0, CmpOp::Eq, &Value::Int(1), &mut slots).unwrap();
    assert!(slots.is_empty());

    let one = ColumnData::encode(vec![Value::Bool(true)]);
    assert_eq!(one.len(), 1);
    assert_eq!(one.value_at(0), Value::Bool(true));
}

#[test]
fn positions_roundtrip_dense_strided_and_ragged() {
    let mut rng = Rng::new(0x9051_7105);
    for trial in 0..60 {
        let len = [0, 1, 3, 64, 300][rng.below(5)];
        let mut pos = Vec::with_capacity(len);
        let mut p = rng.int(-500, 500);
        let stride = match trial % 3 {
            0 => Some(1),             // dense: the Dense representation
            1 => Some(rng.int(2, 9)), // arithmetic: constant deltas
            _ => None,                // ragged gaps
        };
        for _ in 0..len {
            p += stride.unwrap_or_else(|| rng.int(1, 40));
            pos.push(p);
        }
        let enc = PosData::encode(pos.clone());
        let label = enc.label();
        assert_eq!(enc.len(), pos.len(), "[{label}] length");
        assert_eq!(enc.first(), pos.first().copied(), "[{label}] first");
        assert_eq!(enc.last(), pos.last().copied(), "[{label}] last");
        for (i, expect) in pos.iter().enumerate() {
            assert_eq!(enc.get(i), *expect, "[{label}] slot {i}");
        }
        let mut out = Vec::new();
        enc.decode_range_into(&mut out, 0, pos.len());
        assert_eq!(out, pos, "[{label}] bulk decode");
        // Binary searches agree with the reference partition points.
        for _ in 0..12 {
            let probe = rng.int(-600, 13_000);
            assert_eq!(
                enc.lower_bound(probe),
                pos.partition_point(|q| *q < probe),
                "[{label}] lower_bound({probe})"
            );
            assert_eq!(
                enc.upper_bound(probe),
                pos.partition_point(|q| *q <= probe),
                "[{label}] upper_bound({probe})"
            );
        }
    }
}

/// Whole-page integration: `Page::new` routes positions and every column
/// through the encoders; the row view and point lookups must reproduce the
/// original entries exactly, and the zone maps must hold the true extrema.
#[test]
fn pages_roundtrip_entries_and_zones() {
    let mut rng = Rng::new(0xBADC_0FFE);
    for trial in 0..40 {
        let len = [0, 1, 5, 64][rng.below(4)];
        let mut entries: Vec<(i64, Record)> = Vec::with_capacity(len);
        let mut p = 0i64;
        for _ in 0..len {
            p += rng.int(1, 6);
            let time = p * 10;
            // Column 1 is shaped by trial: runs, few-distinct, or noise.
            let v = match trial % 3 {
                0 => Value::Float((p / 8) as f64),
                1 => Value::Int(rng.int(0, 3)),
                _ => Value::Float(rng.float()),
            };
            entries.push((p, record![time, v.clone()]));
        }
        let page = Page::new(trial as u32, entries.clone());
        assert_eq!(page.len(), entries.len());
        // Tiny pages may carry fixed representation overhead (delta headers,
        // dense position descriptors); from a handful of rows on, encoding
        // must never lose to plain.
        if page.len() >= 4 {
            assert!(
                page.encoded_bytes() <= page.plain_bytes(),
                "page grew under encoding: {} > {}",
                page.encoded_bytes(),
                page.plain_bytes()
            );
        }

        let rows = page.decode_rows();
        assert_eq!(rows.len(), entries.len());
        for (slot, (pos, rec)) in entries.iter().enumerate() {
            assert_eq!(rows.pos(slot), *pos, "trial {trial}: position at slot {slot}");
            assert_eq!(&rows.record(slot), rec, "trial {trial}: record at slot {slot}");
            let (found, _bytes) = page.find(*pos).expect("stored position must be found");
            assert_eq!(&found, rec, "trial {trial}: find({pos})");
        }
        // Probing a gap position finds nothing.
        if let (Some(first), Some(last)) = (page.first_pos(), page.last_pos()) {
            for probe in first..=last {
                let expect = entries.iter().find(|(p, _)| *p == probe).map(|(_, r)| r.clone());
                assert_eq!(page.find(probe).map(|(r, _)| r), expect, "probe {probe}");
            }
        }
        // Zone maps carry the exact per-column extrema.
        for col in 0..2 {
            let zone = page.zone(col);
            if entries.is_empty() {
                continue;
            }
            let zone = zone.expect("non-empty page must have zones");
            let col_values: Vec<Value> =
                entries.iter().map(|(_, r)| r.values()[col].clone()).collect();
            let min = col_values.iter().cloned().reduce(|a, b| {
                if b.total_cmp(&a).unwrap().is_lt() {
                    b
                } else {
                    a
                }
            });
            let max = col_values.iter().cloned().reduce(|a, b| {
                if b.total_cmp(&a).unwrap().is_gt() {
                    b
                } else {
                    a
                }
            });
            assert_eq!(zone.min, min, "trial {trial}: zone min of column {col}");
            assert_eq!(zone.max, max, "trial {trial}: zone max of column {col}");
        }
    }
}
