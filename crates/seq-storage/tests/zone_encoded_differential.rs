//! Differential suite for encoded-domain zone derivation.
//!
//! Zone-map entries are now derived from the *encoded* column arrays
//! (`ColumnData::value_bounds`: frame-of-reference bounds from the delta
//! walk, RLE run representatives, dictionary entries) instead of a second
//! `total_cmp` pass over the plain values. The contract is bit-exactness:
//!
//! 1. for every column shape and every encoding the derived `[min, max]`
//!    must equal the reference fold over the plain values (mixed-type
//!    columns stay unbounded);
//! 2. skip decisions — and therefore `page_reads + pages_skipped`
//!    accounting — must be unchanged: a filtered scan still touches or
//!    skips exactly the pages the plain-value zones would have.

use std::cmp::Ordering;

use seq_core::{record, schema, AttrType, BaseSequence, CmpOp, Record, Span, Value};
use seq_storage::{Catalog, Page, ScanFilter, ZoneEntry};

/// The pre-encoding reference: min/max by `total_cmp` over plain values,
/// unbounded on any incomparable pair (exactly the old `build_zone`).
fn reference_zone(values: &[Value]) -> ZoneEntry {
    let mut min = 0usize;
    let mut max = 0usize;
    if values.is_empty() {
        return ZoneEntry::default();
    }
    for (i, v) in values.iter().enumerate().skip(1) {
        match (v.total_cmp(&values[min]), v.total_cmp(&values[max])) {
            (Ok(lo), Ok(hi)) => {
                if lo == Ordering::Less {
                    min = i;
                }
                if hi == Ordering::Greater {
                    max = i;
                }
            }
            _ => return ZoneEntry { min: None, max: None, null_count: 0 },
        }
    }
    ZoneEntry { min: Some(values[min].clone()), max: Some(values[max].clone()), null_count: 0 }
}

fn zones_eq(a: &ZoneEntry, b: &ZoneEntry) -> bool {
    let side = |x: &Option<Value>, y: &Option<Value>| match (x, y) {
        (None, None) => true,
        (Some(x), Some(y)) => {
            x.attr_type() == y.attr_type() && x.total_cmp(y) == Ok(Ordering::Equal)
        }
        _ => false,
    };
    side(&a.min, &b.min) && side(&a.max, &b.max)
}

/// Column shapes chosen to exercise every encoding the picker can choose:
/// delta-friendly walks, long runs (RLE), few distinct strings (dict),
/// floats (plain), and a mixed-type column (plain, unbounded zone).
fn shaped_columns() -> Vec<(&'static str, Vec<Value>)> {
    let mut walk = Vec::new();
    let mut x = 500i64;
    for i in 0..257 {
        x += (i % 7) - 3; // small signed steps → IntDelta
        walk.push(Value::Int(x));
    }
    let runs: Vec<Value> = (0..300).map(|i| Value::Int((i / 50) * 10)).collect();
    let dict: Vec<Value> =
        (0..300).map(|i| Value::str(["lo", "mid", "hi"][(i % 3) as usize])).collect();
    let floats: Vec<Value> = (0..120).map(|i| Value::Float((i as f64 * 0.37).sin())).collect();
    let mixed: Vec<Value> =
        (0..60).map(|i| if i % 2 == 0 { Value::Int(i) } else { Value::str("s") }).collect();
    let negative_walk: Vec<Value> = (0..100).map(|i| Value::Int(-1000 + i * i % 91)).collect();
    vec![
        ("delta_walk", walk),
        ("rle_runs", runs),
        ("dict_strings", dict),
        ("plain_floats", floats),
        ("mixed_types", mixed),
        ("negative_ints", negative_walk),
    ]
}

#[test]
fn encoded_zone_bounds_match_plain_reference() {
    for (name, values) in shaped_columns() {
        let entries: Vec<(i64, Record)> =
            values.iter().enumerate().map(|(i, v)| (i as i64 + 1, record![v.clone()])).collect();
        let page = Page::new(0, entries);
        let derived = page.zone(0).expect("page has one column");
        let reference = reference_zone(&values);
        assert!(
            zones_eq(derived, &reference),
            "{name}: encoded-derived zone {derived:?} != plain reference {reference:?} \
             (encoding {})",
            page.column_encodings().next().unwrap_or("?"),
        );
    }
}

#[test]
fn skip_decisions_match_plain_reference_zones() {
    // Every (op, literal) pair must get the same may_match answer from the
    // encoded-derived zone as from the plain-reference zone — identical
    // decisions imply identical page_reads + pages_skipped accounting.
    let ops = [CmpOp::Eq, CmpOp::Ne, CmpOp::Lt, CmpOp::Le, CmpOp::Gt, CmpOp::Ge];
    for (name, values) in shaped_columns() {
        let entries: Vec<(i64, Record)> =
            values.iter().enumerate().map(|(i, v)| (i as i64 + 1, record![v.clone()])).collect();
        let page = Page::new(0, entries);
        let derived = page.zone(0).expect("page has one column");
        let reference = reference_zone(&values);
        let literals = [
            Value::Int(-2000),
            Value::Int(0),
            Value::Int(495),
            Value::Int(520),
            Value::Int(10_000),
            Value::Float(-0.5),
            Value::Float(0.0),
            Value::Float(2.0),
            Value::str("mid"),
            Value::str("zzz"),
        ];
        for op in ops {
            for lit in &literals {
                assert_eq!(
                    derived.may_match(op, lit),
                    reference.may_match(op, lit),
                    "{name}: divergent skip decision for {op:?} {lit:?}"
                );
            }
        }
    }
}

#[test]
fn filtered_scan_accounting_is_exact_over_encoded_zones() {
    // End-to-end: a clustered integer sequence (delta-encoded pages) under a
    // pushed-down range filter. Every candidate page is either read or
    // skipped — never both, never neither — and the skip never loses a row.
    let n = 4096i64;
    let page_cap = 64usize;
    let sch = schema(&[("time", AttrType::Int), ("v", AttrType::Int)]);
    // Clustered: v ascends with position, so zone ranges partition cleanly.
    let entries: Vec<(i64, Record)> = (1..=n).map(|p| (p, record![p, p / 2])).collect();
    let base = BaseSequence::from_entries(sch, entries).unwrap();
    let mut catalog = Catalog::new();
    catalog.set_page_capacity(page_cap);
    catalog.register("S", &base);
    let stored = catalog.get("S").unwrap();
    let span = Span::new(1, n);

    for threshold in [0i64, 512, 1024, 2047, 5000] {
        catalog.reset_measurement();
        let filter = ScanFilter::new(vec![(1, CmpOp::Gt, Value::Int(threshold))]);
        let mut scan = stored.scan_owned_filtered(span, Some(filter));
        let mut rows = 0u64;
        while let Some((_, rec)) = scan.next_record() {
            if rec.values()[1].as_i64().unwrap() > threshold {
                rows += 1;
            }
        }
        let snap = catalog.stats().snapshot();
        let candidate_pages = (n as u64).div_ceil(page_cap as u64);
        assert_eq!(
            snap.page_reads + snap.pages_skipped,
            candidate_pages,
            "threshold {threshold}: reads {} + skips {} must cover every candidate page",
            snap.page_reads,
            snap.pages_skipped
        );
        let expected_rows = (1..=n).filter(|p| p / 2 > threshold).count() as u64;
        assert_eq!(rows, expected_rows, "threshold {threshold}: skipped pages lost rows");
        if threshold == 5000 {
            assert_eq!(snap.page_reads, 0, "fully-refuted scan must read nothing");
        }
    }
}
