//! Positional-join (Compose) evaluation — the Figure 4 contrast.
//!
//! §3.3 identifies the strategies:
//!
//! - **Join-Strategy-A** ([`StreamProbeJoin`]): stream one input and probe
//!   the other at each non-Null position. Two variants, depending on which
//!   side streams.
//! - **Join-Strategy-B** ([`LockStepJoin`]): stream both inputs in lock
//!   step, joining at common positions (the paper's Example 1.1 evaluation
//!   is this strategy plus a cached Previous).
//!
//! Which wins depends on the densities, their correlation, the per-record
//! access costs, and the selectivity of the operators below (§3.3) — the
//! cost model in `seq-opt` prices all three and the Figure 4 experiment
//! sweeps the crossover.
//!
//! Both strategies also exist vectorized ([`LockStepJoinBatch`],
//! [`StreamProbeJoinBatch`]): same access protocol, same counted quantities,
//! but whole [`RecordBatch`]es move per step and the executor counters fold
//! once per batch instead of once per record.

use std::cmp::Ordering;

use seq_core::{Record, RecordBatch, Result, Value};
use seq_ops::Expr;

use crate::batch::BatchCursor;
use crate::cursor::{Cursor, PointAccess};
use crate::stats::ExecStats;

/// Which input of the compose streams (the other is probed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamSide {
    /// The left input streams; the right is probed.
    Left,
    /// The right input streams; the left is probed.
    Right,
}

/// Join-Strategy-A: stream `outer`, probe `inner` at each outer position.
pub struct StreamProbeJoin {
    outer: Box<dyn Cursor>,
    inner: Box<dyn PointAccess>,
    outer_side: StreamSide,
    predicate: Option<Expr>,
    stats: ExecStats,
}

impl StreamProbeJoin {
    /// Join-Strategy-A: stream `outer`, probe `inner` per outer record.
    pub fn new(
        outer: Box<dyn Cursor>,
        inner: Box<dyn PointAccess>,
        outer_side: StreamSide,
        predicate: Option<Expr>,
        stats: ExecStats,
    ) -> StreamProbeJoin {
        StreamProbeJoin { outer, inner, outer_side, predicate, stats }
    }

    fn join(&self, outer_rec: &Record, inner_rec: &Record) -> Record {
        // Output schema order is always left ∘ right.
        match self.outer_side {
            StreamSide::Left => outer_rec.compose(inner_rec),
            StreamSide::Right => inner_rec.compose(outer_rec),
        }
    }

    fn emit(&mut self, pos: i64, outer_rec: Record) -> Result<Option<(i64, Record)>> {
        let Some(inner_rec) = self.inner.get(pos)? else { return Ok(None) };
        let joined = self.join(&outer_rec, &inner_rec);
        if let Some(p) = &self.predicate {
            self.stats.record_predicate_eval();
            if !p.eval_predicate(&joined)? {
                return Ok(None);
            }
        }
        Ok(Some((pos, joined)))
    }
}

impl Cursor for StreamProbeJoin {
    fn next(&mut self) -> Result<Option<(i64, Record)>> {
        while let Some((pos, outer_rec)) = self.outer.next()? {
            if let Some(out) = self.emit(pos, outer_rec)? {
                return Ok(Some(out));
            }
        }
        Ok(None)
    }

    fn next_from(&mut self, lower: i64) -> Result<Option<(i64, Record)>> {
        let mut item = self.outer.next_from(lower)?;
        while let Some((pos, outer_rec)) = item {
            if let Some(out) = self.emit(pos, outer_rec)? {
                return Ok(Some(out));
            }
            item = self.outer.next()?;
        }
        Ok(None)
    }
}

/// Join-Strategy-B: stream both inputs in lock step. Each side's skip hint
/// (`next_from`) lets the merge jump over stretches where the other side has
/// nothing — crucial when one input is a dense derived sequence (Previous,
/// aggregates) whose records should never be materialized in the gaps.
pub struct LockStepJoin {
    left: Box<dyn Cursor>,
    right: Box<dyn Cursor>,
    litem: Option<(i64, Record)>,
    ritem: Option<(i64, Record)>,
    started: bool,
    predicate: Option<Expr>,
    stats: ExecStats,
}

impl LockStepJoin {
    /// Join-Strategy-B: stream both inputs in lock step.
    pub fn new(
        left: Box<dyn Cursor>,
        right: Box<dyn Cursor>,
        predicate: Option<Expr>,
        stats: ExecStats,
    ) -> LockStepJoin {
        LockStepJoin { left, right, litem: None, ritem: None, started: false, predicate, stats }
    }
}

impl Cursor for LockStepJoin {
    fn next(&mut self) -> Result<Option<(i64, Record)>> {
        if !self.started {
            self.started = true;
            self.litem = self.left.next()?;
            if let Some((lp, _)) = &self.litem {
                // Let the right side skip directly to the left's position.
                self.ritem = self.right.next_from(*lp)?;
            }
        }
        loop {
            let (Some((lp, _)), Some((rp, _))) = (&self.litem, &self.ritem) else {
                return Ok(None);
            };
            let (lp, rp) = (*lp, *rp);
            if lp < rp {
                self.litem = self.left.next_from(rp)?;
            } else if rp < lp {
                self.ritem = self.right.next_from(lp)?;
            } else {
                let (_, lrec) = self.litem.take().expect("present");
                let (_, rrec) = self.ritem.take().expect("present");
                let joined = lrec.compose(&rrec);
                self.litem = self.left.next()?;
                self.ritem = self.right.next()?;
                let pass = match &self.predicate {
                    Some(p) => {
                        self.stats.record_predicate_eval();
                        p.eval_predicate(&joined)?
                    }
                    None => true,
                };
                if pass {
                    return Ok(Some((lp, joined)));
                }
            }
        }
    }

    fn next_from(&mut self, lower: i64) -> Result<Option<(i64, Record)>> {
        if !self.started {
            self.started = true;
            self.litem = self.left.next_from(lower)?;
            if let Some((lp, _)) = &self.litem {
                self.ritem = self.right.next_from((*lp).max(lower))?;
            }
            return self.next_started();
        }
        if self.litem.as_ref().map(|(p, _)| *p < lower).unwrap_or(false) {
            self.litem = self.left.next_from(lower)?;
        }
        if self.ritem.as_ref().map(|(p, _)| *p < lower).unwrap_or(false) {
            self.ritem = self.right.next_from(lower)?;
        }
        self.next_started()
    }
}

impl LockStepJoin {
    fn next_started(&mut self) -> Result<Option<(i64, Record)>> {
        debug_assert!(self.started);
        self.next()
    }
}

/// Probed access to a compose: probe both inputs at the position.
pub struct ComposeProbe {
    left: Box<dyn PointAccess>,
    right: Box<dyn PointAccess>,
    predicate: Option<Expr>,
    stats: ExecStats,
}

impl ComposeProbe {
    /// Probed compose: probe both inputs at each requested position.
    pub fn new(
        left: Box<dyn PointAccess>,
        right: Box<dyn PointAccess>,
        predicate: Option<Expr>,
        stats: ExecStats,
    ) -> ComposeProbe {
        ComposeProbe { left, right, predicate, stats }
    }
}

impl PointAccess for ComposeProbe {
    fn get(&mut self, pos: i64) -> Result<Option<Record>> {
        let Some(l) = self.left.get(pos)? else { return Ok(None) };
        let Some(r) = self.right.get(pos)? else { return Ok(None) };
        let joined = l.compose(&r);
        if let Some(p) = &self.predicate {
            self.stats.record_predicate_eval();
            if !p.eval_predicate(&joined)? {
                return Ok(None);
            }
        }
        Ok(Some(joined))
    }
}

/// Vectorized Join-Strategy-B: merge two position-sorted batch streams in
/// lock step with run-based position matching.
///
/// Mirrors [`LockStepJoin`]'s access protocol batch-at-a-time: the left is
/// pulled first and the right opens with the left's first position as its
/// skip hint; whenever one side's buffered batch runs dry mid-merge, it is
/// refilled via `next_batch_from(<other side's frontier>)` so whole stretches
/// with no possible matches are never materialized. Within a pair of buffered
/// batches the merge gallops with `partition_point` instead of stepping
/// record by record, and matched runs are composed columnar via
/// [`RecordBatch::extend_joined`]. Predicate evaluations are counted exactly
/// as the record path does — once per aligned pair, including failures — but
/// folded once per matched run.
pub struct LockStepJoinBatch {
    left: Box<dyn BatchCursor>,
    right: Box<dyn BatchCursor>,
    lbuf: Option<RecordBatch>,
    lrow: usize,
    rbuf: Option<RecordBatch>,
    rrow: usize,
    ldone: bool,
    rdone: bool,
    started: bool,
    predicate: Option<Expr>,
    stats: ExecStats,
    batch_size: usize,
}

impl LockStepJoinBatch {
    /// Vectorized Join-Strategy-B over two batch streams.
    pub fn new(
        left: Box<dyn BatchCursor>,
        right: Box<dyn BatchCursor>,
        predicate: Option<Expr>,
        stats: ExecStats,
        batch_size: usize,
    ) -> LockStepJoinBatch {
        LockStepJoinBatch {
            left,
            right,
            lbuf: None,
            lrow: 0,
            rbuf: None,
            rrow: 0,
            ldone: false,
            rdone: false,
            started: false,
            predicate,
            stats,
            batch_size,
        }
    }

    fn left_pos(&self) -> Option<i64> {
        self.lbuf.as_ref().map(|b| b.positions()[self.lrow])
    }

    fn right_pos(&self) -> Option<i64> {
        self.rbuf.as_ref().map(|b| b.positions()[self.rrow])
    }

    fn refill_left(&mut self, lower: Option<i64>) -> Result<()> {
        debug_assert!(self.lbuf.is_none());
        if self.ldone {
            return Ok(());
        }
        let item = match lower {
            Some(l) => self.left.next_batch_from(l)?,
            None => self.left.next_batch()?,
        };
        match item {
            Some(b) => {
                debug_assert!(!b.is_empty());
                self.lbuf = Some(b);
                self.lrow = 0;
            }
            None => self.ldone = true,
        }
        Ok(())
    }

    fn refill_right(&mut self, lower: Option<i64>) -> Result<()> {
        debug_assert!(self.rbuf.is_none());
        if self.rdone {
            return Ok(());
        }
        let item = match lower {
            Some(l) => self.right.next_batch_from(l)?,
            None => self.right.next_batch()?,
        };
        match item {
            Some(b) => {
                debug_assert!(!b.is_empty());
                self.rbuf = Some(b);
                self.rrow = 0;
            }
            None => self.rdone = true,
        }
        Ok(())
    }

    /// Advance the left frontier to the first row at position `>= lower`:
    /// a `partition_point` within the buffered batch when it covers the
    /// bound, otherwise one `next_batch_from` on the input — never a
    /// row-by-row walk.
    fn skip_left_to(&mut self, lower: i64) -> Result<()> {
        if let Some(b) = &self.lbuf {
            if b.last_pos().is_some_and(|p| p >= lower) {
                let at = b.positions().partition_point(|&p| p < lower);
                self.lrow = self.lrow.max(at);
                return Ok(());
            }
            self.lbuf = None;
            self.lrow = 0;
        }
        self.refill_left(Some(lower))
    }

    fn skip_right_to(&mut self, lower: i64) -> Result<()> {
        if let Some(b) = &self.rbuf {
            if b.last_pos().is_some_and(|p| p >= lower) {
                let at = b.positions().partition_point(|&p| p < lower);
                self.rrow = self.rrow.max(at);
                return Ok(());
            }
            self.rbuf = None;
            self.rrow = 0;
        }
        self.refill_right(Some(lower))
    }

    /// Make both frontiers available, refilling an exhausted side with the
    /// other side's frontier as the skip hint. Returns `false` once either
    /// input ends (mirroring the record path, the surviving side is not
    /// pulled further).
    fn ensure_frontiers(&mut self) -> Result<bool> {
        if self.lbuf.is_none() && self.ldone {
            return Ok(false);
        }
        if self.rbuf.is_none() && self.rdone {
            return Ok(false);
        }
        if self.lbuf.is_none() {
            let hint = self.right_pos();
            self.refill_left(hint)?;
            if self.lbuf.is_none() {
                return Ok(false);
            }
        }
        if self.rbuf.is_none() {
            let hint = self.left_pos();
            self.refill_right(hint)?;
            if self.rbuf.is_none() {
                return Ok(false);
            }
        }
        Ok(true)
    }

    fn merge(&mut self) -> Result<Option<RecordBatch>> {
        let cap = self.batch_size;
        let mut out: Option<RecordBatch> = None;
        loop {
            if !self.ensure_frontiers()? {
                break;
            }
            let lb = self.lbuf.as_ref().expect("frontier");
            let rb = self.rbuf.as_ref().expect("frontier");
            let lpos = lb.positions();
            let rpos = rb.positions();
            let (mut i, mut j) = (self.lrow, self.rrow);
            let room = cap - out.as_ref().map_or(0, |b| b.len());
            let mut lidx: Vec<usize> = Vec::new();
            let mut ridx: Vec<usize> = Vec::new();
            while i < lpos.len() && j < rpos.len() && lidx.len() < room {
                match lpos[i].cmp(&rpos[j]) {
                    Ordering::Less => i += lpos[i..].partition_point(|&p| p < rpos[j]),
                    Ordering::Greater => j += rpos[j..].partition_point(|&p| p < lpos[i]),
                    Ordering::Equal => {
                        lidx.push(i);
                        ridx.push(j);
                        i += 1;
                        j += 1;
                    }
                }
            }
            if !lidx.is_empty() {
                let arity = lb.arity() + rb.arity();
                match &self.predicate {
                    None => {
                        let dst = out.get_or_insert_with(|| RecordBatch::with_capacity(arity, cap));
                        dst.extend_joined(lb, &lidx, rb, &ridx)?;
                    }
                    Some(p) => {
                        let mut cand = RecordBatch::with_capacity(arity, lidx.len());
                        cand.extend_joined(lb, &lidx, rb, &ridx)?;
                        self.stats.record_predicate_evals(lidx.len() as u64);
                        let mut keep: Vec<usize> = Vec::new();
                        for (k, row) in cand.rows().enumerate() {
                            if p.eval_predicate_row(&row)? {
                                keep.push(k);
                            }
                        }
                        if !keep.is_empty() {
                            let klidx: Vec<usize> = keep.iter().map(|&k| lidx[k]).collect();
                            let kridx: Vec<usize> = keep.iter().map(|&k| ridx[k]).collect();
                            let dst =
                                out.get_or_insert_with(|| RecordBatch::with_capacity(arity, cap));
                            dst.extend_joined(lb, &klidx, rb, &kridx)?;
                        }
                    }
                }
            }
            self.lrow = i;
            self.rrow = j;
            if i >= lpos.len() {
                self.lbuf = None;
                self.lrow = 0;
            }
            if j >= rpos.len() {
                self.rbuf = None;
                self.rrow = 0;
            }
            if out.as_ref().is_some_and(|b| b.len() >= cap) {
                break;
            }
        }
        Ok(out.filter(|b| !b.is_empty()))
    }
}

impl BatchCursor for LockStepJoinBatch {
    fn next_batch(&mut self) -> Result<Option<RecordBatch>> {
        if !self.started {
            self.started = true;
            self.refill_left(None)?;
            if let Some(lp) = self.left_pos() {
                self.refill_right(Some(lp))?;
            }
        }
        self.merge()
    }

    fn next_batch_from(&mut self, lower: i64) -> Result<Option<RecordBatch>> {
        if !self.started {
            self.started = true;
            self.refill_left(Some(lower))?;
            if let Some(lp) = self.left_pos() {
                self.refill_right(Some(lp.max(lower)))?;
            }
            return self.merge();
        }
        if self.left_pos().is_none_or(|p| p < lower) {
            self.skip_left_to(lower)?;
        }
        if self.right_pos().is_some_and(|p| p < lower) {
            self.skip_right_to(lower)?;
        }
        self.merge()
    }
}

/// Vectorized Join-Strategy-A: stream the outer in batches, probe the inner
/// at every outer position.
///
/// One `inner.get(pos)` probe is issued per streamed outer row — missing
/// positions included — so the §4.1 probe counts are exactly those of
/// [`StreamProbeJoin`]. Matches are composed in the fixed left ∘ right schema
/// order regardless of which side streams, and predicate evaluations (counted
/// only for found pairs, as on the record path) are folded once per outer
/// batch.
pub struct StreamProbeJoinBatch {
    outer: Box<dyn BatchCursor>,
    inner: Box<dyn PointAccess>,
    outer_side: StreamSide,
    predicate: Option<Expr>,
    stats: ExecStats,
}

impl StreamProbeJoinBatch {
    /// Vectorized Join-Strategy-A: batch the outer stream, probe the inner.
    pub fn new(
        outer: Box<dyn BatchCursor>,
        inner: Box<dyn PointAccess>,
        outer_side: StreamSide,
        predicate: Option<Expr>,
        stats: ExecStats,
    ) -> StreamProbeJoinBatch {
        StreamProbeJoinBatch { outer, inner, outer_side, predicate, stats }
    }

    /// Probe the inner at every position of one outer batch; `None` when
    /// nothing in the batch joins (the caller then pulls the next batch).
    fn probe_batch(&mut self, batch: &RecordBatch) -> Result<Option<RecordBatch>> {
        let mut out: Option<RecordBatch> = None;
        let mut evals = 0u64;
        for i in 0..batch.len() {
            let pos = batch.positions()[i];
            let Some(inner_rec) = self.inner.get(pos)? else { continue };
            let arity = batch.arity() + inner_rec.arity();
            // Output schema order is always left ∘ right.
            let mut values: Vec<Value> = Vec::with_capacity(arity);
            match self.outer_side {
                StreamSide::Left => {
                    for col in batch.columns() {
                        values.push(col[i].clone());
                    }
                    values.extend(inner_rec.values().iter().cloned());
                }
                StreamSide::Right => {
                    values.extend(inner_rec.values().iter().cloned());
                    for col in batch.columns() {
                        values.push(col[i].clone());
                    }
                }
            }
            if let Some(p) = &self.predicate {
                evals += 1;
                let joined = Record::new(values);
                if !p.eval_predicate(&joined)? {
                    continue;
                }
                let dst = out.get_or_insert_with(|| RecordBatch::with_capacity(arity, batch.len()));
                dst.push_record(pos, &joined)?;
            } else {
                let dst = out.get_or_insert_with(|| RecordBatch::with_capacity(arity, batch.len()));
                dst.push_row(pos, values)?;
            }
        }
        self.stats.record_predicate_evals(evals);
        Ok(out)
    }
}

impl BatchCursor for StreamProbeJoinBatch {
    fn next_batch(&mut self) -> Result<Option<RecordBatch>> {
        while let Some(b) = self.outer.next_batch()? {
            if let Some(out) = self.probe_batch(&b)? {
                return Ok(Some(out));
            }
        }
        Ok(None)
    }

    fn next_batch_from(&mut self, lower: i64) -> Result<Option<RecordBatch>> {
        let mut item = self.outer.next_batch_from(lower)?;
        while let Some(b) = item {
            if let Some(out) = self.probe_batch(&b)? {
                return Ok(Some(out));
            }
            item = self.outer.next_batch()?;
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::{BaseProbe, BaseStreamCursor};
    use seq_core::{record, schema, AttrType, BaseSequence, Value};
    use seq_storage::Catalog;
    use std::sync::Arc;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.set_page_capacity(4);
        let sch = schema(&[("time", AttrType::Int), ("v", AttrType::Float)]);
        let a = BaseSequence::from_entries(
            sch.clone(),
            vec![
                (1, record![1i64, 10.0]),
                (3, record![3i64, 30.0]),
                (5, record![5i64, 50.0]),
                (9, record![9i64, 90.0]),
            ],
        )
        .unwrap();
        let b = BaseSequence::from_entries(
            sch,
            vec![
                (2, record![2i64, 2.0]),
                (3, record![3i64, 3.0]),
                (5, record![5i64, 500.0]),
                (8, record![8i64, 8.0]),
            ],
        )
        .unwrap();
        c.register("A", &a);
        c.register("B", &b);
        c
    }

    fn stream(c: &Catalog, name: &str) -> Box<dyn Cursor> {
        let store = c.get(name).unwrap();
        let span = seq_core::Sequence::meta(store.as_ref()).span;
        Box::new(BaseStreamCursor::new(&store, span))
    }

    fn probe(c: &Catalog, name: &str) -> Box<dyn PointAccess> {
        let store: Arc<seq_storage::StoredSequence> = c.get(name).unwrap();
        let span = seq_core::Sequence::meta(store.as_ref()).span;
        Box::new(BaseProbe::new(store, span))
    }

    fn collect(mut cur: impl Cursor) -> Vec<(i64, usize)> {
        let mut out = Vec::new();
        while let Some((p, r)) = cur.next().unwrap() {
            out.push((p, r.arity()));
        }
        out
    }

    #[test]
    fn lockstep_joins_common_positions() {
        let c = catalog();
        let j = LockStepJoin::new(stream(&c, "A"), stream(&c, "B"), None, ExecStats::new());
        assert_eq!(collect(j), vec![(3, 4), (5, 4)]);
    }

    #[test]
    fn all_strategies_agree() {
        let c = catalog();
        let lockstep = LockStepJoin::new(stream(&c, "A"), stream(&c, "B"), None, ExecStats::new());
        let sp = StreamProbeJoin::new(
            stream(&c, "A"),
            probe(&c, "B"),
            StreamSide::Left,
            None,
            ExecStats::new(),
        );
        let ps = StreamProbeJoin::new(
            stream(&c, "B"),
            probe(&c, "A"),
            StreamSide::Right,
            None,
            ExecStats::new(),
        );
        let a = collect(lockstep);
        assert_eq!(a, collect(sp));
        assert_eq!(a, collect(ps));
    }

    #[test]
    fn schema_order_is_left_then_right_for_both_variants() {
        let c = catalog();
        let mut sp = StreamProbeJoin::new(
            stream(&c, "A"),
            probe(&c, "B"),
            StreamSide::Left,
            None,
            ExecStats::new(),
        );
        let (_, r1) = sp.next().unwrap().unwrap();
        let mut ps = StreamProbeJoin::new(
            stream(&c, "B"),
            probe(&c, "A"),
            StreamSide::Right,
            None,
            ExecStats::new(),
        );
        let (_, r2) = ps.next().unwrap().unwrap();
        // Both at position 3: A's value 30.0 first, B's 3.0 third.
        assert_eq!(r1.value(1).unwrap(), &Value::Float(30.0));
        assert_eq!(r1.value(3).unwrap(), &Value::Float(3.0));
        assert_eq!(r2.value(1).unwrap(), &Value::Float(30.0));
        assert_eq!(r2.value(3).unwrap(), &Value::Float(3.0));
    }

    #[test]
    fn join_predicate_filters_and_counts() {
        let c = catalog();
        let sch = schema(&[("time", AttrType::Int), ("v", AttrType::Float)]);
        let composed = sch.compose(&sch);
        let pred = Expr::attr("v").gt(Expr::attr("v_r")).bind(&composed).unwrap();
        let stats = ExecStats::new();
        let j = LockStepJoin::new(stream(&c, "A"), stream(&c, "B"), Some(pred), stats.clone());
        // Position 3: 30 > 3 ✓. Position 5: 50 > 500 ✗.
        assert_eq!(collect(j), vec![(3, 4)]);
        assert_eq!(stats.snapshot().predicate_evals, 2);
    }

    #[test]
    fn next_from_skips_join_output() {
        let c = catalog();
        let mut j = LockStepJoin::new(stream(&c, "A"), stream(&c, "B"), None, ExecStats::new());
        let item = j.next_from(4).unwrap().unwrap();
        assert_eq!(item.0, 5);
        assert!(j.next().unwrap().is_none());
    }

    #[test]
    fn compose_probe_point_lookup() {
        let c = catalog();
        let mut p = ComposeProbe::new(probe(&c, "A"), probe(&c, "B"), None, ExecStats::new());
        assert!(p.get(3).unwrap().is_some());
        assert!(p.get(1).unwrap().is_none()); // A only
        assert!(p.get(8).unwrap().is_none()); // B only
        assert!(p.get(100).unwrap().is_none());
    }

    #[test]
    fn lockstep_probes_nothing_on_disjoint_inputs() {
        let mut c = Catalog::new();
        let sch = schema(&[("x", AttrType::Int)]);
        let a = BaseSequence::from_entries(sch.clone(), vec![(1, record![1i64])]).unwrap();
        let b = BaseSequence::from_entries(sch, vec![(100, record![100i64])]).unwrap();
        c.register("A", &a);
        c.register("B", &b);
        let j = LockStepJoin::new(stream(&c, "A"), stream(&c, "B"), None, ExecStats::new());
        assert!(collect(j).is_empty());
    }

    fn batch_stream(c: &Catalog, name: &str, batch_size: usize) -> Box<dyn BatchCursor> {
        let store = c.get(name).unwrap();
        let span = seq_core::Sequence::meta(store.as_ref()).span;
        Box::new(crate::batch::BaseBatchCursor::new(
            &store,
            span,
            batch_size,
            seq_storage::ColumnSet::All,
        ))
    }

    fn collect_batches(mut cur: impl BatchCursor) -> Vec<(i64, Record)> {
        let mut out = Vec::new();
        while let Some(b) = cur.next_batch().unwrap() {
            assert!(!b.is_empty());
            b.append_records_into(&mut out);
        }
        out
    }

    #[test]
    fn lockstep_batch_matches_record_path_for_all_batch_sizes() {
        let c = catalog();
        let mut expect = Vec::new();
        let mut rec = LockStepJoin::new(stream(&c, "A"), stream(&c, "B"), None, ExecStats::new());
        while let Some(item) = rec.next().unwrap() {
            expect.push(item);
        }
        for bs in [1, 2, 3, 64] {
            let j = LockStepJoinBatch::new(
                batch_stream(&c, "A", bs),
                batch_stream(&c, "B", bs),
                None,
                ExecStats::new(),
                bs,
            );
            assert_eq!(collect_batches(j), expect, "batch_size {bs}");
        }
    }

    #[test]
    fn lockstep_batch_predicate_counts_failures() {
        let c = catalog();
        let sch = schema(&[("time", AttrType::Int), ("v", AttrType::Float)]);
        let composed = sch.compose(&sch);
        let pred = Expr::attr("v").gt(Expr::attr("v_r")).bind(&composed).unwrap();
        let stats = ExecStats::new();
        let j = LockStepJoinBatch::new(
            batch_stream(&c, "A", 2),
            batch_stream(&c, "B", 2),
            Some(pred),
            stats.clone(),
            2,
        );
        let rows = collect_batches(j);
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].0, 3);
        // Position 3: 30 > 3 ✓. Position 5: 50 > 500 ✗ — still counted.
        assert_eq!(stats.snapshot().predicate_evals, 2);
    }

    #[test]
    fn lockstep_batch_next_from_skips_without_replay() {
        let c = catalog();
        let mut j = LockStepJoinBatch::new(
            batch_stream(&c, "A", 2),
            batch_stream(&c, "B", 2),
            None,
            ExecStats::new(),
            2,
        );
        let b = j.next_batch_from(4).unwrap().unwrap();
        assert_eq!(b.first_pos(), Some(5));
        assert!(j.next_batch().unwrap().is_none());
        // Mid-stream skip past buffered output.
        let mut j2 = LockStepJoinBatch::new(
            batch_stream(&c, "A", 1),
            batch_stream(&c, "B", 1),
            None,
            ExecStats::new(),
            1,
        );
        let first = j2.next_batch().unwrap().unwrap();
        assert_eq!(first.first_pos(), Some(3));
        let next = j2.next_batch_from(5).unwrap().unwrap();
        assert_eq!(next.first_pos(), Some(5));
        assert!(j2.next_batch().unwrap().is_none());
    }

    #[test]
    fn stream_probe_batch_matches_record_path_both_orientations() {
        let c = catalog();
        for (outer, inner, side) in [("A", "B", StreamSide::Left), ("B", "A", StreamSide::Right)] {
            let mut expect = Vec::new();
            let mut rec = StreamProbeJoin::new(
                stream(&c, outer),
                probe(&c, inner),
                side,
                None,
                ExecStats::new(),
            );
            while let Some(item) = rec.next().unwrap() {
                expect.push(item);
            }
            let j = StreamProbeJoinBatch::new(
                batch_stream(&c, outer, 3),
                probe(&c, inner),
                side,
                None,
                ExecStats::new(),
            );
            assert_eq!(collect_batches(j), expect, "outer {outer}");
        }
    }

    #[test]
    fn stream_probe_batch_next_from_delegates_to_outer() {
        let c = catalog();
        let mut j = StreamProbeJoinBatch::new(
            batch_stream(&c, "A", 2),
            probe(&c, "B"),
            StreamSide::Left,
            None,
            ExecStats::new(),
        );
        let b = j.next_batch_from(4).unwrap().unwrap();
        assert_eq!(b.first_pos(), Some(5));
        assert!(j.next_batch().unwrap().is_none());
    }

    #[test]
    fn batch_joins_emit_nothing_on_disjoint_inputs() {
        let mut c = Catalog::new();
        let sch = schema(&[("x", AttrType::Int)]);
        let a = BaseSequence::from_entries(sch.clone(), vec![(1, record![1i64])]).unwrap();
        let b = BaseSequence::from_entries(sch, vec![(100, record![100i64])]).unwrap();
        c.register("A", &a);
        c.register("B", &b);
        let j = LockStepJoinBatch::new(
            batch_stream(&c, "A", 4),
            batch_stream(&c, "B", 4),
            None,
            ExecStats::new(),
            4,
        );
        assert!(collect_batches(j).is_empty());
        let sp = StreamProbeJoinBatch::new(
            batch_stream(&c, "A", 4),
            probe(&c, "B"),
            StreamSide::Left,
            None,
            ExecStats::new(),
        );
        assert!(collect_batches(sp).is_empty());
    }
}
