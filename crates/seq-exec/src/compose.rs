//! Positional-join (Compose) evaluation — the Figure 4 contrast.
//!
//! §3.3 identifies the strategies:
//!
//! - **Join-Strategy-A** ([`StreamProbeJoin`]): stream one input and probe
//!   the other at each non-Null position. Two variants, depending on which
//!   side streams.
//! - **Join-Strategy-B** ([`LockStepJoin`]): stream both inputs in lock
//!   step, joining at common positions (the paper's Example 1.1 evaluation
//!   is this strategy plus a cached Previous).
//!
//! Which wins depends on the densities, their correlation, the per-record
//! access costs, and the selectivity of the operators below (§3.3) — the
//! cost model in `seq-opt` prices all three and the Figure 4 experiment
//! sweeps the crossover.

use seq_core::{Record, Result};
use seq_ops::Expr;

use crate::cursor::{Cursor, PointAccess};
use crate::stats::ExecStats;

/// Which input of the compose streams (the other is probed).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StreamSide {
    /// The left input streams; the right is probed.
    Left,
    /// The right input streams; the left is probed.
    Right,
}

/// Join-Strategy-A: stream `outer`, probe `inner` at each outer position.
pub struct StreamProbeJoin {
    outer: Box<dyn Cursor>,
    inner: Box<dyn PointAccess>,
    outer_side: StreamSide,
    predicate: Option<Expr>,
    stats: ExecStats,
}

impl StreamProbeJoin {
    /// Join-Strategy-A: stream `outer`, probe `inner` per outer record.
    pub fn new(
        outer: Box<dyn Cursor>,
        inner: Box<dyn PointAccess>,
        outer_side: StreamSide,
        predicate: Option<Expr>,
        stats: ExecStats,
    ) -> StreamProbeJoin {
        StreamProbeJoin { outer, inner, outer_side, predicate, stats }
    }

    fn join(&self, outer_rec: &Record, inner_rec: &Record) -> Record {
        // Output schema order is always left ∘ right.
        match self.outer_side {
            StreamSide::Left => outer_rec.compose(inner_rec),
            StreamSide::Right => inner_rec.compose(outer_rec),
        }
    }

    fn emit(&mut self, pos: i64, outer_rec: Record) -> Result<Option<(i64, Record)>> {
        let Some(inner_rec) = self.inner.get(pos)? else { return Ok(None) };
        let joined = self.join(&outer_rec, &inner_rec);
        if let Some(p) = &self.predicate {
            self.stats.record_predicate_eval();
            if !p.eval_predicate(&joined)? {
                return Ok(None);
            }
        }
        Ok(Some((pos, joined)))
    }
}

impl Cursor for StreamProbeJoin {
    fn next(&mut self) -> Result<Option<(i64, Record)>> {
        while let Some((pos, outer_rec)) = self.outer.next()? {
            if let Some(out) = self.emit(pos, outer_rec)? {
                return Ok(Some(out));
            }
        }
        Ok(None)
    }

    fn next_from(&mut self, lower: i64) -> Result<Option<(i64, Record)>> {
        let mut item = self.outer.next_from(lower)?;
        while let Some((pos, outer_rec)) = item {
            if let Some(out) = self.emit(pos, outer_rec)? {
                return Ok(Some(out));
            }
            item = self.outer.next()?;
        }
        Ok(None)
    }
}

/// Join-Strategy-B: stream both inputs in lock step. Each side's skip hint
/// (`next_from`) lets the merge jump over stretches where the other side has
/// nothing — crucial when one input is a dense derived sequence (Previous,
/// aggregates) whose records should never be materialized in the gaps.
pub struct LockStepJoin {
    left: Box<dyn Cursor>,
    right: Box<dyn Cursor>,
    litem: Option<(i64, Record)>,
    ritem: Option<(i64, Record)>,
    started: bool,
    predicate: Option<Expr>,
    stats: ExecStats,
}

impl LockStepJoin {
    /// Join-Strategy-B: stream both inputs in lock step.
    pub fn new(
        left: Box<dyn Cursor>,
        right: Box<dyn Cursor>,
        predicate: Option<Expr>,
        stats: ExecStats,
    ) -> LockStepJoin {
        LockStepJoin { left, right, litem: None, ritem: None, started: false, predicate, stats }
    }
}

impl Cursor for LockStepJoin {
    fn next(&mut self) -> Result<Option<(i64, Record)>> {
        if !self.started {
            self.started = true;
            self.litem = self.left.next()?;
            if let Some((lp, _)) = &self.litem {
                // Let the right side skip directly to the left's position.
                self.ritem = self.right.next_from(*lp)?;
            }
        }
        loop {
            let (Some((lp, _)), Some((rp, _))) = (&self.litem, &self.ritem) else {
                return Ok(None);
            };
            let (lp, rp) = (*lp, *rp);
            if lp < rp {
                self.litem = self.left.next_from(rp)?;
            } else if rp < lp {
                self.ritem = self.right.next_from(lp)?;
            } else {
                let (_, lrec) = self.litem.take().expect("present");
                let (_, rrec) = self.ritem.take().expect("present");
                let joined = lrec.compose(&rrec);
                self.litem = self.left.next()?;
                self.ritem = self.right.next()?;
                let pass = match &self.predicate {
                    Some(p) => {
                        self.stats.record_predicate_eval();
                        p.eval_predicate(&joined)?
                    }
                    None => true,
                };
                if pass {
                    return Ok(Some((lp, joined)));
                }
            }
        }
    }

    fn next_from(&mut self, lower: i64) -> Result<Option<(i64, Record)>> {
        if !self.started {
            self.started = true;
            self.litem = self.left.next_from(lower)?;
            if let Some((lp, _)) = &self.litem {
                self.ritem = self.right.next_from((*lp).max(lower))?;
            }
            return self.next_started();
        }
        if self.litem.as_ref().map(|(p, _)| *p < lower).unwrap_or(false) {
            self.litem = self.left.next_from(lower)?;
        }
        if self.ritem.as_ref().map(|(p, _)| *p < lower).unwrap_or(false) {
            self.ritem = self.right.next_from(lower)?;
        }
        self.next_started()
    }
}

impl LockStepJoin {
    fn next_started(&mut self) -> Result<Option<(i64, Record)>> {
        debug_assert!(self.started);
        self.next()
    }
}

/// Probed access to a compose: probe both inputs at the position.
pub struct ComposeProbe {
    left: Box<dyn PointAccess>,
    right: Box<dyn PointAccess>,
    predicate: Option<Expr>,
    stats: ExecStats,
}

impl ComposeProbe {
    /// Probed compose: probe both inputs at each requested position.
    pub fn new(
        left: Box<dyn PointAccess>,
        right: Box<dyn PointAccess>,
        predicate: Option<Expr>,
        stats: ExecStats,
    ) -> ComposeProbe {
        ComposeProbe { left, right, predicate, stats }
    }
}

impl PointAccess for ComposeProbe {
    fn get(&mut self, pos: i64) -> Result<Option<Record>> {
        let Some(l) = self.left.get(pos)? else { return Ok(None) };
        let Some(r) = self.right.get(pos)? else { return Ok(None) };
        let joined = l.compose(&r);
        if let Some(p) = &self.predicate {
            self.stats.record_predicate_eval();
            if !p.eval_predicate(&joined)? {
                return Ok(None);
            }
        }
        Ok(Some(joined))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::{BaseProbe, BaseStreamCursor};
    use seq_core::{record, schema, AttrType, BaseSequence, Value};
    use seq_storage::Catalog;
    use std::sync::Arc;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.set_page_capacity(4);
        let sch = schema(&[("time", AttrType::Int), ("v", AttrType::Float)]);
        let a = BaseSequence::from_entries(
            sch.clone(),
            vec![
                (1, record![1i64, 10.0]),
                (3, record![3i64, 30.0]),
                (5, record![5i64, 50.0]),
                (9, record![9i64, 90.0]),
            ],
        )
        .unwrap();
        let b = BaseSequence::from_entries(
            sch,
            vec![
                (2, record![2i64, 2.0]),
                (3, record![3i64, 3.0]),
                (5, record![5i64, 500.0]),
                (8, record![8i64, 8.0]),
            ],
        )
        .unwrap();
        c.register("A", &a);
        c.register("B", &b);
        c
    }

    fn stream(c: &Catalog, name: &str) -> Box<dyn Cursor> {
        let store = c.get(name).unwrap();
        let span = seq_core::Sequence::meta(store.as_ref()).span;
        Box::new(BaseStreamCursor::new(&store, span))
    }

    fn probe(c: &Catalog, name: &str) -> Box<dyn PointAccess> {
        let store: Arc<seq_storage::StoredSequence> = c.get(name).unwrap();
        let span = seq_core::Sequence::meta(store.as_ref()).span;
        Box::new(BaseProbe::new(store, span))
    }

    fn collect(mut cur: impl Cursor) -> Vec<(i64, usize)> {
        let mut out = Vec::new();
        while let Some((p, r)) = cur.next().unwrap() {
            out.push((p, r.arity()));
        }
        out
    }

    #[test]
    fn lockstep_joins_common_positions() {
        let c = catalog();
        let j = LockStepJoin::new(stream(&c, "A"), stream(&c, "B"), None, ExecStats::new());
        assert_eq!(collect(j), vec![(3, 4), (5, 4)]);
    }

    #[test]
    fn all_strategies_agree() {
        let c = catalog();
        let lockstep = LockStepJoin::new(stream(&c, "A"), stream(&c, "B"), None, ExecStats::new());
        let sp = StreamProbeJoin::new(
            stream(&c, "A"),
            probe(&c, "B"),
            StreamSide::Left,
            None,
            ExecStats::new(),
        );
        let ps = StreamProbeJoin::new(
            stream(&c, "B"),
            probe(&c, "A"),
            StreamSide::Right,
            None,
            ExecStats::new(),
        );
        let a = collect(lockstep);
        assert_eq!(a, collect(sp));
        assert_eq!(a, collect(ps));
    }

    #[test]
    fn schema_order_is_left_then_right_for_both_variants() {
        let c = catalog();
        let mut sp = StreamProbeJoin::new(
            stream(&c, "A"),
            probe(&c, "B"),
            StreamSide::Left,
            None,
            ExecStats::new(),
        );
        let (_, r1) = sp.next().unwrap().unwrap();
        let mut ps = StreamProbeJoin::new(
            stream(&c, "B"),
            probe(&c, "A"),
            StreamSide::Right,
            None,
            ExecStats::new(),
        );
        let (_, r2) = ps.next().unwrap().unwrap();
        // Both at position 3: A's value 30.0 first, B's 3.0 third.
        assert_eq!(r1.value(1).unwrap(), &Value::Float(30.0));
        assert_eq!(r1.value(3).unwrap(), &Value::Float(3.0));
        assert_eq!(r2.value(1).unwrap(), &Value::Float(30.0));
        assert_eq!(r2.value(3).unwrap(), &Value::Float(3.0));
    }

    #[test]
    fn join_predicate_filters_and_counts() {
        let c = catalog();
        let sch = schema(&[("time", AttrType::Int), ("v", AttrType::Float)]);
        let composed = sch.compose(&sch);
        let pred = Expr::attr("v").gt(Expr::attr("v_r")).bind(&composed).unwrap();
        let stats = ExecStats::new();
        let j = LockStepJoin::new(stream(&c, "A"), stream(&c, "B"), Some(pred), stats.clone());
        // Position 3: 30 > 3 ✓. Position 5: 50 > 500 ✗.
        assert_eq!(collect(j), vec![(3, 4)]);
        assert_eq!(stats.snapshot().predicate_evals, 2);
    }

    #[test]
    fn next_from_skips_join_output() {
        let c = catalog();
        let mut j = LockStepJoin::new(stream(&c, "A"), stream(&c, "B"), None, ExecStats::new());
        let item = j.next_from(4).unwrap().unwrap();
        assert_eq!(item.0, 5);
        assert!(j.next().unwrap().is_none());
    }

    #[test]
    fn compose_probe_point_lookup() {
        let c = catalog();
        let mut p = ComposeProbe::new(probe(&c, "A"), probe(&c, "B"), None, ExecStats::new());
        assert!(p.get(3).unwrap().is_some());
        assert!(p.get(1).unwrap().is_none()); // A only
        assert!(p.get(8).unwrap().is_none()); // B only
        assert!(p.get(100).unwrap().is_none());
    }

    #[test]
    fn lockstep_probes_nothing_on_disjoint_inputs() {
        let mut c = Catalog::new();
        let sch = schema(&[("x", AttrType::Int)]);
        let a = BaseSequence::from_entries(sch.clone(), vec![(1, record![1i64])]).unwrap();
        let b = BaseSequence::from_entries(sch, vec![(100, record![100i64])]).unwrap();
        c.register("A", &a);
        c.register("B", &b);
        let j = LockStepJoin::new(stream(&c, "A"), stream(&c, "B"), None, ExecStats::new());
        assert!(collect(j).is_empty());
    }
}
