//! Plan execution: the Start operator (Figure 6).
//!
//! "The Start operator at the root of the plan induces a stream access on
//! its input sequence (i.e. it repeatedly asks for the next non-Null
//! record)." (§4.1.4) — [`execute`] is that operator. Probed evaluation of
//! specific positions ([`probe_positions`]) covers the other query form the
//! template supports ("records at (a) specific positions").

use seq_core::{Record, Result, Span};

use crate::plan::{ExecContext, PhysPlan};
use crate::telemetry::{instrument, QueryPath};

/// Stream-evaluate the plan, materializing every non-Null output within the
/// plan's position range, in positional order.
pub fn execute(plan: &PhysPlan, ctx: &ExecContext<'_>) -> Result<Vec<(i64, Record)>> {
    instrument(
        ctx,
        QueryPath::Tuple,
        |rows: &Vec<(i64, Record)>| rows.len() as u64,
        || execute_inner(plan, ctx),
    )
}

fn execute_inner(plan: &PhysPlan, ctx: &ExecContext<'_>) -> Result<Vec<(i64, Record)>> {
    let range = plan.range.intersect(&plan.root.span());
    if range.is_empty() {
        return Ok(Vec::new());
    }
    if !range.is_bounded() {
        return Err(seq_core::SeqError::Unsupported(
            "cannot materialize an unbounded range; clamp the plan's position range".into(),
        ));
    }
    if let Some(p) = &ctx.profile {
        p.set_op_modes(plan.root.exec_mode_labels(false));
    }
    let mut cursor = plan.root.open_stream(ctx)?;
    let mut out = Vec::new();
    let mut item = cursor.next_from(range.start())?;
    while let Some((pos, rec)) = item {
        if pos > range.end() {
            // The driver discards this row; keep the profiled root's
            // rows_out equal to the records actually output.
            if let Some(p) = &ctx.profile {
                p.uncount_root_rows(1);
            }
            break;
        }
        ctx.stats.record_output();
        out.push((pos, rec));
        item = cursor.next()?;
    }
    Ok(out)
}

/// Stream-evaluate the plan on the vectorized path, materializing every
/// non-Null output within the plan's position range, in positional order.
///
/// Produces exactly the records [`execute`] produces; unit-scope operators
/// run batch-at-a-time (one folded counter update per batch), and operators
/// without a batch kernel fall back to record cursors behind an adapter.
pub fn execute_batched(plan: &PhysPlan, ctx: &ExecContext<'_>) -> Result<Vec<(i64, Record)>> {
    execute_batched_with(plan, ctx, seq_core::DEFAULT_BATCH_SIZE)
}

/// [`execute_batched`] with an explicit batch size (tests and benchmarks).
pub fn execute_batched_with(
    plan: &PhysPlan,
    ctx: &ExecContext<'_>,
    batch_size: usize,
) -> Result<Vec<(i64, Record)>> {
    instrument(
        ctx,
        QueryPath::Batch,
        |rows: &Vec<(i64, Record)>| rows.len() as u64,
        || execute_batched_inner(plan, ctx, batch_size),
    )
}

fn execute_batched_inner(
    plan: &PhysPlan,
    ctx: &ExecContext<'_>,
    batch_size: usize,
) -> Result<Vec<(i64, Record)>> {
    let range = plan.range.intersect(&plan.root.span());
    if range.is_empty() {
        return Ok(Vec::new());
    }
    if !range.is_bounded() {
        return Err(seq_core::SeqError::Unsupported(
            "cannot materialize an unbounded range; clamp the plan's position range".into(),
        ));
    }
    if let Some(p) = &ctx.profile {
        p.set_op_modes(plan.root.exec_mode_labels(true));
    }
    let mut cursor = plan.root.open_batch(ctx, batch_size)?;
    let mut out = Vec::new();
    let mut item = cursor.next_batch_from(range.start())?;
    while let Some(mut batch) = item {
        if batch.first_pos().is_some_and(|p| p > range.end()) {
            // Entirely past the range: the driver discards the batch.
            if let Some(p) = &ctx.profile {
                p.uncount_root_rows(batch.len() as u64);
            }
            break;
        }
        let before = batch.len();
        batch.clamp_positions(range.start(), range.end());
        if let Some(p) = &ctx.profile {
            p.uncount_root_rows((before - batch.len()) as u64);
        }
        ctx.stats.record_outputs(batch.len() as u64);
        batch.append_records_into(&mut out);
        item = cursor.next_batch()?;
    }
    Ok(out)
}

/// [`execute_batched_with`] honoring a forced per-node execution-mode
/// assignment (`"batch"` / `"tuple"` / `"fused"`, pre-order — the
/// profiler's node ids). Nodes left at their structural default lower
/// exactly as [`execute_batched`]; forced nodes get a record<->batch
/// adapter at the boundary, so any assignment yields identical rows. The
/// attached profile (if any) reports the assigned labels per operator.
pub fn execute_batched_assigned(
    plan: &PhysPlan,
    ctx: &ExecContext<'_>,
    batch_size: usize,
    modes: &[&'static str],
) -> Result<Vec<(i64, Record)>> {
    instrument(
        ctx,
        QueryPath::Batch,
        |rows: &Vec<(i64, Record)>| rows.len() as u64,
        || execute_batched_assigned_inner(plan, ctx, batch_size, modes),
    )
}

fn execute_batched_assigned_inner(
    plan: &PhysPlan,
    ctx: &ExecContext<'_>,
    batch_size: usize,
    modes: &[&'static str],
) -> Result<Vec<(i64, Record)>> {
    let range = plan.range.intersect(&plan.root.span());
    if range.is_empty() {
        return Ok(Vec::new());
    }
    if !range.is_bounded() {
        return Err(seq_core::SeqError::Unsupported(
            "cannot materialize an unbounded range; clamp the plan's position range".into(),
        ));
    }
    if let Some(p) = &ctx.profile {
        p.set_op_modes(modes.to_vec());
    }
    let mut cursor = plan.root.open_batch_assigned(ctx, batch_size, modes)?;
    let mut out = Vec::new();
    let mut item = cursor.next_batch_from(range.start())?;
    while let Some(mut batch) = item {
        if batch.first_pos().is_some_and(|p| p > range.end()) {
            if let Some(p) = &ctx.profile {
                p.uncount_root_rows(batch.len() as u64);
            }
            break;
        }
        let before = batch.len();
        batch.clamp_positions(range.start(), range.end());
        if let Some(p) = &ctx.profile {
            p.uncount_root_rows((before - batch.len()) as u64);
        }
        ctx.stats.record_outputs(batch.len() as u64);
        batch.append_records_into(&mut out);
        item = cursor.next_batch()?;
    }
    Ok(out)
}

/// Morsel-driven parallel evaluation with `workers` threads and default
/// batch/morsel sizing; bit-identical to [`execute_batched`] (and therefore
/// to [`execute`]). See [`crate::parallel`].
pub fn execute_parallel(
    plan: &PhysPlan,
    ctx: &ExecContext<'_>,
    workers: usize,
) -> Result<Vec<(i64, Record)>> {
    crate::parallel::execute_parallel_with(
        plan,
        ctx,
        crate::parallel::ParallelConfig::with_workers(workers),
    )
}

/// Probe-evaluate the plan at the given positions (the "records at specific
/// positions" query form of §4). Positions outside the plan's range yield
/// `None`.
pub fn probe_positions(
    plan: &PhysPlan,
    ctx: &ExecContext<'_>,
    positions: &[i64],
) -> Result<Vec<(i64, Option<Record>)>> {
    instrument(
        ctx,
        QueryPath::Probe,
        |rows: &Vec<(i64, Option<Record>)>| rows.iter().filter(|(_, r)| r.is_some()).count() as u64,
        || probe_positions_inner(plan, ctx, positions),
    )
}

fn probe_positions_inner(
    plan: &PhysPlan,
    ctx: &ExecContext<'_>,
    positions: &[i64],
) -> Result<Vec<(i64, Option<Record>)>> {
    let range = plan.range;
    let mut probe = plan.root.open_probe(ctx)?;
    let mut out = Vec::with_capacity(positions.len());
    for &pos in positions {
        let rec = if range.contains(pos) { probe.get(pos)? } else { None };
        if rec.is_some() {
            ctx.stats.record_output();
        }
        out.push((pos, rec));
    }
    Ok(out)
}

/// Convenience: execute and return only the `(position, record)` pairs whose
/// positions fall in `window` (used by tests and examples to spot-check).
pub fn execute_within(
    plan: &PhysPlan,
    ctx: &ExecContext<'_>,
    window: Span,
) -> Result<Vec<(i64, Record)>> {
    let clamped = PhysPlan::new(plan.root.clone(), plan.range.intersect(&window));
    execute(&clamped, ctx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{AggStrategy, JoinStrategy, PhysNode, ValueOffsetStrategy};
    use seq_core::{record, schema, AttrType, BaseSequence, Value};
    use seq_ops::{AggFunc, Expr, Window};
    use seq_storage::Catalog;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.set_page_capacity(8);
        let sch = schema(&[("time", AttrType::Int), ("close", AttrType::Float)]);
        let ibm = BaseSequence::from_entries(
            sch.clone(),
            (1..=30).filter(|p| p % 3 != 0).map(|p| (p, record![p, p as f64])).collect(),
        )
        .unwrap();
        let hp = BaseSequence::from_entries(
            sch,
            (1..=30).filter(|p| p % 2 != 0).map(|p| (p, record![p, (31 - p) as f64])).collect(),
        )
        .unwrap();
        c.register("IBM", &ibm);
        c.register("HP", &hp);
        c
    }

    #[test]
    fn execute_full_pipeline() {
        // Select(close > 25) over a lock-step join of IBM and HP.
        let c = catalog();
        let ctx = ExecContext::new(&c);
        let sch = schema(&[("time", AttrType::Int), ("close", AttrType::Float)]);
        let composed = sch.compose(&sch);
        let pred = Expr::attr("close").gt(Expr::attr("close_r")).bind(&composed).unwrap();
        let plan = PhysPlan::new(
            PhysNode::Compose {
                left: Box::new(PhysNode::Base { name: "IBM".into(), span: Span::new(1, 30) }),
                right: Box::new(PhysNode::Base { name: "HP".into(), span: Span::new(1, 30) }),
                predicate: Some(pred),
                strategy: JoinStrategy::LockStep,
                span: Span::new(1, 30),
            },
            Span::new(1, 30),
        );
        let out = execute(&plan, &ctx).unwrap();
        // Common positions are odd non-multiples of 3; predicate close > close_r
        // means p > 31 - p, i.e. p >= 16.
        let expect: Vec<i64> =
            (1..=30).filter(|p| p % 3 != 0 && p % 2 != 0 && *p as f64 > (31 - p) as f64).collect();
        let got: Vec<i64> = out.iter().map(|(p, _)| *p).collect();
        assert_eq!(got, expect);
        assert_eq!(ctx.stats.snapshot().output_records, out.len() as u64);
    }

    #[test]
    fn execute_range_clamps_output() {
        let c = catalog();
        let ctx = ExecContext::new(&c);
        let plan = PhysPlan::new(
            PhysNode::Base { name: "IBM".into(), span: Span::new(1, 30) },
            Span::new(10, 12),
        );
        let got: Vec<i64> = execute(&plan, &ctx).unwrap().iter().map(|(p, _)| *p).collect();
        assert_eq!(got, vec![10, 11]); // 12 is a multiple of 3, absent
    }

    #[test]
    fn unbounded_range_is_rejected() {
        let c = catalog();
        let ctx = ExecContext::new(&c);
        let plan = PhysPlan::new(
            PhysNode::ValueOffset {
                input: Box::new(PhysNode::Base { name: "IBM".into(), span: Span::new(1, 30) }),
                offset: -1,
                strategy: ValueOffsetStrategy::IncrementalCacheB,
                span: Span::new(2, 100).unbounded_above(),
            },
            Span::all(),
        );
        assert!(execute(&plan, &ctx).is_err());
    }

    #[test]
    fn probe_positions_mixed_hits() {
        let c = catalog();
        let ctx = ExecContext::new(&c);
        let plan = PhysPlan::new(
            PhysNode::Aggregate {
                input: Box::new(PhysNode::Base { name: "IBM".into(), span: Span::new(1, 30) }),
                func: AggFunc::Count,
                attr_index: 1,
                window: Window::trailing(3),
                strategy: AggStrategy::CacheA,
                span: Span::new(1, 32),
            },
            Span::new(1, 32),
        );
        let out = probe_positions(&plan, &ctx, &[3, 100]).unwrap();
        // Window {1,2,3}: records at 1,2 -> count 2.
        assert_eq!(out[0].1.as_ref().unwrap().value(0).unwrap(), &Value::Int(2));
        assert!(out[1].1.is_none());
    }

    #[test]
    fn stream_and_probe_agree_on_aggregate() {
        let c = catalog();
        let ctx = ExecContext::new(&c);
        let plan = PhysPlan::new(
            PhysNode::Aggregate {
                input: Box::new(PhysNode::Base { name: "IBM".into(), span: Span::new(1, 30) }),
                func: AggFunc::Sum,
                attr_index: 1,
                window: Window::trailing(4),
                strategy: AggStrategy::CacheA,
                span: Span::new(1, 33),
            },
            Span::new(1, 33),
        );
        let streamed = execute(&plan, &ctx).unwrap();
        let positions: Vec<i64> = streamed.iter().map(|(p, _)| *p).collect();
        let probed = probe_positions(&plan, &ctx, &positions).unwrap();
        for ((sp, sr), (pp, pr)) in streamed.iter().zip(probed.iter()) {
            assert_eq!(sp, pp);
            assert_eq!(Some(sr), pr.as_ref());
        }
    }

    #[test]
    fn execute_within_narrows() {
        let c = catalog();
        let ctx = ExecContext::new(&c);
        let plan = PhysPlan::new(
            PhysNode::Base { name: "HP".into(), span: Span::new(1, 30) },
            Span::new(1, 30),
        );
        let out = execute_within(&plan, &ctx, Span::new(5, 9)).unwrap();
        let got: Vec<i64> = out.iter().map(|(p, _)| *p).collect();
        assert_eq!(got, vec![5, 7, 9]);
    }
}

#[cfg(test)]
mod mixed_mode_tests {
    use super::*;
    use crate::plan::{AggStrategy, JoinStrategy, PhysNode, ValueOffsetStrategy};
    use seq_core::{record, schema, AttrType, BaseSequence, CmpOp, Value};
    use seq_ops::{AggFunc, Expr, Window};
    use seq_storage::Catalog;

    const N: i64 = 500;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.set_page_capacity(8);
        let sch = schema(&[("time", AttrType::Int), ("close", AttrType::Float)]);
        let s = BaseSequence::from_entries(
            sch.clone(),
            (1..=N).filter(|p| p % 7 != 0).map(|p| (p, record![p, (p % 50) as f64])).collect(),
        )
        .unwrap();
        let t = BaseSequence::from_entries(
            sch,
            (1..=N).map(|p| (p, record![p, (p % 31) as f64])).collect(),
        )
        .unwrap();
        c.register("S", &s);
        c.register("T", &t);
        c
    }

    fn base(name: &str) -> Box<PhysNode> {
        Box::new(PhysNode::Base { name: name.into(), span: Span::new(1, N) })
    }

    fn select(input: Box<PhysNode>) -> Box<PhysNode> {
        Box::new(PhysNode::Select {
            input,
            predicate: Expr::Col(1).gt(Expr::lit(10.0)),
            span: Span::new(1, N),
        })
    }

    /// Plans covering every adapter pair: native batch chains, a fused
    /// scan, both join strategies, and kernel-less (naive) strategies that
    /// interpose record-path subtrees mid-tree.
    fn plans() -> Vec<PhysPlan> {
        let span = Span::new(1, N);
        vec![
            PhysPlan::new(
                PhysNode::Project {
                    // `Out(i) = In(i + 2)`: output positions stay inside the
                    // span so both drivers drain to stream exhaustion (the
                    // record driver stops one pull earlier than a batched
                    // driver on plans that emit past the range end).
                    input: select(Box::new(PhysNode::PosOffset {
                        input: base("S"),
                        offset: 2,
                        span,
                    })),
                    indices: vec![1, 0],
                    span,
                },
                span,
            ),
            PhysPlan::new(
                PhysNode::Project {
                    input: Box::new(PhysNode::FusedScan {
                        name: "S".into(),
                        predicate: Expr::Col(1).gt(Expr::lit(40.0)),
                        terms: vec![(1, CmpOp::Gt, Value::Float(40.0))],
                        span,
                    }),
                    indices: vec![0],
                    span,
                },
                span,
            ),
            PhysPlan::new(
                PhysNode::Aggregate {
                    input: Box::new(PhysNode::Compose {
                        left: base("S"),
                        right: base("T"),
                        predicate: Some(Expr::Col(1).gt(Expr::Col(3))),
                        strategy: JoinStrategy::LockStep,
                        span,
                    }),
                    func: AggFunc::Avg,
                    attr_index: 1,
                    window: Window::trailing(5),
                    strategy: AggStrategy::CacheA,
                    span,
                },
                span,
            ),
            PhysPlan::new(
                PhysNode::Compose {
                    left: select(base("S")),
                    right: base("T"),
                    predicate: None,
                    strategy: JoinStrategy::StreamLeftProbeRight,
                    span,
                },
                span,
            ),
            PhysPlan::new(
                PhysNode::Select {
                    input: Box::new(PhysNode::Aggregate {
                        input: base("T"),
                        func: AggFunc::Sum,
                        attr_index: 1,
                        window: Window::trailing(3),
                        strategy: AggStrategy::NaiveProbe,
                        span,
                    }),
                    predicate: Expr::Col(0).gt(Expr::lit(40.0)),
                    span,
                },
                span,
            ),
            PhysPlan::new(
                PhysNode::ValueOffset {
                    input: select(base("S")),
                    offset: -1,
                    strategy: ValueOffsetStrategy::IncrementalCacheB,
                    span,
                },
                span,
            ),
        ]
    }

    /// Deterministic LCG so the "random" assignments are reproducible.
    fn lcg(seed: &mut u64) -> u64 {
        *seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
        *seed >> 33
    }

    /// The counters every execution mode must account identically: pages
    /// touched, pages skipped, probes issued, and predicates evaluated.
    /// `stream_records` is deliberately absent — the batch lock-step join
    /// seeks the right stream across gaps in the left and so legitimately
    /// scans fewer records than the record-at-a-time join.
    fn counters(c: &Catalog, ctx: &ExecContext<'_>) -> (u64, u64, u64, u64) {
        let st = c.stats().snapshot();
        let ex = ctx.stats.snapshot();
        (st.page_reads, st.pages_skipped, st.probes, ex.predicate_evals)
    }

    #[test]
    fn forced_assignments_are_row_and_counter_identical() {
        let c = catalog();
        let mut seed = 0x5eeded_u64;
        for (pi, plan) in plans().iter().enumerate() {
            // Reference: the record-at-a-time path.
            c.reset_measurement();
            let want = {
                let ctx = ExecContext::new(&c);
                let rows = execute(plan, &ctx).unwrap();
                (rows, counters(&c, &ctx))
            };
            assert!(!want.0.is_empty(), "plan {pi} must produce rows");

            let n = plan.root.subtree_size();
            let mut assignments: Vec<Vec<&'static str>> = vec![vec!["tuple"; n], vec!["batch"; n]];
            for _ in 0..6 {
                assignments.push(
                    (0..n)
                        .map(|_| if lcg(&mut seed).is_multiple_of(2) { "batch" } else { "tuple" })
                        .collect(),
                );
            }
            for (ai, modes) in assignments.iter().enumerate() {
                // Tiny batches stress the adapters; the default exercises
                // the bulk path.
                for bs in [3usize, 64] {
                    c.reset_measurement();
                    let ctx = ExecContext::new(&c);
                    let got = execute_batched_assigned(plan, &ctx, bs, modes).unwrap();
                    assert_eq!(
                        got.len(),
                        want.0.len(),
                        "plan {pi} assignment {ai} ({modes:?}) batch_size {bs}"
                    );
                    for (w, g) in want.0.iter().zip(&got) {
                        assert_eq!(w, g, "plan {pi} assignment {ai} batch_size {bs}");
                    }
                    assert_eq!(
                        counters(&c, &ctx),
                        want.1,
                        "storage/predicate counters drifted: plan {pi} assignment {ai} \
                         ({modes:?}) batch_size {bs}"
                    );
                }
            }
        }
    }

    #[test]
    fn assignment_inserts_adapters_only_at_boundaries() {
        // A forced all-tuple assignment over a capable chain must still
        // produce one batch stream at the root (the driver contract), and a
        // forced batch-under-tuple sandwich exercises both adapter
        // directions in one plan.
        let c = catalog();
        let span = Span::new(1, N);
        let plan = PhysPlan::new(
            PhysNode::Project { input: select(base("S")), indices: vec![0, 1], span },
            span,
        );
        let ctx = ExecContext::new(&c);
        let want = execute(&plan, &ctx).unwrap();
        // Root batch, middle tuple, leaf batch: RecordToBatch above the
        // select, BatchToRecord between select and base scan.
        let sandwich = vec!["batch", "tuple", "batch"];
        let got = execute_batched_assigned(&plan, &ctx, 16, &sandwich).unwrap();
        assert_eq!(want, got);
    }
}

/// Materialize a derived sequence and register it as a base sequence in the
/// catalog (§5.3: "one possibility that was not considered in this paper was
/// materialization of derived sequences"). The materialized sequence carries
/// exact meta-data (span, density, column statistics) computed from its
/// records, so subsequent queries over it optimize with better estimates
/// than the original derivation — and shared subexpressions (the §5.2 DAG
/// discussion) are computed once instead of per consumer.
pub fn materialize_into(
    catalog: &mut seq_storage::Catalog,
    name: &str,
    schema: seq_core::Schema,
    plan: &PhysPlan,
) -> Result<std::sync::Arc<seq_storage::StoredSequence>> {
    let rows = {
        let ctx = ExecContext::new(catalog);
        execute(plan, &ctx)?
    };
    let base = seq_core::BaseSequence::from_entries(schema, rows)?;
    Ok(catalog.register(name, &base))
}

#[cfg(test)]
mod materialize_tests {
    use super::*;
    use crate::plan::PhysNode;
    use seq_core::{record, schema, AttrType, BaseSequence, Sequence};
    use seq_ops::Expr;

    #[test]
    fn materialized_sequence_is_queryable_and_statted() {
        let mut catalog = seq_storage::Catalog::new();
        catalog.set_page_capacity(8);
        let base = BaseSequence::from_entries(
            schema(&[("time", AttrType::Int), ("close", AttrType::Float)]),
            (1..=100).map(|p| (p, record![p, p as f64])).collect(),
        )
        .unwrap();
        catalog.register("S", &base);

        let span = Span::new(1, 100);
        let plan = PhysPlan::new(
            PhysNode::Select {
                input: Box::new(PhysNode::Base { name: "S".into(), span }),
                predicate: Expr::Col(1).gt(Expr::lit(80.0)),
                span,
            },
            span,
        );
        let stored = materialize_into(
            &mut catalog,
            "S_high",
            schema(&[("time", AttrType::Int), ("close", AttrType::Float)]),
            &plan,
        )
        .unwrap();
        // Exact meta: 20 records over [81, 100], density 1.
        assert_eq!(stored.record_count(), 20);
        assert_eq!(stored.meta().span, Span::new(81, 100));
        assert!((stored.meta().density - 1.0).abs() < 1e-9);
        // And it reads back through the catalog.
        let plan2 = PhysPlan::new(
            PhysNode::Base { name: "S_high".into(), span: Span::new(81, 100) },
            Span::new(81, 100),
        );
        let ctx = ExecContext::new(&catalog);
        assert_eq!(execute(&plan2, &ctx).unwrap().len(), 20);
    }

    #[test]
    fn shared_subexpression_computed_once() {
        // The §5.2 DAG case: two consumers of one expensive derivation.
        let mut catalog = seq_storage::Catalog::new();
        catalog.set_page_capacity(8);
        let base = BaseSequence::from_entries(
            schema(&[("time", AttrType::Int), ("close", AttrType::Float)]),
            (1..=2_000).map(|p| (p, record![p, (p % 97) as f64])).collect(),
        )
        .unwrap();
        catalog.register("S", &base);
        let span = Span::new(1, 2_000);
        let derive = |name: &str| {
            PhysPlan::new(
                PhysNode::Select {
                    input: Box::new(PhysNode::Base { name: name.into(), span }),
                    predicate: Expr::Col(1).gt(Expr::lit(50.0)),
                    span,
                },
                span,
            )
        };

        // Duplicated evaluation: run the derivation twice.
        catalog.reset_measurement();
        let ctx = ExecContext::new(&catalog);
        let a = execute(&derive("S"), &ctx).unwrap();
        let b = execute(&derive("S"), &ctx).unwrap();
        assert_eq!(a.len(), b.len());
        let duplicated = catalog.stats().snapshot().page_reads;

        // Shared: materialize once, then both consumers scan the result.
        catalog.reset_measurement();
        materialize_into(
            &mut catalog,
            "Shared",
            schema(&[("time", AttrType::Int), ("close", AttrType::Float)]),
            &derive("S"),
        )
        .unwrap();
        let shared_plan = PhysPlan::new(PhysNode::Base { name: "Shared".into(), span }, span);
        let ctx = ExecContext::new(&catalog);
        let c = execute(&shared_plan, &ctx).unwrap();
        let d = execute(&shared_plan, &ctx).unwrap();
        assert_eq!(c.len(), a.len());
        assert_eq!(d.len(), a.len());
        let shared = catalog.stats().snapshot().page_reads;
        // One derivation scan + two (smaller) result scans beats two
        // derivation scans once the derivation is selective.
        assert!(
            shared < duplicated,
            "materialized sharing should read fewer pages: {shared} vs {duplicated}"
        );
    }
}
