//! Physical query evaluation plans.
//!
//! A [`PhysPlan`] is the executable counterpart of a resolved query graph:
//! every node carries its (top-down restricted) output span, and every
//! non-unit-scope operator and compose carries the strategy the optimizer
//! chose — join strategy (§3.3), caching strategy (§3.5), and implicitly the
//! access mode of each child (a `StreamProbeRight` compose opens its right
//! child in probed mode, etc.).
//!
//! Plans are self-contained: expressions are bound, attributes resolved, and
//! the only external dependency is the catalog the executor supplies.

use std::fmt;

use seq_core::{Record, Result, Span};
use seq_ops::{AggFunc, Expr, Window};

use crate::aggregate::{
    AggProbe, CumulativeAggBatchCursor, CumulativeAggCursor, NaiveAggCursor,
    WholeSpanAggBatchCursor, WholeSpanAggCursor, WindowAggCursor,
};
use crate::batch::{
    BaseBatchCursor, BatchCursor, BatchToRecordCursor, CompactBatchCursor, FusedBaseBatchCursor,
    PosOffsetBatchCursor, ProjectBatchCursor, RecordToBatchCursor, SelectBatchCursor, SelectPolicy,
    WindowAggBatchCursor,
};
use crate::compose::{
    ComposeProbe, LockStepJoin, LockStepJoinBatch, StreamProbeJoin, StreamProbeJoinBatch,
    StreamSide,
};
use crate::cursor::{
    BaseProbe, BaseStreamCursor, ConstCursor, ConstProbe, Cursor, FusedBaseStreamCursor,
    PointAccess, PosOffsetCursor, PosOffsetProbe, ProjectCursor, ProjectProbe, SelectCursor,
    SelectProbe,
};
use crate::offset::{
    IncrementalValueOffsetCursor, NaiveValueOffsetCursor, ValueOffsetBatchCursor, ValueOffsetProbe,
};
use crate::profile::QueryProfile;
use crate::stats::ExecStats;
use seq_storage::ColumnSet;

/// How a compose is evaluated (§3.3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JoinStrategy {
    /// Join-Strategy-B: stream both inputs in lock step.
    LockStep,
    /// Join-Strategy-A: stream the left input, probe the right.
    StreamLeftProbeRight,
    /// Join-Strategy-A: stream the right input, probe the left.
    StreamRightProbeLeft,
}

/// How an aggregate is evaluated (§3.5 / §4.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AggStrategy {
    /// Cache-Strategy-A: cache the effective scope; recompute per position.
    CacheA,
    /// Cache-Strategy-A with incremental accumulators (O(1) slides).
    CacheAIncremental,
    /// The naive algorithm: probe the input at every window position.
    NaiveProbe,
}

/// How a value offset is evaluated (§3.5 / §4.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueOffsetStrategy {
    /// Cache-Strategy-B: single input scan, |offset|-record cache.
    IncrementalCacheB,
    /// The naive algorithm: walk backward/forward per output position.
    NaiveProbe,
}

/// A forced per-node execution-mode assignment, indexed by pre-order node
/// id (the profiler's ids). `"batch"`-family entries (`"batch"`,
/// `"batch+sel"`, `"batch+compact"`) run their native batch kernel even when
/// entered from the record path (behind a [`BatchToRecordCursor`]); `"tuple"`
/// entries run their stream cursor even when entered from the batch path
/// (behind a [`RecordToBatchCursor`]); `"fused"` and any id past the end
/// leave the structural default in place. On a Select node the batch-family
/// suffix picks the [`SelectPolicy`]: `"batch+compact"` gathers survivors
/// densely at the filter, anything else carries a selection vector.
/// Adapters are inserted exactly at assignment boundaries, so results are
/// identical under every assignment.
#[derive(Debug, Clone, Copy)]
pub struct ModeAssignment<'a> {
    modes: &'a [&'static str],
    batch_size: usize,
}

impl ModeAssignment<'_> {
    fn forces_tuple(&self, id: usize) -> bool {
        self.modes.get(id) == Some(&"tuple")
    }

    fn forces_batch(&self, id: usize) -> bool {
        matches!(self.modes.get(id), Some(m) if m.starts_with("batch"))
    }

    fn select_policy(&self, id: usize) -> SelectPolicy {
        if self.modes.get(id) == Some(&"batch+compact") {
            SelectPolicy::Compact
        } else {
            SelectPolicy::Carry
        }
    }
}

/// A physical plan node. `span` is the node's output span after top-down
/// restriction (§3.2); stream cursors emit only within it.
#[derive(Debug, Clone, PartialEq)]
pub enum PhysNode {
    /// Scan or probe a stored base sequence.
    Base {
        /// Catalog name.
        name: String,
        /// Restricted access span.
        span: Span,
    },
    /// σ fused into a base-sequence scan (selection pushdown): the
    /// conjunctive `Col <op> Lit` terms are pushed into the storage layer as
    /// a zone-map page filter — pages whose per-column min/max refute a term
    /// are skipped without materializing a row — and the full predicate is
    /// re-applied as a residual filter over the rows of surviving pages.
    FusedScan {
        /// Catalog name.
        name: String,
        /// The full bound predicate, re-checked per surviving row.
        predicate: Expr,
        /// The pushdown terms (a conjunctive decomposition of `predicate`).
        terms: Vec<(usize, seq_core::CmpOp, seq_core::Value)>,
        /// Restricted access span.
        span: Span,
    },
    /// A constant sequence.
    Constant {
        /// The record at every position.
        record: Record,
        /// Span the constant is materialized over.
        span: Span,
    },
    /// σ with a bound predicate.
    Select {
        /// The filtered input.
        input: Box<PhysNode>,
        /// Bound boolean predicate.
        predicate: Expr,
        /// Output span.
        span: Span,
    },
    /// π with resolved indices.
    Project {
        /// The projected input.
        input: Box<PhysNode>,
        /// Attribute indices to keep, in output order.
        indices: Vec<usize>,
        /// Output span.
        span: Span,
    },
    /// Positional shift: `Out(i) = In(i + offset)`.
    PosOffset {
        /// The shifted input.
        input: Box<PhysNode>,
        /// The shift amount.
        offset: i64,
        /// Output span.
        span: Span,
    },
    /// Previous/Next-style value offset.
    ValueOffset {
        /// The input sequence.
        input: Box<PhysNode>,
        /// Non-zero offset; sign is the direction.
        offset: i64,
        /// Naive walking vs Cache-Strategy-B.
        strategy: ValueOffsetStrategy,
        /// Output span.
        span: Span,
    },
    /// Windowed aggregate.
    Aggregate {
        /// The input sequence.
        input: Box<PhysNode>,
        /// The aggregate function.
        func: AggFunc,
        /// Resolved input attribute index.
        attr_index: usize,
        /// The `agg_pos` window.
        window: Window,
        /// Naive probing vs Cache-Strategy-A (± incremental).
        strategy: AggStrategy,
        /// Output span.
        span: Span,
    },
    /// Positional join.
    Compose {
        /// Left input (schema order is left ∘ right).
        left: Box<PhysNode>,
        /// Right input.
        right: Box<PhysNode>,
        /// Bound join predicate, if any.
        predicate: Option<Expr>,
        /// Join-Strategy-A (either orientation) or B.
        strategy: JoinStrategy,
        /// Output span.
        span: Span,
    },
}

impl PhysNode {
    /// The node's (restricted) output span.
    pub fn span(&self) -> Span {
        match self {
            PhysNode::Base { span, .. }
            | PhysNode::FusedScan { span, .. }
            | PhysNode::Constant { span, .. }
            | PhysNode::Select { span, .. }
            | PhysNode::Project { span, .. }
            | PhysNode::PosOffset { span, .. }
            | PhysNode::ValueOffset { span, .. }
            | PhysNode::Aggregate { span, .. }
            | PhysNode::Compose { span, .. } => *span,
        }
    }

    /// Number of nodes in this subtree. Profiling identifies nodes by their
    /// pre-order position (root 0, children after their parent, left subtree
    /// before right); a node's second child starts at
    /// `id + 1 + first_child.subtree_size()`.
    pub fn subtree_size(&self) -> usize {
        1 + self.children().iter().map(|c| c.subtree_size()).sum::<usize>()
    }

    /// The node's direct children, left to right.
    pub fn children(&self) -> Vec<&PhysNode> {
        match self {
            PhysNode::Base { .. } | PhysNode::FusedScan { .. } | PhysNode::Constant { .. } => {
                Vec::new()
            }
            PhysNode::Select { input, .. }
            | PhysNode::Project { input, .. }
            | PhysNode::PosOffset { input, .. }
            | PhysNode::ValueOffset { input, .. }
            | PhysNode::Aggregate { input, .. } => vec![input],
            PhysNode::Compose { left, right, .. } => vec![left, right],
        }
    }

    /// One-line operator description, as used by the EXPLAIN rendering and
    /// the profiler's per-operator labels.
    pub fn label(&self) -> String {
        match self {
            PhysNode::Base { name, .. } => format!("BaseScan({name})"),
            PhysNode::FusedScan { name, predicate, terms, .. } => {
                format!("FusedScan({name}, filter: {predicate}) [pushdown terms: {}]", terms.len())
            }
            PhysNode::Constant { record, .. } => format!("Constant({record})"),
            PhysNode::Select { predicate, .. } => format!("Select({predicate})"),
            PhysNode::Project { indices, .. } => {
                let idx: Vec<String> = indices.iter().map(|i| format!("${i}")).collect();
                format!("Project({})", idx.join(", "))
            }
            PhysNode::PosOffset { offset, .. } => format!("PosOffset({offset:+})"),
            PhysNode::ValueOffset { offset, strategy, .. } => {
                format!("ValueOffset({offset:+}) [{strategy:?}]")
            }
            PhysNode::Aggregate { func, attr_index, window, strategy, .. } => {
                format!("{func}(${attr_index}) over {window} [{strategy:?}]")
            }
            PhysNode::Compose { predicate, strategy, .. } => {
                let p = predicate.as_ref().map(|p| format!("[{p}] ")).unwrap_or_default();
                format!("Compose {p}[{strategy:?}]")
            }
        }
    }

    /// Open the node in stream mode.
    pub fn open_stream(&self, ctx: &ExecContext<'_>) -> Result<Box<dyn Cursor>> {
        self.open_stream_at(ctx, 0)
    }

    /// [`PhysNode::open_stream`] with this node's pre-order id supplied, so a
    /// profiling context can attribute work to plan nodes.
    fn open_stream_at(&self, ctx: &ExecContext<'_>, id: usize) -> Result<Box<dyn Cursor>> {
        self.open_stream_in(ctx, id, None)
    }

    /// [`PhysNode::open_stream_at`] under an optional forced mode
    /// assignment: a node the assignment forces to `"batch"` runs its native
    /// batch kernel behind a [`BatchToRecordCursor`] adapter (which is not
    /// re-instrumented — the kernel underneath already charges this id).
    fn open_stream_in(
        &self,
        ctx: &ExecContext<'_>,
        id: usize,
        assign: Option<ModeAssignment<'_>>,
    ) -> Result<Box<dyn Cursor>> {
        if let Some(a) = assign {
            if a.forces_batch(id) && self.is_batch_capable() {
                // The record consumer above reads whole rows, so the batch
                // subtree underneath must materialize every column.
                return Ok(Box::new(BatchToRecordCursor::new(self.open_batch_native(
                    ctx,
                    a.batch_size,
                    id,
                    assign,
                    &ColumnSet::All,
                )?)));
            }
        }
        let cursor: Box<dyn Cursor> = match self {
            PhysNode::Base { name, span } => {
                let store = ctx.base_store(name, id)?;
                let clamped = span.intersect(&seq_core::Sequence::meta(store.as_ref()).span);
                Box::new(BaseStreamCursor::new(&store, clamped))
            }
            PhysNode::FusedScan { name, predicate, terms, span } => {
                let store = ctx.base_store(name, id)?;
                let clamped = span.intersect(&seq_core::Sequence::meta(store.as_ref()).span);
                Box::new(FusedBaseStreamCursor::new(
                    &store,
                    clamped,
                    seq_storage::ScanFilter::new(terms.clone()),
                    predicate.clone(),
                    ctx.op_stats(id),
                ))
            }
            PhysNode::Constant { record, span } => {
                Box::new(ConstCursor::new(record.clone(), *span)?)
            }
            PhysNode::Select { input, predicate, .. } => Box::new(SelectCursor::new(
                input.open_stream_in(ctx, id + 1, assign)?,
                predicate.clone(),
                ctx.op_stats(id),
            )),
            PhysNode::Project { input, indices, .. } => Box::new(ProjectCursor::new(
                input.open_stream_in(ctx, id + 1, assign)?,
                indices.clone(),
            )),
            PhysNode::PosOffset { input, offset, span } => Box::new(PosOffsetCursor::new(
                input.open_stream_in(ctx, id + 1, assign)?,
                *offset,
                *span,
            )),
            PhysNode::ValueOffset { input, offset, strategy, span } => match strategy {
                ValueOffsetStrategy::IncrementalCacheB => {
                    Box::new(IncrementalValueOffsetCursor::new(
                        input.open_stream_in(ctx, id + 1, assign)?,
                        *offset,
                        *span,
                        ctx.op_stats(id),
                    )?)
                }
                ValueOffsetStrategy::NaiveProbe => Box::new(NaiveValueOffsetCursor::new(
                    input.open_probe_at(ctx, id + 1)?,
                    *offset,
                    input.span(),
                    *span,
                    ctx.op_stats(id),
                )?),
            },
            PhysNode::Aggregate { input, func, attr_index, window, strategy, span } => {
                match (strategy, window) {
                    (AggStrategy::NaiveProbe, _) => Box::new(NaiveAggCursor::new(
                        input.open_probe_at(ctx, id + 1)?,
                        *func,
                        *attr_index,
                        *window,
                        input.span(),
                        *span,
                        ctx.op_stats(id),
                    )?),
                    (_, Window::Sliding { .. }) => Box::new(WindowAggCursor::new(
                        input.open_stream_in(ctx, id + 1, assign)?,
                        *func,
                        *attr_index,
                        *window,
                        *span,
                        *strategy == AggStrategy::CacheAIncremental,
                        ctx.op_stats(id),
                    )?),
                    (_, Window::Cumulative) => Box::new(CumulativeAggCursor::new(
                        input.open_stream_in(ctx, id + 1, assign)?,
                        *func,
                        *attr_index,
                        *span,
                    )?),
                    (_, Window::WholeSpan) => Box::new(WholeSpanAggCursor::new(
                        input.open_stream_in(ctx, id + 1, assign)?,
                        *func,
                        *attr_index,
                        *span,
                    )?),
                }
            }
            PhysNode::Compose { left, right, predicate, strategy, .. } => {
                let right_id = id + 1 + left.subtree_size();
                match strategy {
                    JoinStrategy::LockStep => Box::new(LockStepJoin::new(
                        left.open_stream_in(ctx, id + 1, assign)?,
                        right.open_stream_in(ctx, right_id, assign)?,
                        predicate.clone(),
                        ctx.op_stats(id),
                    )),
                    JoinStrategy::StreamLeftProbeRight => Box::new(StreamProbeJoin::new(
                        left.open_stream_in(ctx, id + 1, assign)?,
                        right.open_probe_at(ctx, right_id)?,
                        StreamSide::Left,
                        predicate.clone(),
                        ctx.op_stats(id),
                    )),
                    JoinStrategy::StreamRightProbeLeft => Box::new(StreamProbeJoin::new(
                        right.open_stream_in(ctx, right_id, assign)?,
                        left.open_probe_at(ctx, id + 1)?,
                        StreamSide::Right,
                        predicate.clone(),
                        ctx.op_stats(id),
                    )),
                }
            }
        };
        Ok(match &ctx.profile {
            Some(p) => p.wrap_stream(id, cursor),
            None => cursor,
        })
    }

    /// True when this node has a native vectorized kernel. That now covers
    /// every stream-strategy operator — the unit-scope operators, all
    /// aggregate windows, Cache-B value offsets, and both compose join
    /// strategies (a Strategy-A compose streams its outer side in batches
    /// and probes the inner per row, which is a record-path subtree by
    /// definition). Only the naive probe-walk strategies and Constant lower
    /// through the record-at-a-time cursor behind an adapter.
    pub fn is_batch_capable(&self) -> bool {
        match self {
            PhysNode::Base { .. }
            | PhysNode::FusedScan { .. }
            | PhysNode::Select { .. }
            | PhysNode::Project { .. }
            | PhysNode::PosOffset { .. }
            | PhysNode::Compose { .. } => true,
            PhysNode::Aggregate { strategy, .. } => *strategy != AggStrategy::NaiveProbe,
            PhysNode::ValueOffset { strategy, .. } => {
                *strategy == ValueOffsetStrategy::IncrementalCacheB
            }
            PhysNode::Constant { .. } => false,
        }
    }

    /// Per-operator execution-mode labels in pre-order (`"batch"`,
    /// `"batch+sel"`, `"tuple"`, or `"fused"`), mirroring exactly how
    /// [`PhysNode::open_batch`] lowers the tree. `vectorized` says whether
    /// the root opens on the batch path at all. A non-batch-capable node
    /// drops its whole subtree to the record path behind an adapter; a
    /// Strategy-A compose keeps its streamed side vectorized while the
    /// probed side is a record-path subtree; a fused scan is its own mode
    /// on either path (the σ ran inside the storage scan); a native-batch
    /// Select is `"batch+sel"` — the structural default carries a selection
    /// vector (the costed lowering may force `"batch+compact"` instead).
    pub fn exec_mode_labels(&self, vectorized: bool) -> Vec<&'static str> {
        let mut out = Vec::with_capacity(self.subtree_size());
        self.push_mode_labels(vectorized, &mut out);
        out
    }

    fn push_mode_labels(&self, in_batch: bool, out: &mut Vec<&'static str>) {
        let native = in_batch && self.is_batch_capable();
        let label = match self {
            PhysNode::FusedScan { .. } => "fused",
            PhysNode::Select { .. } if native => "batch+sel",
            _ if native => "batch",
            _ => "tuple",
        };
        out.push(label);
        match self {
            PhysNode::Base { .. } | PhysNode::FusedScan { .. } | PhysNode::Constant { .. } => {}
            PhysNode::Select { input, .. }
            | PhysNode::Project { input, .. }
            | PhysNode::PosOffset { input, .. }
            | PhysNode::Aggregate { input, .. }
            | PhysNode::ValueOffset { input, .. } => input.push_mode_labels(native, out),
            PhysNode::Compose { left, right, strategy, .. } => {
                let (l, r) = match strategy {
                    JoinStrategy::LockStep => (native, native),
                    JoinStrategy::StreamLeftProbeRight => (native, false),
                    JoinStrategy::StreamRightProbeLeft => (false, native),
                };
                left.push_mode_labels(l, out);
                right.push_mode_labels(r, out);
            }
        }
    }

    /// True when every operator in this tree is position-wise partitionable:
    /// output rows over disjoint position sub-spans depend only on input
    /// positions within a *bounded* overhang of that sub-span, so a bounded
    /// output span splits into morsels that evaluate independently. Value
    /// offsets (variable scope) and cumulative/whole-span aggregates (prefix
    /// or global scope) are not partitionable.
    pub fn is_position_partitionable(&self) -> bool {
        match self {
            PhysNode::Base { .. } | PhysNode::FusedScan { .. } | PhysNode::Constant { .. } => true,
            PhysNode::Select { input, .. }
            | PhysNode::Project { input, .. }
            | PhysNode::PosOffset { input, .. } => input.is_position_partitionable(),
            PhysNode::Aggregate { input, window, .. } => {
                matches!(window, Window::Sliding { .. }) && input.is_position_partitionable()
            }
            PhysNode::ValueOffset { .. } => false,
            PhysNode::Compose { left, right, .. } => {
                left.is_position_partitionable() && right.is_position_partitionable()
            }
        }
    }

    /// Clone the tree with every span restricted so the root emits only
    /// within `out` — the morsel planner's top-down pass. Spans narrow
    /// exactly as in §3.2: selections and projections pass the restriction
    /// through, a positional offset shifts it onto its input, and a sliding
    /// window widens it by the operator's scope overhang
    /// ([`Span::extend_by_window`]) so every output in the sub-span still
    /// sees its full window. Operators with unbounded scope (value offsets,
    /// cumulative/whole-span aggregates) keep their input untouched; callers
    /// gate on [`PhysNode::is_position_partitionable`] before relying on the
    /// restriction for disjoint-morsel execution.
    pub fn restrict_to(&self, out: Span) -> PhysNode {
        match self {
            PhysNode::Base { name, span } => {
                PhysNode::Base { name: name.clone(), span: span.intersect(&out) }
            }
            PhysNode::FusedScan { name, predicate, terms, span } => PhysNode::FusedScan {
                name: name.clone(),
                predicate: predicate.clone(),
                terms: terms.clone(),
                span: span.intersect(&out),
            },
            PhysNode::Constant { record, span } => {
                PhysNode::Constant { record: record.clone(), span: span.intersect(&out) }
            }
            PhysNode::Select { input, predicate, span } => {
                let span = span.intersect(&out);
                PhysNode::Select {
                    input: Box::new(input.restrict_to(span)),
                    predicate: predicate.clone(),
                    span,
                }
            }
            PhysNode::Project { input, indices, span } => {
                let span = span.intersect(&out);
                PhysNode::Project {
                    input: Box::new(input.restrict_to(span)),
                    indices: indices.clone(),
                    span,
                }
            }
            PhysNode::PosOffset { input, offset, span } => {
                let span = span.intersect(&out);
                PhysNode::PosOffset {
                    input: Box::new(input.restrict_to(span.shift(*offset))),
                    offset: *offset,
                    span,
                }
            }
            PhysNode::ValueOffset { input, offset, strategy, span } => PhysNode::ValueOffset {
                input: input.clone(),
                offset: *offset,
                strategy: *strategy,
                span: span.intersect(&out),
            },
            PhysNode::Aggregate { input, func, attr_index, window, strategy, span } => {
                let span = span.intersect(&out);
                let input = match window {
                    Window::Sliding { lo, hi } => {
                        Box::new(input.restrict_to(span.extend_by_window(*lo, *hi)))
                    }
                    Window::Cumulative | Window::WholeSpan => input.clone(),
                };
                PhysNode::Aggregate {
                    input,
                    func: *func,
                    attr_index: *attr_index,
                    window: *window,
                    strategy: *strategy,
                    span,
                }
            }
            PhysNode::Compose { left, right, predicate, strategy, span } => {
                let span = span.intersect(&out);
                PhysNode::Compose {
                    left: Box::new(left.restrict_to(span)),
                    right: Box::new(right.restrict_to(span)),
                    predicate: predicate.clone(),
                    strategy: *strategy,
                    span,
                }
            }
        }
    }

    /// Open the node in vectorized stream mode, producing batches of
    /// `batch_size` rows. Contiguous runs of batch-capable operators get
    /// native batch kernels; at the first non-batch-capable node the plan
    /// falls back to [`PhysNode::open_stream`] behind a
    /// [`RecordToBatchCursor`] adapter (a block boundary), so any plan
    /// lowers. Results are identical to the record-at-a-time path.
    pub fn open_batch(
        &self,
        ctx: &ExecContext<'_>,
        batch_size: usize,
    ) -> Result<Box<dyn BatchCursor>> {
        self.open_batch_at(ctx, batch_size, 0)
    }

    /// The set of input columns each child must materialize for this node:
    /// a projection reads only the indices it keeps, an aggregate reads only
    /// its attribute column, a compiled selection additionally reads its term
    /// columns, and row-at-a-time consumers (value offsets, joins,
    /// non-compilable predicates) need every column. The batch lowering
    /// threads this set top-down so the base scan decodes only what some
    /// operator above actually reads.
    fn child_column_req(&self, req: &ColumnSet) -> ColumnSet {
        fn only_sorted(mut cols: Vec<usize>) -> ColumnSet {
            cols.sort_unstable();
            cols.dedup();
            ColumnSet::Only(cols)
        }
        match self {
            PhysNode::Select { predicate, .. } => match predicate.as_conjunctive_col_cmp_lits() {
                Some(terms) => match req {
                    ColumnSet::All => ColumnSet::All,
                    ColumnSet::Only(cols) => only_sorted(
                        cols.iter().copied().chain(terms.iter().map(|(c, _, _)| *c)).collect(),
                    ),
                },
                // The fallback kernel evaluates the expression over whole
                // rows, so the input must be fully materialized.
                None => ColumnSet::All,
            },
            PhysNode::Project { indices, .. } => match req {
                ColumnSet::All => only_sorted(indices.clone()),
                ColumnSet::Only(cols) => {
                    only_sorted(cols.iter().filter_map(|&j| indices.get(j).copied()).collect())
                }
            },
            PhysNode::PosOffset { .. } => req.clone(),
            PhysNode::Aggregate { attr_index, .. } => ColumnSet::Only(vec![*attr_index]),
            _ => ColumnSet::All,
        }
    }

    /// True when this node's batch cursor can yield selection-carrying
    /// batches under `assign`: a carry-policy Select originates them, the
    /// selection-transparent unit-scope operators pass them through, and
    /// everything else (scans, aggregates, joins, adapter fallbacks) emits
    /// dense batches. The lowering inserts a [`CompactBatchCursor`] boundary
    /// exactly where this is true and the consumer indexes rows physically.
    fn may_carry_selection(&self, id: usize, assign: Option<ModeAssignment<'_>>) -> bool {
        if !self.is_batch_capable() || assign.is_some_and(|a| a.forces_tuple(id)) {
            return false;
        }
        match self {
            PhysNode::Select { .. } => {
                assign.map_or(SelectPolicy::Carry, |a| a.select_policy(id)) == SelectPolicy::Carry
            }
            PhysNode::Project { input, .. } | PhysNode::PosOffset { input, .. } => {
                input.may_carry_selection(id + 1, assign)
            }
            _ => false,
        }
    }

    /// Open `self` (a batch child at pre-order `id`) for a consumer that
    /// indexes rows physically, densifying behind a charged
    /// [`CompactBatchCursor`] only when this subtree may actually carry a
    /// selection. `consumer` is the consuming operator's id — the compaction
    /// is work the consumer demanded, so its rows are charged there.
    #[allow(clippy::too_many_arguments)]
    fn open_batch_dense(
        &self,
        ctx: &ExecContext<'_>,
        batch_size: usize,
        id: usize,
        assign: Option<ModeAssignment<'_>>,
        req: &ColumnSet,
        consumer: usize,
    ) -> Result<Box<dyn BatchCursor>> {
        let cur = self.open_batch_in(ctx, batch_size, id, assign, req)?;
        Ok(if self.may_carry_selection(id, assign) {
            Box::new(CompactBatchCursor::new(cur, ctx.op_stats(consumer)))
        } else {
            cur
        })
    }

    /// [`PhysNode::open_batch`] under a forced per-node [`ModeAssignment`]
    /// (pre-order, same ids the profiler uses). Nodes the assignment leaves
    /// at their structural default lower exactly as [`PhysNode::open_batch`];
    /// forced nodes get a [`RecordToBatchCursor`] / [`BatchToRecordCursor`]
    /// adapter at the boundary. Results are identical to every other mode.
    pub fn open_batch_assigned(
        &self,
        ctx: &ExecContext<'_>,
        batch_size: usize,
        modes: &[&'static str],
    ) -> Result<Box<dyn BatchCursor>> {
        self.open_batch_in(
            ctx,
            batch_size,
            0,
            Some(ModeAssignment { modes, batch_size }),
            &ColumnSet::All,
        )
    }

    /// [`PhysNode::open_batch`] with this node's pre-order id supplied, so a
    /// profiling context can attribute work to plan nodes. The root always
    /// materializes every column: the batch drivers hand whole rows to the
    /// caller.
    fn open_batch_at(
        &self,
        ctx: &ExecContext<'_>,
        batch_size: usize,
        id: usize,
    ) -> Result<Box<dyn BatchCursor>> {
        self.open_batch_in(ctx, batch_size, id, None, &ColumnSet::All)
    }

    /// [`PhysNode::open_batch_at`] under an optional forced mode assignment
    /// and the consumer's referenced-column set `req`: structurally
    /// incapable nodes and nodes forced to `"tuple"` run their stream cursor
    /// behind a [`RecordToBatchCursor`] adapter (which always materializes
    /// full rows, so `req` stops there).
    fn open_batch_in(
        &self,
        ctx: &ExecContext<'_>,
        batch_size: usize,
        id: usize,
        assign: Option<ModeAssignment<'_>>,
        req: &ColumnSet,
    ) -> Result<Box<dyn BatchCursor>> {
        let forced_tuple = assign.is_some_and(|a| a.forces_tuple(id));
        if !self.is_batch_capable() || forced_tuple {
            // The stream cursor underneath is already instrumented for this
            // node id, so the adapter itself must not be wrapped again. (A
            // forced-tuple node cannot also be forced to batch, so the
            // stream open below never bounces back here.)
            return Ok(Box::new(RecordToBatchCursor::new(
                self.open_stream_in(ctx, id, assign)?,
                batch_size,
            )));
        }
        self.open_batch_native(ctx, batch_size, id, assign, req)
    }

    /// This node's native batch kernel (capability already checked), with
    /// children lowered through the assignment-aware entry points. `req` is
    /// the set of this node's *output* columns some consumer above reads;
    /// each arm translates it into the child requirement via
    /// [`PhysNode::child_column_req`], and consumers that index rows
    /// physically open their children through
    /// [`PhysNode::open_batch_dense`].
    fn open_batch_native(
        &self,
        ctx: &ExecContext<'_>,
        batch_size: usize,
        id: usize,
        assign: Option<ModeAssignment<'_>>,
        req: &ColumnSet,
    ) -> Result<Box<dyn BatchCursor>> {
        let child_req = self.child_column_req(req);
        let cursor: Box<dyn BatchCursor> = match self {
            PhysNode::Base { name, span } => {
                let store = ctx.base_store(name, id)?;
                let clamped = span.intersect(&seq_core::Sequence::meta(store.as_ref()).span);
                Box::new(BaseBatchCursor::new(&store, clamped, batch_size, req.clone()))
            }
            PhysNode::FusedScan { name, terms, span, .. } => {
                let store = ctx.base_store(name, id)?;
                let clamped = span.intersect(&seq_core::Sequence::meta(store.as_ref()).span);
                Box::new(FusedBaseBatchCursor::new(
                    &store,
                    clamped,
                    batch_size,
                    terms.clone(),
                    req.clone(),
                    ctx.op_stats(id),
                ))
            }
            PhysNode::Select { input, predicate, .. } => Box::new(SelectBatchCursor::new(
                input.open_batch_in(ctx, batch_size, id + 1, assign, &child_req)?,
                predicate.clone(),
                assign.map_or(SelectPolicy::Carry, |a| a.select_policy(id)),
                ctx.op_stats(id),
            )),
            PhysNode::Project { input, indices, .. } => Box::new(ProjectBatchCursor::new(
                input.open_batch_in(ctx, batch_size, id + 1, assign, &child_req)?,
                indices.clone(),
            )),
            PhysNode::PosOffset { input, offset, span } => Box::new(PosOffsetBatchCursor::new(
                input.open_batch_in(ctx, batch_size, id + 1, assign, &child_req)?,
                *offset,
                *span,
            )),
            PhysNode::Aggregate { input, func, attr_index, window, strategy, span } => {
                // The aggregate cursors index their input rows physically, so
                // a selection-carrying child densifies at a charged boundary.
                let child =
                    input.open_batch_dense(ctx, batch_size, id + 1, assign, &child_req, id)?;
                match window {
                    Window::Sliding { .. } => Box::new(WindowAggBatchCursor::new(
                        child,
                        *func,
                        *attr_index,
                        *window,
                        *span,
                        *strategy == AggStrategy::CacheAIncremental,
                        batch_size,
                    )?),
                    Window::Cumulative => Box::new(CumulativeAggBatchCursor::new(
                        child,
                        *func,
                        *attr_index,
                        *span,
                        batch_size,
                    )?),
                    Window::WholeSpan => Box::new(WholeSpanAggBatchCursor::new(
                        child,
                        *func,
                        *attr_index,
                        *span,
                        batch_size,
                    )?),
                }
            }
            PhysNode::ValueOffset { input, offset, span, .. } => {
                // Only IncrementalCacheB is batch-capable; the guard above
                // routed NaiveProbe through the adapter.
                Box::new(ValueOffsetBatchCursor::new(
                    input.open_batch_dense(ctx, batch_size, id + 1, assign, &child_req, id)?,
                    *offset,
                    *span,
                    ctx.op_stats(id),
                    batch_size,
                )?)
            }
            PhysNode::Compose { left, right, predicate, strategy, .. } => {
                let right_id = id + 1 + left.subtree_size();
                match strategy {
                    JoinStrategy::LockStep => Box::new(LockStepJoinBatch::new(
                        left.open_batch_dense(ctx, batch_size, id + 1, assign, &child_req, id)?,
                        right
                            .open_batch_dense(ctx, batch_size, right_id, assign, &child_req, id)?,
                        predicate.clone(),
                        ctx.op_stats(id),
                        batch_size,
                    )),
                    JoinStrategy::StreamLeftProbeRight => Box::new(StreamProbeJoinBatch::new(
                        left.open_batch_dense(ctx, batch_size, id + 1, assign, &child_req, id)?,
                        right.open_probe_at(ctx, right_id)?,
                        StreamSide::Left,
                        predicate.clone(),
                        ctx.op_stats(id),
                    )),
                    JoinStrategy::StreamRightProbeLeft => Box::new(StreamProbeJoinBatch::new(
                        right
                            .open_batch_dense(ctx, batch_size, right_id, assign, &child_req, id)?,
                        left.open_probe_at(ctx, id + 1)?,
                        StreamSide::Right,
                        predicate.clone(),
                        ctx.op_stats(id),
                    )),
                }
            }
            PhysNode::Constant { .. } => {
                unreachable!("non-batch-capable nodes handled by the adapter fallback")
            }
        };
        Ok(match &ctx.profile {
            Some(p) => p.wrap_batch(id, cursor),
            None => cursor,
        })
    }

    /// Open the node in probed mode. Derived nodes recompute on each probe
    /// (the incremental algorithms are not usable under probed access,
    /// §4.1.2, so value offsets and aggregates fall back to naive walks).
    pub fn open_probe(&self, ctx: &ExecContext<'_>) -> Result<Box<dyn PointAccess>> {
        self.open_probe_at(ctx, 0)
    }

    /// [`PhysNode::open_probe`] with this node's pre-order id supplied, so a
    /// profiling context can attribute work to plan nodes.
    fn open_probe_at(&self, ctx: &ExecContext<'_>, id: usize) -> Result<Box<dyn PointAccess>> {
        let probe: Box<dyn PointAccess> = match self {
            PhysNode::Base { name, span } => {
                let store = ctx.base_store(name, id)?;
                let clamped = span.intersect(&seq_core::Sequence::meta(store.as_ref()).span);
                Box::new(BaseProbe::new(store, clamped))
            }
            PhysNode::FusedScan { name, predicate, span, .. } => {
                // Probed access is point lookup; zone-map skipping buys
                // nothing there, so probe as σ over a base probe (both
                // charged to this node's id — the fused node is one operator).
                let store = ctx.base_store(name, id)?;
                let clamped = span.intersect(&seq_core::Sequence::meta(store.as_ref()).span);
                Box::new(SelectProbe::new(
                    Box::new(BaseProbe::new(store, clamped)),
                    predicate.clone(),
                    ctx.op_stats(id),
                ))
            }
            PhysNode::Constant { record, span } => Box::new(ConstProbe::new(record.clone(), *span)),
            PhysNode::Select { input, predicate, .. } => Box::new(SelectProbe::new(
                input.open_probe_at(ctx, id + 1)?,
                predicate.clone(),
                ctx.op_stats(id),
            )),
            PhysNode::Project { input, indices, .. } => {
                Box::new(ProjectProbe::new(input.open_probe_at(ctx, id + 1)?, indices.clone()))
            }
            PhysNode::PosOffset { input, offset, span } => {
                Box::new(PosOffsetProbe::new(input.open_probe_at(ctx, id + 1)?, *offset, *span))
            }
            PhysNode::ValueOffset { input, offset, span, .. } => Box::new(ValueOffsetProbe::new(
                input.open_probe_at(ctx, id + 1)?,
                *offset,
                input.span(),
                *span,
                ctx.op_stats(id),
            )),
            PhysNode::Aggregate { input, func, attr_index, window, span, .. } => {
                Box::new(AggProbe::new(
                    input.open_probe_at(ctx, id + 1)?,
                    *func,
                    *attr_index,
                    *window,
                    input.span(),
                    *span,
                    ctx.op_stats(id),
                ))
            }
            PhysNode::Compose { left, right, predicate, .. } => Box::new(ComposeProbe::new(
                left.open_probe_at(ctx, id + 1)?,
                right.open_probe_at(ctx, id + 1 + left.subtree_size())?,
                predicate.clone(),
                ctx.op_stats(id),
            )),
        };
        Ok(match &ctx.profile {
            Some(p) => p.wrap_probe(id, probe),
            None => probe,
        })
    }

    fn render_into(&self, depth: usize, out: &mut String) {
        use std::fmt::Write;
        let pad = "  ".repeat(depth);
        let _ = writeln!(out, "{pad}{} span={}", self.label(), self.span());
        for child in self.children() {
            child.render_into(depth + 1, out);
        }
    }
}

impl fmt::Display for PhysNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = String::new();
        self.render_into(0, &mut s);
        f.write_str(&s)
    }
}

/// A complete physical plan: a node tree plus the Start operator's position
/// range (Figure 6) bounding the output.
#[derive(Debug, Clone, PartialEq)]
pub struct PhysPlan {
    /// The plan tree.
    pub root: PhysNode,
    /// The Start operator's position range (Figure 6).
    pub range: Span,
}

impl PhysPlan {
    /// A plan from its root node and the Start operator's position range.
    pub fn new(root: PhysNode, range: Span) -> PhysPlan {
        PhysPlan { root, range }
    }

    /// EXPLAIN-style rendering.
    pub fn render(&self) -> String {
        let mut s = format!("Start range={}\n", self.range);
        self.root.render_into(1, &mut s);
        s
    }
}

/// The executor's environment: the catalog that resolves base sequences, the
/// shared executor statistics, and an optional per-operator profile.
pub struct ExecContext<'a> {
    /// The catalog resolving base-sequence names.
    pub catalog: &'a seq_storage::Catalog,
    /// Shared executor counters.
    pub stats: ExecStats,
    /// Per-operator instrumentation, when profiling is enabled
    /// ([`ExecContext::enable_profiling`]). `None` keeps the open and
    /// execute paths on their uninstrumented fast path.
    pub profile: Option<std::sync::Arc<QueryProfile>>,
    /// Always-on session telemetry ([`crate::telemetry::SessionMetrics`]):
    /// query latency histograms, counter folds, and the trace ring. On by
    /// default (each context gets a fresh registry); shells share one across
    /// queries via [`ExecContext::share_telemetry`]; benches measuring the
    /// uninstrumented baseline set it to `None`.
    pub telemetry: Option<std::sync::Arc<crate::telemetry::SessionMetrics>>,
}

impl<'a> ExecContext<'a> {
    /// A context over `catalog` with fresh executor counters.
    pub fn new(catalog: &'a seq_storage::Catalog) -> ExecContext<'a> {
        ExecContext {
            catalog,
            stats: ExecStats::new(),
            profile: None,
            telemetry: Some(std::sync::Arc::new(crate::telemetry::SessionMetrics::new())),
        }
    }

    /// A context over `catalog` charging into existing executor counters
    /// (e.g. a shell session's cumulative stats).
    pub fn with_stats(catalog: &'a seq_storage::Catalog, stats: ExecStats) -> ExecContext<'a> {
        ExecContext {
            catalog,
            stats,
            profile: None,
            telemetry: Some(std::sync::Arc::new(crate::telemetry::SessionMetrics::new())),
        }
    }

    /// Replace this context's registry with a shared one, so several
    /// contexts (a shell session's successive queries, a server's
    /// connections) fold into the same session-wide slots.
    pub fn share_telemetry(&mut self, metrics: &std::sync::Arc<crate::telemetry::SessionMetrics>) {
        self.telemetry = Some(std::sync::Arc::clone(metrics));
    }

    /// Attach a fresh [`QueryProfile`] sized for `plan` and return it. Every
    /// subsequent open/execute of `plan` through this context is
    /// instrumented per operator; the query-wide [`ExecContext::stats`] and
    /// catalog storage counters still accumulate exactly as unprofiled
    /// (scoped counters tee into them).
    pub fn enable_profiling(&mut self, plan: &PhysPlan) -> std::sync::Arc<QueryProfile> {
        let profile = QueryProfile::for_plan(plan, &self.stats, self.catalog.stats());
        self.profile = Some(std::sync::Arc::clone(&profile));
        profile
    }

    /// The executor counters operator `id` should charge: its profiling
    /// scope when profiling, the shared query counters otherwise.
    fn op_stats(&self, id: usize) -> ExecStats {
        match &self.profile {
            Some(p) => p.exec_stats(id),
            None => self.stats.clone(),
        }
    }

    /// Resolve base sequence `name` for operator `id`, rebound to the
    /// operator's scoped storage counters when profiling.
    fn base_store(
        &self,
        name: &str,
        id: usize,
    ) -> Result<std::sync::Arc<seq_storage::StoredSequence>> {
        let store = self.catalog.get(name)?;
        Ok(match self.profile.as_ref().and_then(|p| p.storage_stats(id)) {
            Some(scoped) => store.with_stats(scoped),
            None => store,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seq_core::{record, schema, AttrType, BaseSequence};
    use seq_storage::Catalog;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        let base = BaseSequence::from_entries(
            schema(&[("time", AttrType::Int), ("close", AttrType::Float)]),
            (1..=20).map(|p| (p, record![p, p as f64])).collect(),
        )
        .unwrap();
        c.register("S", &base);
        c
    }

    #[test]
    fn render_shows_strategies_and_spans() {
        let plan = PhysPlan::new(
            PhysNode::Aggregate {
                input: Box::new(PhysNode::Base { name: "S".into(), span: Span::new(1, 20) }),
                func: AggFunc::Sum,
                attr_index: 1,
                window: Window::trailing(6),
                strategy: AggStrategy::CacheA,
                span: Span::new(1, 25),
            },
            Span::new(1, 25),
        );
        let text = plan.render();
        assert!(text.contains("Start range=[1, 25]"));
        assert!(text.contains("CacheA"));
        assert!(text.contains("BaseScan(S)"));
    }

    #[test]
    fn stream_open_respects_base_span_clamp() {
        let c = catalog();
        let ctx = ExecContext::new(&c);
        let node = PhysNode::Base { name: "S".into(), span: Span::new(5, 8) };
        let mut cur = node.open_stream(&ctx).unwrap();
        let mut got = Vec::new();
        while let Some((p, _)) = cur.next().unwrap() {
            got.push(p);
        }
        assert_eq!(got, vec![5, 6, 7, 8]);
    }

    #[test]
    fn probe_open_on_derived_node() {
        let c = catalog();
        let ctx = ExecContext::new(&c);
        let node = PhysNode::Select {
            input: Box::new(PhysNode::Base { name: "S".into(), span: Span::new(1, 20) }),
            predicate: Expr::Col(1).gt(Expr::lit(10.0)),
            span: Span::new(1, 20),
        };
        let mut probe = node.open_probe(&ctx).unwrap();
        assert!(probe.get(15).unwrap().is_some());
        assert!(probe.get(5).unwrap().is_none());
    }

    #[test]
    fn unknown_base_fails_at_open() {
        let c = catalog();
        let ctx = ExecContext::new(&c);
        let node = PhysNode::Base { name: "NOPE".into(), span: Span::all() };
        assert!(node.open_stream(&ctx).is_err());
        assert!(node.open_probe(&ctx).is_err());
    }
}
