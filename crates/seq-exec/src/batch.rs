//! Vectorized (batch-at-a-time) stream evaluation.
//!
//! The record-at-a-time [`Cursor`] path pays a virtual call, an enum match,
//! and an atomic counter update per record. This module adds a parallel
//! [`BatchCursor`] path that moves [`RecordBatch`]es of ~1024 rows at a time
//! through the unit-scope stream operators — base scan, σ, π, positional
//! offset, and sliding-window aggregates — folding statistics counters into
//! one atomic add per batch.
//!
//! Both paths produce bit-identical results; the paper's access-path
//! accounting (pages touched, records streamed, predicates applied, §3.3,
//! §4.1.3) is preserved exactly, only the *update granularity* of the
//! counters changes. Non-unit-scope operators have native batch cursors in
//! their own modules (lock-step and stream-probe joins in [`crate::compose`],
//! Cache-Strategy-B value offsets in [`crate::offset`], cumulative and
//! whole-span aggregates in [`crate::aggregate`]), so whole plans lower
//! vectorized end-to-end; the [`BatchToRecordCursor`] /
//! [`RecordToBatchCursor`] adapters remain for plans that deliberately mix
//! the paths (e.g. a `NaiveProbe` strategy choice).

use std::collections::VecDeque;

use seq_core::{Record, RecordBatch, Result, Span, Value, NEG_INF, POS_INF};
use seq_ops::{AggFunc, Expr};

use crate::aggregate::SlidingAccumulator;
use crate::cursor::Cursor;
use crate::stats::ExecStats;

pub use seq_core::DEFAULT_BATCH_SIZE;

/// Batched stream access to a (base or derived) sequence.
///
/// Batches arrive in increasing positional order, positions strictly
/// increasing within and across batches, and are never empty.
pub trait BatchCursor {
    /// The next batch of `(position, record)` rows, or `None` at the end.
    fn next_batch(&mut self) -> Result<Option<RecordBatch>>;

    /// The next batch restricted to positions `>= lower`. Implementations
    /// override this to skip without per-record work; the default discards
    /// smaller positions.
    fn next_batch_from(&mut self, lower: i64) -> Result<Option<RecordBatch>> {
        loop {
            match self.next_batch()? {
                Some(mut b) => {
                    if b.last_pos().is_none_or(|p| p < lower) {
                        continue;
                    }
                    b.clamp_positions(lower, POS_INF);
                    if !b.is_empty() {
                        return Ok(Some(b));
                    }
                }
                None => return Ok(None),
            }
        }
    }
}

/// Batched stream over a stored base sequence (wraps the storage layer's
/// batched scan, which folds page/record counters itself).
pub struct BaseBatchCursor {
    scan: seq_storage::OwnedBatchScan,
}

impl BaseBatchCursor {
    /// A batched stream over `store` restricted to `span`, decoding only the
    /// `columns` the plan above references (late materialization — pruned
    /// column slots stay empty and are never gathered downstream).
    pub fn new(
        store: &std::sync::Arc<seq_storage::StoredSequence>,
        span: Span,
        batch_size: usize,
        columns: seq_storage::ColumnSet,
    ) -> BaseBatchCursor {
        let mut scan = store.scan_batch(span, batch_size);
        scan.set_columns(columns);
        BaseBatchCursor { scan }
    }
}

impl BatchCursor for BaseBatchCursor {
    fn next_batch(&mut self) -> Result<Option<RecordBatch>> {
        Ok(self.scan.next_batch())
    }

    fn next_batch_from(&mut self, lower: i64) -> Result<Option<RecordBatch>> {
        self.scan.skip_to(lower);
        Ok(self.scan.next_batch())
    }
}

/// The compiled selection kernel: **logical** row indices of `batch`
/// satisfying every `Col <op> Lit` term, evaluated term-by-term over column
/// slices with short-circuit semantics (a row refuted by term `k` never
/// evaluates term `k+1`, matching the expression tree's `And`). On a
/// selection-carrying batch only the selected rows are evaluated, so stacked
/// filters never re-test rows an earlier filter dropped.
pub(crate) fn conjunction_filter_indices(
    batch: &RecordBatch,
    terms: &[(usize, seq_core::CmpOp, Value)],
) -> Result<Vec<u32>> {
    let (ci, op, lit) = &terms[0];
    let col = batch.column(*ci)?;
    let mut idx: Vec<u32> = Vec::with_capacity(batch.len());
    match batch.selection() {
        None => {
            for (i, v) in col.iter().enumerate() {
                if op.holds(v.total_cmp(lit)?) {
                    idx.push(i as u32);
                }
            }
        }
        Some(sel) => {
            for (i, &s) in sel.iter().enumerate() {
                if op.holds(col[s as usize].total_cmp(lit)?) {
                    idx.push(i as u32);
                }
            }
        }
    }
    for (ci, op, lit) in &terms[1..] {
        if idx.is_empty() {
            break;
        }
        let col = batch.column(*ci)?;
        let sel = batch.selection();
        let mut kept = Vec::with_capacity(idx.len());
        for &i in &idx {
            let p = match sel {
                Some(s) => s[i as usize] as usize,
                None => i as usize,
            };
            if op.holds(col[p].total_cmp(lit)?) {
                kept.push(i);
            }
        }
        idx = kept;
    }
    Ok(idx)
}

/// How a [`SelectBatchCursor`] hands survivors downstream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SelectPolicy {
    /// Attach a selection vector to the input batch (zero row copies); the
    /// consumer reads through it or a downstream boundary compacts.
    #[default]
    Carry,
    /// Gather survivors into a dense batch here (the pre-selection-vector
    /// behavior), chosen by the costed lowering when a dense consumer sits
    /// directly above and survivors are few.
    Compact,
}

/// σ over a batched stream: one predicate evaluation per row, charged as a
/// single folded add per batch.
///
/// Predicates that are conjunctions of `Col <op> Lit` terms are compiled at
/// open time into column kernels — tight comparison loops over the column
/// slices — instead of walking the expression tree (and cloning both
/// operands) per row.
pub struct SelectBatchCursor {
    input: Box<dyn BatchCursor>,
    predicate: Expr,
    /// The conjunctive `(column, op, literal)` terms, when the predicate
    /// decomposes into them.
    compiled: Option<Vec<(usize, seq_core::CmpOp, Value)>>,
    policy: SelectPolicy,
    stats: ExecStats,
}

impl SelectBatchCursor {
    /// Filter the batched input by a bound predicate, handing survivors
    /// downstream per `policy`.
    pub fn new(
        input: Box<dyn BatchCursor>,
        predicate: Expr,
        policy: SelectPolicy,
        stats: ExecStats,
    ) -> SelectBatchCursor {
        let compiled = predicate.as_conjunctive_col_cmp_lits();
        SelectBatchCursor { input, predicate, compiled, policy, stats }
    }

    fn filter(&mut self, mut batch: RecordBatch) -> Result<RecordBatch> {
        let n = batch.len();
        let keep = if let Some(terms) = &self.compiled {
            conjunction_filter_indices(&batch, terms)?
        } else {
            let mut keep = Vec::with_capacity(n);
            for (i, row) in batch.rows().enumerate() {
                if self.predicate.eval_predicate_row(&row)? {
                    keep.push(i as u32);
                }
            }
            keep
        };
        self.stats.record_predicate_evals(n as u64);
        // Everything passed: hand the batch through without copying.
        if keep.len() == n {
            return Ok(batch);
        }
        match self.policy {
            SelectPolicy::Carry => {
                batch.select_logical(keep);
                if !batch.is_empty() {
                    self.stats.record_selection_carried();
                }
                Ok(batch)
            }
            SelectPolicy::Compact => {
                batch.select_logical(keep);
                let copied = batch.compact();
                self.stats.record_slots_compacted(copied as u64);
                Ok(batch)
            }
        }
    }
}

impl BatchCursor for SelectBatchCursor {
    fn next_batch(&mut self) -> Result<Option<RecordBatch>> {
        while let Some(b) = self.input.next_batch()? {
            let filtered = self.filter(b)?;
            if !filtered.is_empty() {
                return Ok(Some(filtered));
            }
        }
        Ok(None)
    }

    fn next_batch_from(&mut self, lower: i64) -> Result<Option<RecordBatch>> {
        let mut item = self.input.next_batch_from(lower)?;
        while let Some(b) = item {
            let filtered = self.filter(b)?;
            if !filtered.is_empty() {
                return Ok(Some(filtered));
            }
            item = self.input.next_batch()?;
        }
        Ok(None)
    }
}

/// σ fused into the base scan: the conjunctive predicate's terms are pushed
/// into the storage layer as a [`seq_storage::ScanFilter`], letting the scan
/// skip whole pages whose zone maps refute a term, and the same terms are
/// re-evaluated *in place over the encoded page columns* of surviving pages
/// (zone maps only prove a page *may* match) — RLE runs and dictionary codes
/// are tested without decoding, and only surviving rows are materialized
/// into the output batch.
pub struct FusedBaseBatchCursor {
    scan: seq_storage::OwnedBatchScan,
    terms: Vec<(usize, seq_core::CmpOp, Value)>,
    stats: ExecStats,
}

impl FusedBaseBatchCursor {
    /// A filtered batched scan over `store` restricted to `span`, with
    /// `terms` both pushed down as the page-skipping filter and applied as
    /// the in-place residual row filter over encoded columns.
    pub fn new(
        store: &std::sync::Arc<seq_storage::StoredSequence>,
        span: Span,
        batch_size: usize,
        terms: Vec<(usize, seq_core::CmpOp, Value)>,
        columns: seq_storage::ColumnSet,
        stats: ExecStats,
    ) -> FusedBaseBatchCursor {
        let filter = seq_storage::ScanFilter::new(terms.clone());
        let mut scan = store.scan_batch_filtered(span, batch_size, Some(filter));
        // The terms run over the *encoded* page columns, so the pruned set
        // need not include the predicate columns — only what the plan above
        // reads of the survivors is ever decoded.
        scan.set_columns(columns);
        FusedBaseBatchCursor { scan, terms, stats }
    }
}

impl BatchCursor for FusedBaseBatchCursor {
    fn next_batch(&mut self) -> Result<Option<RecordBatch>> {
        // Every scanned row is one predicate application whether it is
        // refuted inside the encoded page or survives into the batch, so the
        // K-term accounting is identical to the decode-then-filter path.
        while let Some((b, scanned)) = self.scan.next_batch_selected(&self.terms)? {
            self.stats.record_predicate_evals(scanned);
            if !b.is_empty() {
                return Ok(Some(b));
            }
        }
        Ok(None)
    }

    fn next_batch_from(&mut self, lower: i64) -> Result<Option<RecordBatch>> {
        self.scan.skip_to(lower);
        self.next_batch()
    }
}

/// A costed compaction boundary: densifies selection-carrying batches before
/// a consumer that indexes rows physically (the positional joins, the
/// aggregate cursors, parallel merge buffers).
///
/// Inserted by the plan lowering only on edges whose producer may carry a
/// selection; rows copied are charged to `slots_compacted`, and batches that
/// arrive dense pass through untouched (a no-op costing nothing).
pub struct CompactBatchCursor {
    input: Box<dyn BatchCursor>,
    stats: ExecStats,
}

impl CompactBatchCursor {
    /// Densify every batch `input` yields.
    pub fn new(input: Box<dyn BatchCursor>, stats: ExecStats) -> CompactBatchCursor {
        CompactBatchCursor { input, stats }
    }

    fn densify(&self, batch: Option<RecordBatch>) -> Option<RecordBatch> {
        batch.map(|mut b| {
            let copied = b.compact();
            self.stats.record_slots_compacted(copied as u64);
            b
        })
    }
}

impl BatchCursor for CompactBatchCursor {
    fn next_batch(&mut self) -> Result<Option<RecordBatch>> {
        let b = self.input.next_batch()?;
        Ok(self.densify(b))
    }

    fn next_batch_from(&mut self, lower: i64) -> Result<Option<RecordBatch>> {
        let b = self.input.next_batch_from(lower)?;
        Ok(self.densify(b))
    }
}

/// π over a batched stream: whole column vectors are moved (or cloned, for
/// repeated indices) instead of rebuilding every record.
pub struct ProjectBatchCursor {
    input: Box<dyn BatchCursor>,
    indices: Vec<usize>,
}

impl ProjectBatchCursor {
    /// Project each batch onto `indices`.
    pub fn new(input: Box<dyn BatchCursor>, indices: Vec<usize>) -> ProjectBatchCursor {
        ProjectBatchCursor { input, indices }
    }
}

impl BatchCursor for ProjectBatchCursor {
    fn next_batch(&mut self) -> Result<Option<RecordBatch>> {
        match self.input.next_batch()? {
            Some(b) => Ok(Some(b.project(&self.indices)?)),
            None => Ok(None),
        }
    }

    fn next_batch_from(&mut self, lower: i64) -> Result<Option<RecordBatch>> {
        match self.input.next_batch_from(lower)? {
            Some(b) => Ok(Some(b.project(&self.indices)?)),
            None => Ok(None),
        }
    }
}

/// Positional offset over a batched stream: `Out(i) = In(i + offset)` as one
/// vectorized position shift per batch, clamped to `span`.
///
/// `[in_lo, in_hi]` is the input window computed once at open time: the
/// input positions whose shifted output is both inside `span` and a
/// representable position (a finite `i64`, not an infinity sentinel).
/// Clamping the *input* batch to that window before shifting keeps the shift
/// exact — a naive shift-then-clamp saturates positions near `i64::MAX`/`MIN`
/// onto the sentinels, collapsing distinct rows and leaking positions that
/// should have fallen off the end of the representable range.
pub struct PosOffsetBatchCursor {
    input: Box<dyn BatchCursor>,
    offset: i64,
    in_lo: i64,
    in_hi: i64,
    done: bool,
}

impl PosOffsetBatchCursor {
    /// Shift the batched input: `Out(i) = In(i + offset)`, clamped to `span`.
    pub fn new(input: Box<dyn BatchCursor>, offset: i64, span: Span) -> PosOffsetBatchCursor {
        // The servable input window, in i128 so sentinel-adjacent spans and
        // extreme offsets cannot wrap: outputs must lie in span and strictly
        // between the infinities.
        let (in_lo, in_hi, feasible) = if span.is_empty() {
            (1, 0, false)
        } else {
            let lo = span.start().max(NEG_INF + 1) as i128 + offset as i128;
            let hi = span.end().min(POS_INF - 1) as i128 + offset as i128;
            if lo > i64::MAX as i128 || hi < i64::MIN as i128 {
                (1, 0, false)
            } else {
                (lo.max(i64::MIN as i128) as i64, hi.min(i64::MAX as i128) as i64, true)
            }
        };
        PosOffsetBatchCursor { input, offset, in_lo, in_hi, done: !feasible }
    }

    fn shift_and_clamp(&mut self, mut batch: RecordBatch) -> Option<RecordBatch> {
        if batch.first_pos().is_some_and(|p| p > self.in_hi) {
            self.done = true;
            return None;
        }
        if batch.last_pos().is_some_and(|p| p > self.in_hi) {
            self.done = true;
        }
        batch.clamp_positions(self.in_lo, self.in_hi);
        if batch.is_empty() {
            return None;
        }
        // Every surviving position shifts exactly; `-offset` itself would
        // overflow for i64::MIN, so split that shift into two exact steps
        // (clamping guarantees the final position is representable).
        if self.offset == i64::MIN {
            batch.shift_positions(i64::MAX);
            batch.shift_positions(1);
        } else {
            batch.shift_positions(-self.offset);
        }
        Some(batch)
    }
}

impl BatchCursor for PosOffsetBatchCursor {
    fn next_batch(&mut self) -> Result<Option<RecordBatch>> {
        while !self.done {
            let Some(b) = self.input.next_batch()? else { break };
            if let Some(out) = self.shift_and_clamp(b) {
                return Ok(Some(out));
            }
        }
        Ok(None)
    }

    fn next_batch_from(&mut self, lower: i64) -> Result<Option<RecordBatch>> {
        if self.done {
            return Ok(None);
        }
        // Input positions serving outputs >= lower start at lower+offset; an
        // overflow above means no representable input can serve the request.
        let mut item = match lower.checked_add(self.offset) {
            Some(in_lower) => self.input.next_batch_from(in_lower.max(self.in_lo))?,
            None if self.offset > 0 => {
                self.done = true;
                return Ok(None);
            }
            // Underflow below: every remaining input position qualifies.
            None => self.input.next_batch()?,
        };
        while let Some(b) = item {
            if let Some(out) = self.shift_and_clamp(b) {
                return Ok(Some(out));
            }
            if self.done {
                break;
            }
            item = self.input.next_batch()?;
        }
        Ok(None)
    }
}

/// Cache-Strategy-A sliding-window aggregate over a batched stream.
///
/// Replicates [`crate::aggregate::WindowAggCursor`] exactly — one output per
/// span position whose window `[o+lo, o+hi]` holds at least one input
/// record, empty stretches skipped in one jump — but consumes and produces
/// whole batches. With `incremental` set, a [`SlidingAccumulator`] keeps the
/// slide O(1) amortized (Min/Max via monotonic deques); otherwise every emit
/// recomputes from the cached window, matching CacheA's reference cost.
pub struct WindowAggBatchCursor {
    input: Box<dyn BatchCursor>,
    func: AggFunc,
    attr_index: usize,
    lo: i64,
    hi: i64,
    /// The cached window of `(position, value)` pairs, oldest first. Only
    /// maintained for the recomputing strategy; the incremental accumulator
    /// tracks its own live window.
    window: VecDeque<(i64, Value)>,
    accumulator: Option<SlidingAccumulator>,
    /// Input rows pulled but not yet folded into the window.
    in_batch: Option<RecordBatch>,
    in_row: usize,
    input_done: bool,
    cur: i64,
    span: Span,
    batch_size: usize,
}

impl WindowAggBatchCursor {
    /// Batched Cache-Strategy-A over a sliding window; `incremental`
    /// switches the per-emit recompute to O(1) accumulators.
    pub fn new(
        input: Box<dyn BatchCursor>,
        func: AggFunc,
        attr_index: usize,
        window: seq_ops::Window,
        span: Span,
        incremental: bool,
        batch_size: usize,
    ) -> Result<WindowAggBatchCursor> {
        let seq_ops::Window::Sliding { lo, hi } = window else {
            return Err(seq_core::SeqError::Unsupported(
                "WindowAggBatchCursor handles sliding windows".into(),
            ));
        };
        if !span.is_empty() && !span.is_bounded() {
            return Err(seq_core::SeqError::Unsupported(
                "stream evaluation of an aggregate needs a bounded output span".into(),
            ));
        }
        let (span, cur) = crate::cursor::span_cursor_start(span);
        Ok(WindowAggBatchCursor {
            input,
            func,
            attr_index,
            lo,
            hi,
            window: VecDeque::new(),
            accumulator: incremental.then(|| SlidingAccumulator::new(func)),
            in_batch: None,
            in_row: 0,
            input_done: false,
            cur,
            span,
            batch_size: batch_size.max(1),
        })
    }

    /// Position of the next unconsumed input row, if one is buffered.
    fn peek_pos(&self) -> Option<i64> {
        self.in_batch.as_ref().map(|b| b.positions()[self.in_row])
    }

    /// Ensure an unconsumed input row is buffered (or the input is done).
    fn fill_input(&mut self) -> Result<()> {
        loop {
            if let Some(b) = &self.in_batch {
                if self.in_row < b.len() {
                    return Ok(());
                }
                self.in_batch = None;
                self.in_row = 0;
            }
            if self.input_done {
                return Ok(());
            }
            match self.input.next_batch()? {
                Some(mut b) if !b.is_empty() => {
                    // The run-folding below indexes rows physically; the plan
                    // lowering inserts a charged compaction boundary upstream,
                    // so this defensive densify is normally a no-op.
                    b.compact();
                    self.in_batch = Some(b);
                    self.in_row = 0;
                    return Ok(());
                }
                Some(_) => continue,
                None => {
                    self.input_done = true;
                    return Ok(());
                }
            }
        }
    }

    /// Fold buffered input records at positions `<= upto` into the window.
    ///
    /// Consumes whole in-range runs of the buffered batch per iteration: the
    /// run boundary is found by binary search and the values are read
    /// straight off the column slice. The incremental accumulator keeps its
    /// own live window, so the side `window` deque is only maintained for
    /// the recomputing (non-incremental) strategy.
    fn fold_input_through(&mut self, upto: i64) -> Result<()> {
        loop {
            self.fill_input()?;
            let Some(b) = &self.in_batch else { return Ok(()) };
            let positions = b.positions();
            if positions[self.in_row] > upto {
                return Ok(());
            }
            // Advance linearly: the window's leading edge moves one position
            // per emit, so the run is almost always zero or one rows and a
            // binary search would cost more than it saves.
            let col = b.column(self.attr_index)?;
            let mut i = self.in_row;
            match &mut self.accumulator {
                Some(acc) => {
                    while i < positions.len() && positions[i] <= upto {
                        // Fold strict-equality runs (decoded RLE runs) into
                        // the accumulator in one call each.
                        let mut j = i + 1;
                        while j < positions.len()
                            && positions[j] <= upto
                            && seq_storage::strict_eq(&col[j], &col[i])
                        {
                            j += 1;
                        }
                        acc.push_run(&positions[i..j], &col[i])?;
                        i = j;
                    }
                }
                None => {
                    while i < positions.len() && positions[i] <= upto {
                        self.window.push_back((positions[i], col[i].clone()));
                        i += 1;
                    }
                }
            }
            self.in_row = i;
            if i < positions.len() {
                return Ok(());
            }
            // Batch exhausted: let fill_input pull the next one.
        }
    }

    /// Drop window entries below `below`.
    fn evict_below(&mut self, below: i64) {
        match &mut self.accumulator {
            Some(acc) => acc.evict_below(below),
            None => {
                while self.window.front().is_some_and(|(p, _)| *p < below) {
                    self.window.pop_front();
                }
            }
        }
    }

    /// Whether the current window holds no input records.
    fn window_is_empty(&self) -> bool {
        match &self.accumulator {
            Some(acc) => acc.is_empty(),
            None => self.window.is_empty(),
        }
    }

    /// The aggregate value of the current window, if defined.
    fn current_value(&self) -> Result<Option<Value>> {
        match &self.accumulator {
            Some(acc) => Ok(acc.current()),
            None => {
                let values: Vec<Value> = self.window.iter().map(|(_, v)| v.clone()).collect();
                self.func.apply(values.iter())
            }
        }
    }
}

impl BatchCursor for WindowAggBatchCursor {
    fn next_batch(&mut self) -> Result<Option<RecordBatch>> {
        let mut out = RecordBatch::with_capacity(1, self.batch_size);
        while out.len() < self.batch_size {
            if self.span.is_empty() || self.cur > self.span.end() {
                break;
            }
            let o = self.cur;
            self.fold_input_through(o.saturating_add(self.hi))?;
            self.evict_below(o.saturating_add(self.lo));
            self.cur += 1;

            if !self.window_is_empty() {
                if let Some(v) = self.current_value()? {
                    out.push_single(o, v).expect("single aggregate column");
                }
                continue;
            }
            // Empty window: jump to the first position whose window can
            // contain the next buffered input record.
            match (self.peek_pos(), self.input_done) {
                (Some(q), _) => self.cur = self.cur.max(q - self.hi),
                (None, true) => break,
                (None, false) => {
                    // Force a pull on the next iteration.
                }
            }
        }
        if out.is_empty() {
            Ok(None)
        } else {
            Ok(Some(out))
        }
    }

    fn next_batch_from(&mut self, lower: i64) -> Result<Option<RecordBatch>> {
        if self.span.is_empty() || lower > self.span.end() {
            // No output at or past `lower`: answer without touching the
            // input (an empty-span cursor must never pull from it).
            self.cur = self.cur.max(lower);
            return Ok(None);
        }
        if lower > self.cur {
            self.cur = lower;
            // Input records below cur+lo can no longer reach any window;
            // let the input skip them instead of draining one by one.
            let bound = self.cur.saturating_add(self.lo);
            let buffer_covers_bound =
                self.in_batch.as_ref().and_then(|b| b.last_pos()).is_some_and(|p| p >= bound);
            if buffer_covers_bound {
                // Skip forward within the buffered batch.
                let b = self.in_batch.as_ref().expect("buffer checked above");
                let lb = b.positions().partition_point(|&p| p < bound);
                self.in_row = self.in_row.max(lb);
            } else {
                // Everything buffered is stale; let the input skip.
                self.in_batch = None;
                self.in_row = 0;
                if !self.input_done {
                    match self.input.next_batch_from(bound)? {
                        Some(mut b) => {
                            b.compact(); // see fill_input: defensive densify
                            self.in_batch = Some(b);
                        }
                        None => self.input_done = true,
                    }
                }
            }
        }
        self.next_batch()
    }
}

/// Adapter: expose a record-at-a-time [`Cursor`] as a [`BatchCursor`].
///
/// Used at block boundaries: operators with non-unit scope (compose, value
/// offsets, cumulative aggregates) keep their record-at-a-time
/// implementations, and this adapter re-batches their output so operators
/// above them still run vectorized.
pub struct RecordToBatchCursor {
    input: Box<dyn Cursor>,
    batch_size: usize,
}

impl RecordToBatchCursor {
    /// Re-batch `input`, `batch_size` rows at a time.
    pub fn new(input: Box<dyn Cursor>, batch_size: usize) -> RecordToBatchCursor {
        RecordToBatchCursor { input, batch_size: batch_size.max(1) }
    }

    fn fill(&mut self, first: Option<(i64, Record)>) -> Result<Option<RecordBatch>> {
        let Some((p0, r0)) = first else { return Ok(None) };
        let mut batch = RecordBatch::with_capacity(r0.arity(), self.batch_size);
        batch.push_record(p0, &r0)?;
        while batch.len() < self.batch_size {
            match self.input.next()? {
                Some((p, r)) => batch.push_record(p, &r)?,
                None => break,
            }
        }
        Ok(Some(batch))
    }
}

impl BatchCursor for RecordToBatchCursor {
    fn next_batch(&mut self) -> Result<Option<RecordBatch>> {
        let first = self.input.next()?;
        self.fill(first)
    }

    fn next_batch_from(&mut self, lower: i64) -> Result<Option<RecordBatch>> {
        let first = self.input.next_from(lower)?;
        self.fill(first)
    }
}

/// Adapter: expose a [`BatchCursor`] as a record-at-a-time [`Cursor`].
///
/// Lets batched pipelines feed consumers that still speak records (the
/// positional joins, value offsets, or a caller iterating results).
pub struct BatchToRecordCursor {
    input: Box<dyn BatchCursor>,
    buf: Option<RecordBatch>,
    row: usize,
}

impl BatchToRecordCursor {
    /// Unbatch `input` into single records.
    pub fn new(input: Box<dyn BatchCursor>) -> BatchToRecordCursor {
        BatchToRecordCursor { input, buf: None, row: 0 }
    }
}

impl Cursor for BatchToRecordCursor {
    fn next(&mut self) -> Result<Option<(i64, Record)>> {
        loop {
            if let Some(b) = &self.buf {
                if self.row < b.len() {
                    let item = b.record(self.row);
                    self.row += 1;
                    return Ok(Some(item));
                }
                self.buf = None;
                self.row = 0;
            }
            match self.input.next_batch()? {
                Some(b) if !b.is_empty() => {
                    self.buf = Some(b);
                    self.row = 0;
                }
                Some(_) => continue,
                None => return Ok(None),
            }
        }
    }

    fn next_from(&mut self, lower: i64) -> Result<Option<(i64, Record)>> {
        if let Some(b) = &self.buf {
            if b.last_pos().is_some_and(|p| p >= lower) {
                // The buffered batch still covers `lower`: binary-search
                // forward within it (logical view, so a selection-carrying
                // batch is consumed natively — no compaction needed here).
                let lb = b.lower_bound(lower);
                self.row = self.row.max(lb);
                return self.next();
            }
            self.buf = None;
            self.row = 0;
        }
        match self.input.next_batch_from(lower)? {
            Some(b) => {
                self.buf = Some(b);
                self.row = 0;
                self.next()
            }
            None => Ok(None),
        }
    }
}
