//! seq-trace: per-operator query-lifecycle instrumentation.
//!
//! The paper's experimental argument (§4) is made entirely from counted
//! quantities — page accesses, predicate applications (the K term), cache
//! traffic. The global [`crate::stats::ExecStats`] / storage counters total
//! those per query; this module *attributes* them per physical operator,
//! per execution phase, and (on the parallel path) per worker.
//!
//! A [`QueryProfile`] is built for one [`PhysPlan`] and attached to the
//! [`crate::plan::ExecContext`] (see `ExecContext::enable_profiling`).
//! Profiling is strictly opt-in: without a profile the open/execute paths
//! are unchanged except for one `Option` check at cursor-open time, so the
//! uninstrumented hot path pays nothing per record.
//!
//! With a profile attached, every plan node's cursor is wrapped in a thin
//! instrumenting shim that accumulates, into per-node shared atomics:
//!
//! - rows and batches produced, and `next`/`next_batch`/`get` calls;
//! - monotonic wall time spent inside the operator subtree (inclusive —
//!   subtract the children's time for self time);
//! - executor counters (cache probes/stores, predicate applications) via a
//!   scoped [`ExecStats`] that tees into the query-global one;
//! - storage counters (pages read/hit, probes, records streamed) via a
//!   scoped [`seq_storage::AccessStats`] on each base-sequence access.
//!
//! The morsel-parallel driver additionally records per-worker morsel
//! counts, rows, busy time and claim-wait time, plus the merge thread's
//! wait time. Everything exports as hand-rolled JSON
//! ([`QueryProfile::to_json`]) — no external dependencies anywhere.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use seq_core::{Record, RecordBatch, Result, Span};
use seq_storage::{AccessStats, StatsSnapshot};

use crate::batch::BatchCursor;
use crate::cursor::{Cursor, PointAccess};
use crate::plan::{PhysNode, PhysPlan};
use crate::stats::{ExecSnapshot, ExecStats};

/// Per-operator instrumentation slot. Nodes are indexed by their pre-order
/// position in the plan tree (root = 0, children follow their parent, left
/// subtree before right), which is stable across [`PhysNode::restrict_to`] —
/// so every morsel's cursor tree folds into the same slots.
pub struct OpProfile {
    /// One-line operator description (as in the EXPLAIN rendering).
    pub label: String,
    /// The node's restricted output span.
    pub span: Span,
    /// Depth in the plan tree (root = 0), for rendering.
    pub depth: usize,
    /// Pre-order ids of the direct children.
    pub children: Vec<usize>,
    rows_out: AtomicU64,
    batches_out: AtomicU64,
    calls: AtomicU64,
    busy_nanos: AtomicU64,
    exec: ExecStats,
    storage: Option<Arc<AccessStats>>,
}

impl OpProfile {
    fn add_row(&self, nanos: u64, produced: bool) {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.busy_nanos.fetch_add(nanos, Ordering::Relaxed);
        if produced {
            self.rows_out.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn add_batch(&self, nanos: u64, rows: u64, produced: bool) {
        self.calls.fetch_add(1, Ordering::Relaxed);
        self.busy_nanos.fetch_add(nanos, Ordering::Relaxed);
        if produced {
            self.batches_out.fetch_add(1, Ordering::Relaxed);
            self.rows_out.fetch_add(rows, Ordering::Relaxed);
        }
    }

    /// A point-in-time copy of this operator's measurements. The execution
    /// mode defaults to "tuple" here; [`QueryProfile::op_reports`] fills in
    /// the mode recorded by the execute entry point.
    pub fn report(&self) -> OpReport {
        OpReport {
            mode: "tuple",
            label: self.label.clone(),
            span: self.span,
            depth: self.depth,
            children: self.children.clone(),
            rows_out: self.rows_out.load(Ordering::Relaxed),
            batches_out: self.batches_out.load(Ordering::Relaxed),
            calls: self.calls.load(Ordering::Relaxed),
            busy: Duration::from_nanos(self.busy_nanos.load(Ordering::Relaxed)),
            exec: self.exec.snapshot(),
            storage: self.storage.as_ref().map(|s| s.snapshot()).unwrap_or_default(),
            touches_storage: self.storage.is_some(),
        }
    }
}

/// Immutable copy of one operator's measurements.
#[derive(Debug, Clone)]
pub struct OpReport {
    /// One-line operator description.
    pub label: String,
    /// Execution mode the operator lowered onto: "batch" (native vectorized
    /// kernel), "tuple" (record-at-a-time, possibly behind an adapter), or
    /// "fused" (predicate fused into the scan).
    pub mode: &'static str,
    /// The node's restricted output span.
    pub span: Span,
    /// Depth in the plan tree (root = 0).
    pub depth: usize,
    /// Pre-order ids of the direct children.
    pub children: Vec<usize>,
    /// Rows the operator produced (post-clamp at the root).
    pub rows_out: u64,
    /// Batches the operator produced (vectorized path only).
    pub batches_out: u64,
    /// `next`/`next_batch`/`get` calls into the operator.
    pub calls: u64,
    /// Wall time inside the operator subtree (inclusive of children; summed
    /// across workers on the parallel path).
    pub busy: Duration,
    /// Executor counters attributed to this operator.
    pub exec: ExecSnapshot,
    /// Storage counters attributed to this operator (base accesses only).
    pub storage: StatsSnapshot,
    /// Whether this node accesses storage directly (base scans/probes).
    pub touches_storage: bool,
}

/// Per-worker measurements from one morsel-parallel execution.
#[derive(Debug, Clone, Copy, Default)]
pub struct WorkerProfile {
    /// Worker index in `0..degree`.
    pub worker: usize,
    /// Morsels this worker claimed and ran.
    pub morsels: u64,
    /// Output rows this worker produced (post-clamp).
    pub rows: u64,
    /// Time spent evaluating morsels.
    pub busy: Duration,
    /// Time spent blocked claiming morsels (bounded merge window full, or
    /// waiting for the run to end).
    pub claim_wait: Duration,
}

/// Per-operator, per-worker metrics registry for one query execution.
///
/// Create with [`QueryProfile::for_plan`] (usually via
/// `ExecContext::enable_profiling`), run the query, then read
/// [`QueryProfile::op_reports`], [`QueryProfile::worker_reports`], or
/// [`QueryProfile::to_json`].
pub struct QueryProfile {
    ops: Vec<OpProfile>,
    /// Per-operator execution mode ("batch" / "tuple" / "fused"), in
    /// pre-order; set by the execute entry points (empty until one runs).
    modes: Mutex<Vec<&'static str>>,
    workers: Mutex<Vec<WorkerProfile>>,
    morsels_planned: AtomicU64,
    merge_wait_nanos: AtomicU64,
}

impl QueryProfile {
    /// Build the registry for `plan`: one slot per node in pre-order, each
    /// with an [`ExecStats`] scope teeing into `exec_stats` and (for base
    /// accesses) an [`AccessStats`] scope teeing into `storage_stats`.
    pub fn for_plan(
        plan: &PhysPlan,
        exec_stats: &ExecStats,
        storage_stats: &Arc<AccessStats>,
    ) -> Arc<QueryProfile> {
        let mut ops = Vec::with_capacity(plan.root.subtree_size());
        collect_ops(&plan.root, 0, exec_stats, storage_stats, &mut ops);
        Arc::new(QueryProfile {
            ops,
            modes: Mutex::new(Vec::new()),
            workers: Mutex::new(Vec::new()),
            morsels_planned: AtomicU64::new(0),
            merge_wait_nanos: AtomicU64::new(0),
        })
    }

    /// Record each operator's execution mode ("batch" / "tuple" / "fused"),
    /// in pre-order — see [`PhysNode::exec_mode_labels`]. Called by the
    /// execute entry points; a length mismatch (a profile reused across
    /// plans) is ignored rather than mis-attributed.
    pub fn set_op_modes(&self, modes: Vec<&'static str>) {
        if modes.len() == self.ops.len() {
            *self.modes.lock().expect("profile poisoned") = modes;
        }
    }

    /// Per-operator execution modes in pre-order; "tuple" until an execute
    /// entry point records the lowered modes.
    pub fn op_modes(&self) -> Vec<&'static str> {
        let modes = self.modes.lock().expect("profile poisoned");
        if modes.len() == self.ops.len() {
            modes.clone()
        } else {
            vec!["tuple"; self.ops.len()]
        }
    }

    /// Number of instrumented operators.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Rows the plan root produced (equals the Start operator's output count
    /// once the drivers' range clamping is accounted, which the execute
    /// entry points do).
    pub fn root_rows_out(&self) -> u64 {
        self.ops[0].rows_out.load(Ordering::Relaxed)
    }

    /// Point-in-time copies of every operator slot, in pre-order, with the
    /// recorded execution modes filled in.
    pub fn op_reports(&self) -> Vec<OpReport> {
        let modes = self.op_modes();
        self.ops
            .iter()
            .zip(modes)
            .map(|(o, mode)| {
                let mut r = o.report();
                r.mode = mode;
                r
            })
            .collect()
    }

    /// Per-worker measurements (empty unless the parallel driver ran),
    /// sorted by worker index.
    pub fn worker_reports(&self) -> Vec<WorkerProfile> {
        let mut w = self.workers.lock().expect("profile poisoned").clone();
        w.sort_by_key(|p| p.worker);
        w
    }

    /// Morsels the parallel driver partitioned the range into (0 unless the
    /// parallel driver ran).
    pub fn morsels_planned(&self) -> u64 {
        self.morsels_planned.load(Ordering::Relaxed)
    }

    /// Time the merge thread spent waiting on workers.
    pub fn merge_wait(&self) -> Duration {
        Duration::from_nanos(self.merge_wait_nanos.load(Ordering::Relaxed))
    }

    /// Executor counters summed over all operators.
    pub fn total_exec(&self) -> ExecSnapshot {
        let mut t = ExecSnapshot::default();
        for op in &self.ops {
            let s = op.exec.snapshot();
            t.output_records += s.output_records;
            t.cache_stores += s.cache_stores;
            t.cache_probes += s.cache_probes;
            t.predicate_evals += s.predicate_evals;
            t.naive_walk_steps += s.naive_walk_steps;
            t.stat_folds += s.stat_folds;
            t.selections_carried += s.selections_carried;
            t.slots_compacted += s.slots_compacted;
        }
        t
    }

    /// Storage counters summed over all operators (all storage traffic is
    /// attributed at the base accesses).
    pub fn total_storage(&self) -> StatsSnapshot {
        let mut t = StatsSnapshot::default();
        for op in &self.ops {
            if let Some(s) = &op.storage {
                let s = s.snapshot();
                t.page_reads += s.page_reads;
                t.page_hits += s.page_hits;
                t.pages_skipped += s.pages_skipped;
                t.probes += s.probes;
                t.stream_records += s.stream_records;
                t.scans_opened += s.scans_opened;
                t.stat_folds += s.stat_folds;
                t.bytes_decoded += s.bytes_decoded;
                t.columns_pruned += s.columns_pruned;
            }
        }
        t
    }

    // ---- hooks for the open/execute paths -------------------------------

    /// The scoped executor counters for node `id`.
    pub(crate) fn exec_stats(&self, id: usize) -> ExecStats {
        self.ops[id].exec.clone()
    }

    /// The scoped storage counters for node `id` (base nodes only).
    pub(crate) fn storage_stats(&self, id: usize) -> Option<Arc<AccessStats>> {
        self.ops[id].storage.clone()
    }

    /// Wrap a stream cursor in the instrumenting shim for node `id`.
    pub(crate) fn wrap_stream(
        self: &Arc<Self>,
        id: usize,
        inner: Box<dyn Cursor>,
    ) -> Box<dyn Cursor> {
        Box::new(ProfiledCursor { inner, profile: Arc::clone(self), id })
    }

    /// Wrap a batch cursor in the instrumenting shim for node `id`.
    pub(crate) fn wrap_batch(
        self: &Arc<Self>,
        id: usize,
        inner: Box<dyn BatchCursor>,
    ) -> Box<dyn BatchCursor> {
        Box::new(ProfiledBatchCursor { inner, profile: Arc::clone(self), id })
    }

    /// Wrap a point-access handle in the instrumenting shim for node `id`.
    pub(crate) fn wrap_probe(
        self: &Arc<Self>,
        id: usize,
        inner: Box<dyn PointAccess>,
    ) -> Box<dyn PointAccess> {
        Box::new(ProfiledProbe { inner, profile: Arc::clone(self), id })
    }

    /// Take back `n` root rows the driver discarded when clamping to the
    /// Start operator's range, so the root's `rows_out` equals the records
    /// actually output.
    pub(crate) fn uncount_root_rows(&self, n: u64) {
        if n > 0 {
            self.ops[0].rows_out.fetch_sub(n, Ordering::Relaxed);
        }
    }

    /// Record how many morsels the parallel driver planned.
    pub(crate) fn record_morsels_planned(&self, n: u64) {
        self.morsels_planned.store(n, Ordering::Relaxed);
    }

    /// Add merge-thread wait time.
    pub(crate) fn record_merge_wait(&self, nanos: u64) {
        self.merge_wait_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    /// Deliver one worker's measurements at the end of a parallel run.
    pub(crate) fn record_worker(&self, w: WorkerProfile) {
        self.workers.lock().expect("profile poisoned").push(w);
    }

    // ---- reporting ------------------------------------------------------

    /// Plain-text per-operator rendering (the EXPLAIN ANALYZE layer in
    /// `seq-opt` adds estimated-vs-actual annotations on top of this).
    pub fn render(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for op in self.op_reports() {
            let pad = "  ".repeat(op.depth);
            let _ = writeln!(out, "{pad}{} span={} mode={}", op.label, op.span, op.mode);
            let _ = write!(
                out,
                "{pad}  rows={} calls={} time={:.3}ms",
                op.rows_out,
                op.calls,
                op.busy.as_secs_f64() * 1e3
            );
            if op.batches_out > 0 {
                let _ = write!(out, " batches={}", op.batches_out);
            }
            if op.exec.predicate_evals > 0 {
                let _ = write!(out, " preds={}", op.exec.predicate_evals);
            }
            if op.exec.cache_probes + op.exec.cache_stores > 0 {
                let _ = write!(out, " cache={}p/{}s", op.exec.cache_probes, op.exec.cache_stores);
            }
            if op.touches_storage {
                let _ = write!(
                    out,
                    " pages={}r/{}h probes={}",
                    op.storage.page_reads, op.storage.page_hits, op.storage.probes
                );
                if op.storage.pages_skipped > 0 {
                    let _ = write!(out, " skipped={}", op.storage.pages_skipped);
                }
            }
            let _ = writeln!(out);
        }
        let workers = self.worker_reports();
        if !workers.is_empty() {
            let _ = writeln!(
                out,
                "parallel: {} morsels over {} workers, merge wait {:.3}ms",
                self.morsels_planned(),
                workers.len(),
                self.merge_wait().as_secs_f64() * 1e3
            );
            for w in &workers {
                let _ = writeln!(
                    out,
                    "  worker {}: morsels={} rows={} busy={:.3}ms claim_wait={:.3}ms",
                    w.worker,
                    w.morsels,
                    w.rows,
                    w.busy.as_secs_f64() * 1e3,
                    w.claim_wait.as_secs_f64() * 1e3
                );
            }
        }
        out
    }

    /// Machine-readable JSON export (hand-rolled; no serde). The shape is
    /// validated by `seq-bench`'s `profile_check` binary in CI.
    pub fn to_json(&self) -> String {
        let mut w = JsonWriter::new();
        w.raw("{\n  \"profile_version\": 1,\n  \"operators\": [");
        for (i, op) in self.op_reports().iter().enumerate() {
            if i > 0 {
                w.raw(",");
            }
            w.raw("\n    {");
            w.field_str("label", &op.label);
            w.field_str("mode", op.mode);
            w.field_str("span", &op.span.to_string());
            w.field_num("depth", op.depth as f64);
            w.raw("\"children\": [");
            for (j, c) in op.children.iter().enumerate() {
                if j > 0 {
                    w.raw(", ");
                }
                w.raw(&c.to_string());
            }
            w.raw("], ");
            w.field_num("rows_out", op.rows_out as f64);
            w.field_num("batches_out", op.batches_out as f64);
            w.field_num("calls", op.calls as f64);
            w.field_num("busy_ms", op.busy.as_secs_f64() * 1e3);
            w.field_num("cache_probes", op.exec.cache_probes as f64);
            w.field_num("cache_stores", op.exec.cache_stores as f64);
            w.field_num("predicate_evals", op.exec.predicate_evals as f64);
            w.field_num("naive_walk_steps", op.exec.naive_walk_steps as f64);
            w.field_num("page_reads", op.storage.page_reads as f64);
            w.field_num("page_hits", op.storage.page_hits as f64);
            w.field_num("pages_skipped", op.storage.pages_skipped as f64);
            w.field_num("probes", op.storage.probes as f64);
            w.field_num("stream_records", op.storage.stream_records as f64);
            w.last_field_num("bytes_decoded", op.storage.bytes_decoded as f64);
            w.raw("}");
        }
        w.raw("\n  ],\n  \"workers\": [");
        for (i, wk) in self.worker_reports().iter().enumerate() {
            if i > 0 {
                w.raw(",");
            }
            w.raw("\n    {");
            w.field_num("worker", wk.worker as f64);
            w.field_num("morsels", wk.morsels as f64);
            w.field_num("rows", wk.rows as f64);
            w.field_num("busy_ms", wk.busy.as_secs_f64() * 1e3);
            w.last_field_num("claim_wait_ms", wk.claim_wait.as_secs_f64() * 1e3);
            w.raw("}");
        }
        if self.worker_reports().is_empty() {
            w.raw("],\n  ");
        } else {
            w.raw("\n  ],\n  ");
        }
        w.field_num("morsels_planned", self.morsels_planned() as f64);
        w.last_field_num("merge_wait_ms", self.merge_wait().as_secs_f64() * 1e3);
        w.raw("\n}\n");
        w.finish()
    }
}

/// Pre-order walk of the plan assigning ids and creating the scoped stats.
fn collect_ops(
    node: &PhysNode,
    depth: usize,
    exec_stats: &ExecStats,
    storage_stats: &Arc<AccessStats>,
    out: &mut Vec<OpProfile>,
) {
    let id = out.len();
    let storage = match node {
        PhysNode::Base { .. } | PhysNode::FusedScan { .. } => {
            Some(AccessStats::scoped(storage_stats))
        }
        _ => None,
    };
    out.push(OpProfile {
        label: node.label(),
        span: node.span(),
        depth,
        children: Vec::new(),
        rows_out: AtomicU64::new(0),
        batches_out: AtomicU64::new(0),
        calls: AtomicU64::new(0),
        busy_nanos: AtomicU64::new(0),
        exec: ExecStats::scoped(exec_stats),
        storage,
    });
    for child in node.children() {
        let child_id = out.len();
        out[id].children.push(child_id);
        collect_ops(child, depth + 1, exec_stats, storage_stats, out);
    }
}

// ---- instrumenting shims ------------------------------------------------

struct ProfiledCursor {
    inner: Box<dyn Cursor>,
    profile: Arc<QueryProfile>,
    id: usize,
}

impl Cursor for ProfiledCursor {
    fn next(&mut self) -> Result<Option<(i64, Record)>> {
        let start = Instant::now();
        let r = self.inner.next();
        let produced = matches!(&r, Ok(Some(_)));
        self.profile.ops[self.id].add_row(start.elapsed().as_nanos() as u64, produced);
        r
    }

    fn next_from(&mut self, lower: i64) -> Result<Option<(i64, Record)>> {
        let start = Instant::now();
        let r = self.inner.next_from(lower);
        let produced = matches!(&r, Ok(Some(_)));
        self.profile.ops[self.id].add_row(start.elapsed().as_nanos() as u64, produced);
        r
    }
}

struct ProfiledBatchCursor {
    inner: Box<dyn BatchCursor>,
    profile: Arc<QueryProfile>,
    id: usize,
}

impl BatchCursor for ProfiledBatchCursor {
    fn next_batch(&mut self) -> Result<Option<RecordBatch>> {
        let start = Instant::now();
        let r = self.inner.next_batch();
        let rows = match &r {
            Ok(Some(b)) => b.len() as u64,
            _ => 0,
        };
        self.profile.ops[self.id].add_batch(
            start.elapsed().as_nanos() as u64,
            rows,
            matches!(&r, Ok(Some(_))),
        );
        r
    }

    fn next_batch_from(&mut self, lower: i64) -> Result<Option<RecordBatch>> {
        let start = Instant::now();
        let r = self.inner.next_batch_from(lower);
        let rows = match &r {
            Ok(Some(b)) => b.len() as u64,
            _ => 0,
        };
        self.profile.ops[self.id].add_batch(
            start.elapsed().as_nanos() as u64,
            rows,
            matches!(&r, Ok(Some(_))),
        );
        r
    }
}

struct ProfiledProbe {
    inner: Box<dyn PointAccess>,
    profile: Arc<QueryProfile>,
    id: usize,
}

impl PointAccess for ProfiledProbe {
    fn get(&mut self, pos: i64) -> Result<Option<Record>> {
        let start = Instant::now();
        let r = self.inner.get(pos);
        let produced = matches!(&r, Ok(Some(_)));
        self.profile.ops[self.id].add_row(start.elapsed().as_nanos() as u64, produced);
        r
    }
}

// ---- tiny JSON writer ---------------------------------------------------

struct JsonWriter {
    out: String,
}

impl JsonWriter {
    fn new() -> JsonWriter {
        JsonWriter { out: String::new() }
    }

    fn raw(&mut self, s: &str) {
        self.out.push_str(s);
    }

    fn field_str(&mut self, key: &str, value: &str) {
        self.out.push('"');
        self.out.push_str(key);
        self.out.push_str("\": \"");
        escape_json_into(value, &mut self.out);
        self.out.push_str("\", ");
    }

    fn field_num(&mut self, key: &str, value: f64) {
        use std::fmt::Write;
        let _ = write!(self.out, "\"{key}\": {}, ", fmt_num(value));
    }

    fn last_field_num(&mut self, key: &str, value: f64) {
        use std::fmt::Write;
        let _ = write!(self.out, "\"{key}\": {}", fmt_num(value));
    }

    fn finish(self) -> String {
        self.out
    }
}

/// Format a number as valid JSON: integers without a fraction, everything
/// else with enough precision; NaN/inf (never produced here) clamp to 0.
fn fmt_num(v: f64) -> String {
    if !v.is_finite() {
        return "0".into();
    }
    if v.fract() == 0.0 && v.abs() < 9.0e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.3}")
    }
}

/// Escape a string for a JSON literal.
pub(crate) fn escape_json_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{ExecContext, JoinStrategy};
    use seq_core::{record, schema, AttrType, BaseSequence};
    use seq_ops::Expr;
    use seq_storage::Catalog;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.set_page_capacity(8);
        let sch = schema(&[("time", AttrType::Int), ("close", AttrType::Float)]);
        let base =
            BaseSequence::from_entries(sch, (1..=100).map(|p| (p, record![p, p as f64])).collect())
                .unwrap();
        c.register("S", &base);
        c.register("T", &base);
        c
    }

    fn select_plan() -> PhysPlan {
        let span = Span::new(1, 100);
        PhysPlan::new(
            PhysNode::Select {
                input: Box::new(PhysNode::Base { name: "S".into(), span }),
                predicate: Expr::Col(1).gt(Expr::lit(50.0)),
                span,
            },
            span,
        )
    }

    #[test]
    fn preorder_ids_and_labels() {
        let span = Span::new(1, 100);
        let plan = PhysPlan::new(
            PhysNode::Compose {
                left: Box::new(PhysNode::Select {
                    input: Box::new(PhysNode::Base { name: "S".into(), span }),
                    predicate: Expr::Col(1).gt(Expr::lit(50.0)),
                    span,
                }),
                right: Box::new(PhysNode::Base { name: "T".into(), span }),
                predicate: None,
                strategy: JoinStrategy::LockStep,
                span,
            },
            span,
        );
        let stats = ExecStats::new();
        let storage = AccessStats::new();
        let profile = QueryProfile::for_plan(&plan, &stats, &storage);
        let ops = profile.op_reports();
        assert_eq!(ops.len(), 4);
        assert!(ops[0].label.starts_with("Compose"));
        assert!(ops[1].label.starts_with("Select"));
        assert!(ops[2].label.starts_with("BaseScan(S)"));
        assert!(ops[3].label.starts_with("BaseScan(T)"));
        assert_eq!(ops[0].children, vec![1, 3]);
        assert_eq!(ops[1].children, vec![2]);
        assert_eq!(ops[0].depth, 0);
        assert_eq!(ops[2].depth, 2);
    }

    #[test]
    fn profiled_stream_counts_rows_and_attributes_counters() {
        let c = catalog();
        let plan = select_plan();
        let mut ctx = ExecContext::new(&c);
        let profile = ctx.enable_profiling(&plan);
        let rows = crate::exec::execute(&plan, &ctx).unwrap();
        assert_eq!(rows.len(), 50);
        let ops = profile.op_reports();
        // Root Select produced exactly the output; base produced all 100.
        assert_eq!(ops[0].rows_out, 50);
        assert_eq!(ops[1].rows_out, 100);
        // The predicate ran once per input record, attributed to the Select.
        assert_eq!(ops[0].exec.predicate_evals, 100);
        assert_eq!(ops[1].exec.predicate_evals, 0);
        // Page traffic is attributed to the base scan.
        assert!(ops[1].touches_storage);
        assert_eq!(ops[1].storage.page_reads, 13); // ceil(100/8)
        assert_eq!(ops[1].storage.stream_records, 100);
        // And the query-global counters saw the same traffic (teed).
        assert_eq!(c.stats().snapshot().page_reads, 13);
        assert_eq!(ctx.stats.snapshot().predicate_evals, 100);
    }

    #[test]
    fn json_export_is_shaped() {
        let c = catalog();
        let plan = select_plan();
        let mut ctx = ExecContext::new(&c);
        let profile = ctx.enable_profiling(&plan);
        crate::exec::execute_batched(&plan, &ctx).unwrap();
        let json = profile.to_json();
        assert!(json.contains("\"profile_version\": 1"));
        assert!(json.contains("\"operators\": ["));
        assert!(json.contains("\"rows_out\": 50"));
        assert!(json.contains("\"workers\": []"));
        // Decode accounting is exported per operator, and the batched scan
        // materialized real bytes.
        assert!(json.contains("\"bytes_decoded\": "));
        assert!(profile.total_storage().bytes_decoded > 0);
        // Balanced braces/brackets (cheap structural sanity).
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn escape_handles_quotes_and_controls() {
        let mut s = String::new();
        escape_json_into("a\"b\\c\nd\te\u{1}", &mut s);
        assert_eq!(s, "a\\\"b\\\\c\\nd\\te\\u0001");
    }
}
