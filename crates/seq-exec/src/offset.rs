//! Value-offset evaluation (Previous/Next) — the Figure 5.B contrast.
//!
//! The value offset operator has a *variable* scope: producing the output at
//! position `i` may require looking back (or ahead) an arbitrary number of
//! positions. Two strategies are implemented:
//!
//! - **Naive** ([`NaiveValueOffsetCursor`], and [`ValueOffsetProbe`] for
//!   probed access): for each output position, probe the input backward
//!   position by position until the |offset|-th non-Null record is found.
//!   Over a derived input this re-derives records repeatedly — the cost §3.5
//!   calls out.
//! - **Incremental, Cache-Strategy-B** ([`IncrementalValueOffsetCursor`]):
//!   stream the input once, holding only the |offset| most recent records in
//!   a FIFO [`OpCache`]. "The record at a particular position ... is either
//!   the cached record at the previous position, or the record from the
//!   input at the previous position if it is non-Null." The incremental
//!   algorithm is not usable in conjunction with probed access (§4.1.2).

use seq_core::{Record, RecordBatch, Result, Span};

use crate::batch::BatchCursor;
use crate::cache::OpCache;
use crate::cursor::{Cursor, PointAccess};
use crate::stats::ExecStats;

/// Cache-Strategy-B: single input scan, |offset|-record FIFO cache.
///
/// Output semantics: at output position `o`, the record at the |offset|-th
/// most recent non-empty input position strictly before `o` (for negative
/// offsets; symmetric lookahead for positive ones).
pub struct IncrementalValueOffsetCursor {
    input: Box<dyn Cursor>,
    /// |offset| for backward, offset for forward.
    magnitude: usize,
    backward: bool,
    cache: OpCache,
    /// Next input record not yet folded into the cache.
    pending: Option<(i64, Record)>,
    input_done: bool,
    /// Next candidate output position.
    cur: i64,
    span: Span,
    started: bool,
}

impl IncrementalValueOffsetCursor {
    /// Cache-Strategy-B evaluation of a value offset over a bounded span.
    pub fn new(
        input: Box<dyn Cursor>,
        offset: i64,
        span: Span,
        stats: ExecStats,
    ) -> Result<IncrementalValueOffsetCursor> {
        assert!(offset != 0, "value offset of zero is the identity");
        if !span.is_empty() && !span.is_bounded() {
            return Err(seq_core::SeqError::Unsupported(
                "stream evaluation of a value offset needs a bounded output span".into(),
            ));
        }
        let magnitude = offset.unsigned_abs() as usize;
        let (span, cur) = crate::cursor::span_cursor_start(span);
        Ok(IncrementalValueOffsetCursor {
            input,
            magnitude,
            backward: offset < 0,
            cache: OpCache::new(magnitude, stats),
            pending: None,
            input_done: false,
            cur,
            span,
            started: false,
        })
    }

    fn pull_input(&mut self) -> Result<Option<(i64, Record)>> {
        if let Some(item) = self.pending.take() {
            return Ok(Some(item));
        }
        if self.input_done {
            return Ok(None);
        }
        match self.input.next()? {
            Some(item) => Ok(Some(item)),
            None => {
                self.input_done = true;
                Ok(None)
            }
        }
    }

    /// Fold into the cache every input record at a position strictly below
    /// `before` (backward mode), leaving the first later record pending.
    fn advance_input_below(&mut self, before: i64) -> Result<()> {
        loop {
            match self.pull_input()? {
                Some((p, r)) if p < before => self.cache.push(p, r),
                Some(item) => {
                    self.pending = Some(item);
                    return Ok(());
                }
                None => return Ok(()),
            }
        }
    }

    fn next_backward(&mut self) -> Result<Option<(i64, Record)>> {
        loop {
            if self.span.is_empty() || self.cur > self.span.end() {
                return Ok(None);
            }
            let o = self.cur;
            self.advance_input_below(o)?;
            self.cur += 1;
            if self.cache.len() >= self.magnitude {
                // The |offset|-th most recent input before o.
                let (_, rec) = self.cache.from_back(self.magnitude - 1).expect("len checked");
                return Ok(Some((o, rec.clone())));
            }
            // Not enough history yet. Skip directly to just after the
            // magnitude-th input record instead of walking every position.
            if self.input_done && self.pending.is_none() {
                return Ok(None);
            }
            if let Some((p, r)) = self.pull_input()? {
                self.cache.push(p, r);
                // Earliest output position that can see this record is p+1.
                self.cur = self.cur.max(p + 1);
            }
        }
    }

    fn next_forward(&mut self) -> Result<Option<(i64, Record)>> {
        if self.span.is_empty() || self.cur > self.span.end() {
            return Ok(None);
        }
        let o = self.cur;
        // Lookahead mode: cache holds records strictly after o. Evict
        // records at positions <= o, then fill to `magnitude`.
        self.cache.evict_below(o + 1);
        while self.cache.len() < self.magnitude {
            match self.pull_input()? {
                Some((p, r)) => {
                    if p > o {
                        self.cache.push(p, r);
                    }
                    // Records at p <= o can never serve later outputs
                    // either (outputs only move forward): drop them.
                }
                None => break,
            }
        }
        self.cur += 1;
        if self.cache.len() >= self.magnitude {
            let (_, rec) = self.cache.from_back(0).expect("non-empty");
            // from_back(0) is the newest = the magnitude-th after o,
            // because the cache holds exactly `magnitude` records > o.
            return Ok(Some((o, rec.clone())));
        }
        // Input exhausted: no further output has enough lookahead.
        Ok(None)
    }
}

impl Cursor for IncrementalValueOffsetCursor {
    fn next(&mut self) -> Result<Option<(i64, Record)>> {
        self.started = true;
        if self.backward {
            self.next_backward()
        } else {
            self.next_forward()
        }
    }

    fn next_from(&mut self, lower: i64) -> Result<Option<(i64, Record)>> {
        // Jump the output position; the input is folded forward lazily.
        self.cur = self.cur.max(lower);
        self.next()
    }
}

/// Vectorized Cache-Strategy-B: [`IncrementalValueOffsetCursor`] batch-at-a-
/// time. The |offset|-record FIFO [`OpCache`] carries across batch
/// boundaries, so cache stores and probes are exactly those of the record
/// path; only the input arrives in batches and the output leaves in batches.
pub struct ValueOffsetBatchCursor {
    input: Box<dyn BatchCursor>,
    magnitude: usize,
    backward: bool,
    cache: OpCache,
    in_batch: Option<RecordBatch>,
    in_row: usize,
    input_done: bool,
    /// Next candidate output position.
    cur: i64,
    span: Span,
    batch_size: usize,
}

impl ValueOffsetBatchCursor {
    /// Batched Cache-Strategy-B evaluation of a value offset over a bounded
    /// span.
    pub fn new(
        input: Box<dyn BatchCursor>,
        offset: i64,
        span: Span,
        stats: ExecStats,
        batch_size: usize,
    ) -> Result<ValueOffsetBatchCursor> {
        assert!(offset != 0, "value offset of zero is the identity");
        if !span.is_empty() && !span.is_bounded() {
            return Err(seq_core::SeqError::Unsupported(
                "stream evaluation of a value offset needs a bounded output span".into(),
            ));
        }
        let magnitude = offset.unsigned_abs() as usize;
        let (span, cur) = crate::cursor::span_cursor_start(span);
        Ok(ValueOffsetBatchCursor {
            input,
            magnitude,
            backward: offset < 0,
            cache: OpCache::new(magnitude, stats),
            in_batch: None,
            in_row: 0,
            input_done: false,
            cur,
            span,
            batch_size,
        })
    }

    /// Position of the next unconsumed input record, pulling a fresh batch
    /// when the buffered one is spent (never touched before the first
    /// output-position check admits work).
    fn peek_pos(&mut self) -> Result<Option<i64>> {
        loop {
            if let Some(b) = &self.in_batch {
                if self.in_row < b.len() {
                    return Ok(Some(b.positions()[self.in_row]));
                }
                self.in_batch = None;
                self.in_row = 0;
            }
            if self.input_done {
                return Ok(None);
            }
            match self.input.next_batch()? {
                Some(b) => {
                    debug_assert!(!b.is_empty());
                    self.in_batch = Some(b);
                    self.in_row = 0;
                }
                None => {
                    self.input_done = true;
                    return Ok(None);
                }
            }
        }
    }

    /// Consume the record `peek_pos` just exposed.
    fn take_input(&mut self) -> (i64, Record) {
        let b = self.in_batch.as_ref().expect("peeked");
        let item = b.record(self.in_row);
        self.in_row += 1;
        item
    }

    /// One output record, mirroring
    /// [`IncrementalValueOffsetCursor::next_backward`] step for step so the
    /// cache sees the identical store sequence.
    fn emit_backward(&mut self) -> Result<Option<(i64, Record)>> {
        loop {
            if self.span.is_empty() || self.cur > self.span.end() {
                return Ok(None);
            }
            let o = self.cur;
            // Fold every input record strictly below o into the cache.
            while let Some(p) = self.peek_pos()? {
                if p >= o {
                    break;
                }
                let (p, r) = self.take_input();
                self.cache.push(p, r);
            }
            self.cur += 1;
            if self.cache.len() >= self.magnitude {
                let (_, rec) = self.cache.from_back(self.magnitude - 1).expect("len checked");
                return Ok(Some((o, rec.clone())));
            }
            // Not enough history yet: jump past the next input record.
            if self.peek_pos()?.is_none() {
                return Ok(None);
            }
            let (p, r) = self.take_input();
            self.cache.push(p, r);
            self.cur = self.cur.max(p + 1);
        }
    }

    /// One output record, mirroring
    /// [`IncrementalValueOffsetCursor::next_forward`].
    fn emit_forward(&mut self) -> Result<Option<(i64, Record)>> {
        if self.span.is_empty() || self.cur > self.span.end() {
            return Ok(None);
        }
        let o = self.cur;
        self.cache.evict_below(o + 1);
        while self.cache.len() < self.magnitude {
            if self.peek_pos()?.is_none() {
                break;
            }
            let (p, r) = self.take_input();
            if p > o {
                self.cache.push(p, r);
            }
        }
        self.cur += 1;
        if self.cache.len() >= self.magnitude {
            let (_, rec) = self.cache.from_back(0).expect("non-empty");
            return Ok(Some((o, rec.clone())));
        }
        // Input exhausted: no further output has enough lookahead.
        Ok(None)
    }
}

impl BatchCursor for ValueOffsetBatchCursor {
    fn next_batch(&mut self) -> Result<Option<RecordBatch>> {
        let mut out: Option<RecordBatch> = None;
        while out.as_ref().map_or(0, |b| b.len()) < self.batch_size {
            let item = if self.backward { self.emit_backward()? } else { self.emit_forward()? };
            let Some((o, rec)) = item else { break };
            let dst =
                out.get_or_insert_with(|| RecordBatch::with_capacity(rec.arity(), self.batch_size));
            dst.push_record(o, &rec)?;
        }
        Ok(out)
    }

    fn next_batch_from(&mut self, lower: i64) -> Result<Option<RecordBatch>> {
        // Jump the output position; the skipped input is still folded into
        // the cache lazily, exactly as the record path's `next_from` does.
        self.cur = self.cur.max(lower);
        self.next_batch()
    }
}

/// The naive strategy as a stream: for each output position, walk the input
/// backward/forward through probed access until |offset| records are found.
pub struct NaiveValueOffsetCursor {
    probe: ValueOffsetProbe,
    cur: i64,
    span: Span,
}

impl NaiveValueOffsetCursor {
    /// The naive per-output walking strategy as a stream.
    pub fn new(
        input: Box<dyn PointAccess>,
        offset: i64,
        input_span: Span,
        span: Span,
        stats: ExecStats,
    ) -> Result<NaiveValueOffsetCursor> {
        if !span.is_empty() && !span.is_bounded() {
            return Err(seq_core::SeqError::Unsupported(
                "naive evaluation of a value offset needs a bounded output span".into(),
            ));
        }
        let (span, cur) = crate::cursor::span_cursor_start(span);
        Ok(NaiveValueOffsetCursor {
            probe: ValueOffsetProbe::new(input, offset, input_span, span, stats),
            cur,
            span,
        })
    }
}

impl Cursor for NaiveValueOffsetCursor {
    fn next(&mut self) -> Result<Option<(i64, Record)>> {
        while !self.span.is_empty() && self.cur <= self.span.end() {
            let o = self.cur;
            self.cur += 1;
            if let Some(rec) = self.probe.get(o)? {
                return Ok(Some((o, rec)));
            }
        }
        Ok(None)
    }

    fn next_from(&mut self, lower: i64) -> Result<Option<(i64, Record)>> {
        self.cur = self.cur.max(lower);
        self.next()
    }
}

/// Probed access to a value offset: the naive backward/forward walk. Each
/// visited position costs one input probe (counted as a naive walk step);
/// over derived inputs this is the repeated recomputation of §3.5.
pub struct ValueOffsetProbe {
    input: Box<dyn PointAccess>,
    offset: i64,
    input_span: Span,
    span: Span,
    stats: ExecStats,
}

impl ValueOffsetProbe {
    /// Probed value offset: walk the input per requested position.
    pub fn new(
        input: Box<dyn PointAccess>,
        offset: i64,
        input_span: Span,
        span: Span,
        stats: ExecStats,
    ) -> ValueOffsetProbe {
        assert!(offset != 0);
        ValueOffsetProbe { input, offset, input_span, span, stats }
    }
}

impl PointAccess for ValueOffsetProbe {
    fn get(&mut self, pos: i64) -> Result<Option<Record>> {
        if !self.span.contains(pos) {
            return Ok(None);
        }
        if self.input_span.is_empty() {
            return Ok(None);
        }
        let mut remaining = self.offset.unsigned_abs();
        if self.offset < 0 {
            if self.input_span.start() == seq_core::NEG_INF {
                return Err(seq_core::SeqError::Unsupported(
                    "naive value-offset walk over an input unbounded below".into(),
                ));
            }
            let mut j = pos - 1;
            while j >= self.input_span.start() {
                self.stats.record_naive_walk_step();
                if let Some(rec) = self.input.get(j)? {
                    remaining -= 1;
                    if remaining == 0 {
                        return Ok(Some(rec));
                    }
                }
                j -= 1;
            }
        } else {
            if self.input_span.end() == seq_core::POS_INF {
                return Err(seq_core::SeqError::Unsupported(
                    "naive value-offset walk over an input unbounded above".into(),
                ));
            }
            let mut j = pos + 1;
            while j <= self.input_span.end() {
                self.stats.record_naive_walk_step();
                if let Some(rec) = self.input.get(j)? {
                    remaining -= 1;
                    if remaining == 0 {
                        return Ok(Some(rec));
                    }
                }
                j += 1;
            }
        }
        Ok(None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::{BaseProbe, BaseStreamCursor};
    use seq_core::{record, schema, AttrType, BaseSequence, Value};
    use seq_storage::Catalog;

    fn catalog(positions: &[i64]) -> Catalog {
        let mut c = Catalog::new();
        c.set_page_capacity(4);
        let base = BaseSequence::from_entries(
            schema(&[("x", AttrType::Int)]),
            positions.iter().map(|&p| (p, record![p])).collect(),
        )
        .unwrap();
        c.register("S", &base);
        c
    }

    fn collect(mut cur: impl Cursor) -> Vec<(i64, i64)> {
        let mut out = Vec::new();
        while let Some((p, r)) = cur.next().unwrap() {
            out.push((p, r.value(0).unwrap().as_i64().unwrap()));
        }
        out
    }

    #[test]
    fn incremental_previous_matches_semantics() {
        let c = catalog(&[1, 3, 7]);
        let store = c.get("S").unwrap();
        let input = Box::new(BaseStreamCursor::new(&store, Span::new(1, 7)));
        let cur = IncrementalValueOffsetCursor::new(input, -1, Span::new(1, 10), ExecStats::new())
            .unwrap();
        let out = collect(cur);
        // Previous: defined from position 2 on; value is most recent input
        // strictly before the position.
        let expect: Vec<(i64, i64)> =
            vec![(2, 1), (3, 1), (4, 3), (5, 3), (6, 3), (7, 3), (8, 7), (9, 7), (10, 7)];
        assert_eq!(out, expect);
    }

    #[test]
    fn incremental_offset_minus_two() {
        let c = catalog(&[1, 3, 7]);
        let store = c.get("S").unwrap();
        let input = Box::new(BaseStreamCursor::new(&store, Span::new(1, 7)));
        let cur = IncrementalValueOffsetCursor::new(input, -2, Span::new(1, 9), ExecStats::new())
            .unwrap();
        let out = collect(cur);
        let expect: Vec<(i64, i64)> = vec![(4, 1), (5, 1), (6, 1), (7, 1), (8, 3), (9, 3)];
        assert_eq!(out, expect);
    }

    #[test]
    fn incremental_next_forward() {
        let c = catalog(&[1, 3, 7]);
        let store = c.get("S").unwrap();
        let input = Box::new(BaseStreamCursor::new(&store, Span::new(1, 7)));
        let cur =
            IncrementalValueOffsetCursor::new(input, 1, Span::new(0, 7), ExecStats::new()).unwrap();
        let out = collect(cur);
        // Next: record strictly after the position.
        let expect: Vec<(i64, i64)> = vec![(0, 1), (1, 3), (2, 3), (3, 7), (4, 7), (5, 7), (6, 7)];
        assert_eq!(out, expect);
    }

    #[test]
    fn naive_matches_incremental() {
        let c = catalog(&[2, 5, 6, 11]);
        let store = c.get("S").unwrap();
        let span = Span::new(1, 15);
        let input_span = Span::new(2, 11);

        let inc = IncrementalValueOffsetCursor::new(
            Box::new(BaseStreamCursor::new(&store, input_span)),
            -1,
            span,
            ExecStats::new(),
        )
        .unwrap();
        let naive = NaiveValueOffsetCursor::new(
            Box::new(BaseProbe::new(store.clone(), input_span)),
            -1,
            input_span,
            span,
            ExecStats::new(),
        )
        .unwrap();
        assert_eq!(collect(inc), collect(naive));
    }

    #[test]
    fn naive_walk_steps_exceed_incremental_work() {
        // The Fig 5.B claim: naive evaluation revisits input positions
        // repeatedly; the incremental cache does not walk at all.
        let positions: Vec<i64> = (1..=50).map(|i| i * 2).collect(); // sparse
        let c = catalog(&positions);
        let store = c.get("S").unwrap();
        let span = Span::new(1, 100);
        let input_span = Span::new(2, 100);

        let naive_stats = ExecStats::new();
        let naive = NaiveValueOffsetCursor::new(
            Box::new(BaseProbe::new(store.clone(), input_span)),
            -1,
            input_span,
            span,
            naive_stats.clone(),
        )
        .unwrap();
        let n_out = collect(naive).len();
        assert!(n_out > 0);
        let walk = naive_stats.snapshot().naive_walk_steps;
        // Each output at an even distance walks >= 1 step; many walk 2.
        assert!(walk as usize > n_out, "walk={walk} outputs={n_out}");

        let inc_stats = ExecStats::new();
        let inc = IncrementalValueOffsetCursor::new(
            Box::new(BaseStreamCursor::new(&store, input_span)),
            -1,
            span,
            inc_stats.clone(),
        )
        .unwrap();
        assert_eq!(collect(inc).len(), n_out);
        assert_eq!(inc_stats.snapshot().naive_walk_steps, 0);
        // Cache-B stores each consumed input record exactly once (the final
        // record at position 100 never precedes an output position, so it is
        // never cached).
        assert_eq!(inc_stats.snapshot().cache_stores, 49);
    }

    #[test]
    fn probe_respects_spans() {
        let c = catalog(&[5, 10]);
        let store = c.get("S").unwrap();
        let mut p = ValueOffsetProbe::new(
            Box::new(BaseProbe::new(store, Span::new(5, 10))),
            -1,
            Span::new(5, 10),
            Span::new(6, 20),
            ExecStats::new(),
        );
        assert!(p.get(5).unwrap().is_none()); // outside output span
        assert_eq!(p.get(6).unwrap().unwrap().value(0).unwrap(), &Value::Int(5));
        assert_eq!(p.get(20).unwrap().unwrap().value(0).unwrap(), &Value::Int(10));
        assert!(p.get(25).unwrap().is_none()); // outside output span
    }

    #[test]
    fn next_from_skips_cheaply() {
        let c = catalog(&(1..=100).collect::<Vec<i64>>());
        let store = c.get("S").unwrap();
        let mut cur = IncrementalValueOffsetCursor::new(
            Box::new(BaseStreamCursor::new(&store, Span::new(1, 100))),
            -1,
            Span::new(1, 200),
            ExecStats::new(),
        )
        .unwrap();
        let (p, r) = cur.next_from(150).unwrap().unwrap();
        assert_eq!(p, 150);
        assert_eq!(r.value(0).unwrap(), &Value::Int(100));
    }

    #[test]
    fn empty_input_yields_nothing() {
        let c = catalog(&[]);
        let store = c.get("S").unwrap();
        let cur = IncrementalValueOffsetCursor::new(
            Box::new(BaseStreamCursor::new(&store, Span::empty())),
            -1,
            Span::new(1, 10),
            ExecStats::new(),
        )
        .unwrap();
        assert!(collect(cur).is_empty());
    }

    fn collect_batches(mut cur: impl BatchCursor) -> Vec<(i64, i64)> {
        let mut out = Vec::new();
        while let Some(b) = cur.next_batch().unwrap() {
            assert!(!b.is_empty());
            for row in b.rows() {
                out.push((row.position(), row.value(0).unwrap().as_i64().unwrap()));
            }
        }
        out
    }

    fn batch_input(c: &Catalog, span: Span, batch_size: usize) -> Box<dyn BatchCursor> {
        let store = c.get("S").unwrap();
        Box::new(crate::batch::BaseBatchCursor::new(
            &store,
            span,
            batch_size,
            seq_storage::ColumnSet::All,
        ))
    }

    #[test]
    fn batched_offsets_match_record_path_for_all_batch_sizes() {
        let c = catalog(&[1, 3, 7]);
        for (offset, span) in [(-1, Span::new(1, 10)), (-2, Span::new(1, 9)), (1, Span::new(0, 7))]
        {
            let store = c.get("S").unwrap();
            let expect = collect(
                IncrementalValueOffsetCursor::new(
                    Box::new(BaseStreamCursor::new(&store, Span::new(1, 7))),
                    offset,
                    span,
                    ExecStats::new(),
                )
                .unwrap(),
            );
            for bs in [1, 2, 64] {
                let cur = ValueOffsetBatchCursor::new(
                    batch_input(&c, Span::new(1, 7), bs),
                    offset,
                    span,
                    ExecStats::new(),
                    bs,
                )
                .unwrap();
                assert_eq!(collect_batches(cur), expect, "offset {offset} batch_size {bs}");
            }
        }
    }

    #[test]
    fn batched_offset_cache_counters_match_record_path() {
        let positions: Vec<i64> = (1..=50).map(|i| i * 2).collect();
        let c = catalog(&positions);
        let stats = ExecStats::new();
        let cur = ValueOffsetBatchCursor::new(
            batch_input(&c, Span::new(2, 100), 16),
            -1,
            Span::new(1, 100),
            stats.clone(),
            16,
        )
        .unwrap();
        assert!(!collect_batches(cur).is_empty());
        // Same cache traffic as IncrementalValueOffsetCursor on this input.
        assert_eq!(stats.snapshot().cache_stores, 49);
        assert_eq!(stats.snapshot().naive_walk_steps, 0);
    }

    #[test]
    fn batched_offset_next_batch_from_jumps_output() {
        let c = catalog(&(1..=100).collect::<Vec<i64>>());
        let mut cur = ValueOffsetBatchCursor::new(
            batch_input(&c, Span::new(1, 100), 8),
            -1,
            Span::new(1, 200),
            ExecStats::new(),
            8,
        )
        .unwrap();
        let b = cur.next_batch_from(150).unwrap().unwrap();
        assert_eq!(b.first_pos(), Some(150));
        assert_eq!(b.rows().next().unwrap().value(0).unwrap(), &Value::Int(100));
    }
}
