//! Morsel-driven parallel execution of batch-capable plan segments.
//!
//! A bounded output span partitions into contiguous *morsels* — cache-sized
//! multiples of the batch size, in the style of HyPer's morsel-driven
//! scheduling (Leis et al., SIGMOD 2014). Each worker claims the next
//! unclaimed morsel, clones the plan restricted to it
//! ([`crate::PhysNode::restrict_to`] widens window-aggregate and
//! positional-offset inputs by the operator's scope overhang), runs an
//! independent [`BatchCursor`] pipeline over its sub-span, and hands the
//! result to an order-preserving bounded merge. Because unit-scope stream
//! operators are position-wise independent, the merged output is
//! bit-identical to the sequential batch path — and therefore to the
//! record-at-a-time path.
//!
//! The pool is plain `std::thread::scope` + `Mutex`/`Condvar`; no runtime
//! dependency. [`crate::stats::ExecStats`] and the storage counters are
//! shared atomics, so the paper's accounting (§4.1.3) folds correctly across
//! workers. Claiming is bounded by a merge window: a worker may run at most
//! a few morsels ahead of the merge frontier, so memory stays proportional
//! to `workers`, not to the span.

use std::collections::BTreeMap;
use std::sync::{Condvar, Mutex};
use std::time::Instant;

use seq_core::{Record, RecordBatch, Result, SeqError, Span};

use crate::plan::{ExecContext, PhysPlan};

/// Target number of batches per morsel when no explicit morsel length is
/// given: large enough to amortize per-morsel plan cloning and scan opening,
/// small enough that a handful of morsels per worker keeps the load even.
pub const DEFAULT_MORSEL_BATCHES: u64 = 16;

/// Parallel driver configuration.
#[derive(Debug, Clone, Copy)]
pub struct ParallelConfig {
    /// Worker thread count; `0` and `1` both mean sequential.
    pub workers: usize,
    /// Rows per batch inside each worker's pipeline.
    pub batch_size: usize,
    /// Positions per morsel; `0` picks a batch-size multiple automatically.
    pub morsel_positions: u64,
}

impl ParallelConfig {
    /// `workers` threads with default batch and morsel sizing.
    pub fn with_workers(workers: usize) -> ParallelConfig {
        ParallelConfig { workers, batch_size: seq_core::DEFAULT_BATCH_SIZE, morsel_positions: 0 }
    }
}

/// Partition a bounded span into contiguous morsels of `morsel_positions`
/// positions (the last one ragged). `morsel_positions = 0` picks
/// [`DEFAULT_MORSEL_BATCHES`] batches worth of positions, rounded so every
/// morsel length is a multiple of the batch size and there are at least a
/// few morsels per worker to balance against selective operators.
pub fn plan_morsels(
    range: Span,
    batch_size: usize,
    workers: usize,
    morsel_positions: u64,
) -> Vec<Span> {
    if range.is_empty() {
        return Vec::new();
    }
    debug_assert!(range.is_bounded(), "morsels partition bounded spans");
    let bs = batch_size.max(1) as u64;
    let total = range.len();
    let target = if morsel_positions > 0 {
        morsel_positions.max(1)
    } else {
        // At least ~4 morsels per worker when the span allows it, each a
        // multiple of the batch size, defaulting to DEFAULT_MORSEL_BATCHES
        // batches for long spans.
        let per_worker = total.div_ceil((workers.max(1) as u64) * 4).max(1);
        per_worker.min(bs * DEFAULT_MORSEL_BATCHES)
    };
    // Round up to a batch-size multiple so batch boundaries inside a morsel
    // stay aligned with the sequential path's.
    let target = target.div_ceil(bs).saturating_mul(bs).max(1);
    let mut morsels = Vec::new();
    let mut lo = range.start();
    loop {
        let hi = lo.saturating_add((target - 1).min(i64::MAX as u64) as i64).min(range.end());
        morsels.push(Span::new(lo, hi));
        if hi >= range.end() {
            return morsels;
        }
        lo = hi + 1;
    }
}

/// The shared claim/complete/merge state: morsel `i`'s result is emitted
/// strictly after morsel `i-1`'s, and a morsel may only be *claimed* while
/// it is less than `window` ahead of the merge frontier (the bounded queue).
struct MergeQueue {
    state: Mutex<MergeState>,
    /// Signals claim space (the frontier advanced) to waiting workers.
    space: Condvar,
    /// Signals a completed morsel to the merging thread.
    ready: Condvar,
    window: usize,
    total: usize,
}

struct MergeState {
    next_claim: usize,
    next_emit: usize,
    /// Completed but not yet merged morsels.
    done: BTreeMap<usize, Vec<RecordBatch>>,
    /// Claimed morsels not yet completed.
    outstanding: usize,
    /// First worker error; once set, workers stop claiming.
    error: Option<SeqError>,
    aborted: bool,
}

impl MergeQueue {
    fn new(total: usize, window: usize) -> MergeQueue {
        MergeQueue {
            state: Mutex::new(MergeState {
                next_claim: 0,
                next_emit: 0,
                done: BTreeMap::new(),
                outstanding: 0,
                error: None,
                aborted: false,
            }),
            space: Condvar::new(),
            ready: Condvar::new(),
            window: window.max(1),
            total,
        }
    }

    /// Claim the next morsel index, blocking while the claim window is full.
    /// `None` once every morsel is claimed or the run failed/aborted.
    fn claim(&self) -> Option<usize> {
        let mut st = self.state.lock().expect("merge queue poisoned");
        loop {
            if st.error.is_some() || st.aborted || st.next_claim >= self.total {
                return None;
            }
            if st.next_claim < st.next_emit + self.window {
                let idx = st.next_claim;
                st.next_claim += 1;
                st.outstanding += 1;
                return Some(idx);
            }
            st = self.space.wait(st).expect("merge queue poisoned");
        }
    }

    /// Deliver a claimed morsel's result.
    fn complete(&self, idx: usize, result: Result<Vec<RecordBatch>>) {
        let mut st = self.state.lock().expect("merge queue poisoned");
        st.outstanding -= 1;
        match result {
            Ok(batches) => {
                st.done.insert(idx, batches);
            }
            Err(e) => {
                if st.error.is_none() {
                    st.error = Some(e);
                }
                // Unblock workers parked on a full claim window.
                self.space.notify_all();
            }
        }
        self.ready.notify_all();
    }

    /// Next in-order morsel result for the merge thread: `Ok(Some(batches))`
    /// in morsel order, `Ok(None)` when all morsels are merged, or the first
    /// worker error once every claimed morsel has settled.
    fn take_next(&self) -> Result<Option<Vec<RecordBatch>>> {
        let mut st = self.state.lock().expect("merge queue poisoned");
        loop {
            let frontier = st.next_emit;
            if let Some(batches) = st.done.remove(&frontier) {
                st.next_emit += 1;
                self.space.notify_all();
                return Ok(Some(batches));
            }
            if let Some(e) = &st.error {
                if st.outstanding == 0 {
                    return Err(e.clone());
                }
            } else if st.next_emit >= self.total {
                return Ok(None);
            }
            st = self.ready.wait(st).expect("merge queue poisoned");
        }
    }

    /// Stop the run early: workers cease claiming new morsels.
    fn abort(&self) {
        let mut st = self.state.lock().expect("merge queue poisoned");
        st.aborted = true;
        self.space.notify_all();
        self.ready.notify_all();
    }
}

/// Evaluate one morsel: restrict the plan to the sub-span, run its pipeline
/// to completion, and return the produced batches (already clamped).
fn run_morsel(
    plan: &PhysPlan,
    ctx: &ExecContext<'_>,
    morsel: Span,
    batch_size: usize,
) -> Result<Vec<RecordBatch>> {
    let node = plan.root.restrict_to(morsel);
    let mut cursor = node.open_batch(ctx, batch_size)?;
    let mut out = Vec::new();
    let mut item = cursor.next_batch_from(morsel.start())?;
    while let Some(mut batch) = item {
        if batch.first_pos().is_some_and(|p| p > morsel.end()) {
            // Entirely past the morsel: the driver discards the batch.
            if let Some(p) = &ctx.profile {
                p.uncount_root_rows(batch.len() as u64);
            }
            break;
        }
        let before = batch.len();
        batch.clamp_positions(morsel.start(), morsel.end());
        if let Some(p) = &ctx.profile {
            p.uncount_root_rows((before - batch.len()) as u64);
        }
        if !batch.is_empty() {
            ctx.stats.record_outputs(batch.len() as u64);
            out.push(batch);
        }
        item = cursor.next_batch()?;
    }
    Ok(out)
}

/// Morsel-driven parallel evaluation of the plan: bit-identical to
/// [`crate::exec::execute_batched_with`], which it reduces to exactly when
/// `workers <= 1` or the range fits a single morsel.
///
/// Requires a bounded effective range and a position-partitionable plan
/// ([`crate::PhysNode::is_position_partitionable`]); the optimizer's Step 6
/// gates the parallel exec mode on both.
pub fn execute_parallel_with(
    plan: &PhysPlan,
    ctx: &ExecContext<'_>,
    config: ParallelConfig,
) -> Result<Vec<(i64, Record)>> {
    let range = plan.range.intersect(&plan.root.span());
    if range.is_empty() {
        return Ok(Vec::new());
    }
    if !range.is_bounded() {
        return Err(SeqError::Unsupported(
            "cannot materialize an unbounded range; clamp the plan's position range".into(),
        ));
    }
    let batch_size = config.batch_size.max(1);
    if config.workers <= 1 {
        // Degree 1 is *exactly* the sequential batch path: same cursors,
        // same page and counter accounting — and works for any plan.
        return crate::exec::execute_batched_with(plan, ctx, batch_size);
    }
    if !plan.root.is_position_partitionable() {
        return Err(SeqError::Unsupported(
            "parallel execution needs a position-partitionable plan".into(),
        ));
    }
    let morsels = plan_morsels(range, batch_size, config.workers, config.morsel_positions);
    if morsels.len() <= 1 {
        return crate::exec::execute_batched_with(plan, ctx, batch_size);
    }
    // The degenerate paths above record through the batch entry point; only
    // the true multi-morsel run below records as a parallel-path query.
    crate::telemetry::instrument(
        ctx,
        crate::telemetry::QueryPath::Parallel,
        |rows: &Vec<(i64, Record)>| rows.len() as u64,
        || run_parallel(plan, ctx, &morsels, batch_size, config.workers),
    )
}

/// The multi-morsel worker/merge loop behind [`execute_parallel_with`].
fn run_parallel(
    plan: &PhysPlan,
    ctx: &ExecContext<'_>,
    morsels: &[Span],
    batch_size: usize,
    workers: usize,
) -> Result<Vec<(i64, Record)>> {
    if let Some(p) = &ctx.profile {
        p.set_op_modes(plan.root.exec_mode_labels(true));
    }
    let workers = workers.min(morsels.len());
    let queue = MergeQueue::new(morsels.len(), workers * 2 + 2);
    if let Some(p) = &ctx.profile {
        p.record_morsels_planned(morsels.len() as u64);
    }

    let mut out = Vec::new();
    let merged: Result<()> = std::thread::scope(|scope| {
        for w in 0..workers {
            let (queue, profile) = (&queue, ctx.profile.as_deref());
            let telemetry = ctx.telemetry.as_deref();
            scope.spawn(move || {
                let mut local = crate::profile::WorkerProfile { worker: w, ..Default::default() };
                loop {
                    let idx = match profile {
                        Some(_) => {
                            let wait = Instant::now();
                            let idx = queue.claim();
                            local.claim_wait += wait.elapsed();
                            idx
                        }
                        None => queue.claim(),
                    };
                    let Some(idx) = idx else { break };
                    let busy = (profile.is_some() || telemetry.is_some()).then(Instant::now);
                    let result = run_morsel(plan, ctx, morsels[idx], batch_size);
                    if let Some(busy) = busy {
                        let elapsed = busy.elapsed();
                        if let Some(m) = telemetry {
                            // Per-worker tee: each worker records into the
                            // shared morsel histogram's atomic buckets, so
                            // the session slot is the exact fold.
                            m.record_morsel(elapsed);
                        }
                        if profile.is_some() {
                            local.busy += elapsed;
                            local.morsels += 1;
                            if let Ok(batches) = &result {
                                local.rows += batches.iter().map(|b| b.len() as u64).sum::<u64>();
                            }
                        }
                    }
                    queue.complete(idx, result);
                }
                if let Some(p) = profile {
                    p.record_worker(local);
                }
            });
        }
        // Merge on this thread, in morsel order.
        let profile = ctx.profile.as_deref();
        loop {
            let wait = profile.map(|_| Instant::now());
            let next = queue.take_next();
            if let (Some(p), Some(wait)) = (profile, wait) {
                p.record_merge_wait(wait.elapsed().as_nanos() as u64);
            }
            match next {
                Ok(Some(batches)) => {
                    for batch in &batches {
                        batch.append_records_into(&mut out);
                    }
                }
                Ok(None) => return Ok(()),
                Err(e) => {
                    queue.abort();
                    return Err(e);
                }
            }
        }
    });
    merged?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn morsels_tile_the_range_in_batch_multiples() {
        let morsels = plan_morsels(Span::new(1, 1000), 64, 4, 0);
        assert!(morsels.len() > 1);
        // Contiguous, ordered, and exactly covering the range.
        assert_eq!(morsels.first().unwrap().start(), 1);
        assert_eq!(morsels.last().unwrap().end(), 1000);
        for pair in morsels.windows(2) {
            assert_eq!(pair[0].end() + 1, pair[1].start());
        }
        // Every morsel except the last is a multiple of the batch size.
        for m in &morsels[..morsels.len() - 1] {
            assert_eq!(m.len() % 64, 0, "morsel {m} not batch-aligned");
        }
    }

    #[test]
    fn explicit_morsel_length_is_respected() {
        let morsels = plan_morsels(Span::new(10, 29), 4, 2, 8);
        let lens: Vec<u64> = morsels.iter().map(|m| m.len()).collect();
        assert_eq!(lens, vec![8, 8, 4]);
    }

    #[test]
    fn empty_and_single_morsel_ranges() {
        assert!(plan_morsels(Span::empty(), 64, 4, 0).is_empty());
        let one = plan_morsels(Span::new(5, 8), 64, 4, 0);
        assert_eq!(one, vec![Span::new(5, 8)]);
    }

    #[test]
    fn merge_queue_orders_and_bounds_claims() {
        let q = MergeQueue::new(5, 2);
        let a = q.claim().unwrap();
        let b = q.claim().unwrap();
        assert_eq!((a, b), (0, 1));
        q.complete(1, Ok(Vec::new()));
        q.complete(0, Ok(Vec::new()));
        assert!(q.take_next().unwrap().is_some()); // morsel 0
        assert!(q.take_next().unwrap().is_some()); // morsel 1
        assert_eq!(q.claim(), Some(2));
    }

    #[test]
    fn merge_queue_surfaces_worker_errors() {
        let q = MergeQueue::new(2, 4);
        assert_eq!(q.claim(), Some(0));
        q.complete(0, Err(SeqError::Unsupported("boom".into())));
        assert!(q.claim().is_none());
        assert!(q.take_next().is_err());
    }
}
