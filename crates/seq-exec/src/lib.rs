//! # seq-exec — physical evaluation of sequence queries
//!
//! The execution layer of the stack (§3.3–§3.5, §4.1.4 of the paper):
//!
//! - [`cursor`] — the two access modes of §3.3 as traits
//!   ([`cursor::Cursor`] for stream access, [`cursor::PointAccess`] for
//!   probed access) plus the unit-scope cursors;
//! - [`cache`] — the FIFO operator caches of §3.4 (cache-finite evaluation);
//! - [`offset`] — value offsets: naive walks vs. Cache-Strategy-B
//!   (Figure 5.B);
//! - [`aggregate`] — windowed aggregates: naive probing vs. Cache-Strategy-A,
//!   plus incremental sliding accumulators (Figure 5.A);
//! - [`compose`] — positional joins: Join-Strategy-A (stream+probe, both
//!   variants) and Join-Strategy-B (lock-step) (Figure 4, §3.3);
//! - [`plan`] / [`exec`] — physical plans carrying per-operator strategies
//!   and spans, and the Start operator that drives them (Figure 6);
//! - [`batch`] — the vectorized batch-at-a-time path: every physical
//!   operator (unit-scope kernels here; joins, value offsets, and
//!   cumulative/whole-span aggregates in their own modules) over columnar
//!   [`seq_core::RecordBatch`]es, with adapters to and from the
//!   record-at-a-time cursors for plans that mix the paths;
//! - [`parallel`] — morsel-driven parallel execution of position-
//!   partitionable plans with an order-preserving bounded merge;
//! - [`profile`] — seq-trace: opt-in per-operator/per-worker instrumentation
//!   ([`profile::QueryProfile`]) with hand-rolled JSON export;
//! - [`telemetry`] — the always-on side of seq-trace: the session metrics
//!   registry ([`telemetry::SessionMetrics`]) with log-bucketed latency
//!   histograms and a bounded trace ring exportable as Chrome
//!   `trace_event` JSON.

pub mod aggregate;
pub mod batch;
pub mod cache;
pub mod compose;
pub mod cursor;
pub mod exec;
pub mod incremental;
pub mod offset;
pub mod parallel;
pub mod plan;
pub mod profile;
pub mod stats;
pub mod telemetry;

pub use aggregate::{CumulativeAggBatchCursor, WholeSpanAggBatchCursor};
pub use batch::{
    BatchCursor, BatchToRecordCursor, FusedBaseBatchCursor, RecordToBatchCursor, DEFAULT_BATCH_SIZE,
};
pub use cache::OpCache;
pub use compose::{LockStepJoinBatch, StreamProbeJoinBatch, StreamSide};
pub use cursor::{Cursor, PointAccess};
pub use exec::{
    execute, execute_batched, execute_batched_assigned, execute_batched_with, execute_parallel,
    execute_within, materialize_into, probe_positions,
};
pub use incremental::{replay, Emission, TriggerEngine};
pub use offset::ValueOffsetBatchCursor;
pub use parallel::{execute_parallel_with, plan_morsels, ParallelConfig};
pub use plan::{AggStrategy, ExecContext, JoinStrategy, PhysNode, PhysPlan, ValueOffsetStrategy};
pub use profile::{OpReport, QueryProfile, WorkerProfile};
pub use stats::{ExecSnapshot, ExecStats};
pub use telemetry::{
    HistogramSnapshot, LatencyHistogram, MetricsSnapshot, Phase, QueryPath, SessionMetrics,
    TraceBuffer, TraceEvent,
};
