//! Executor-side statistics.
//!
//! Storage-level counters (pages, probes) live in `seq-storage`; this module
//! counts the executor-level quantities the paper's caching discussion (§3.5)
//! contrasts: cache traffic, naive re-derivation work, and predicate
//! applications (the `K`-cost term of §4.1.3).

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

#[derive(Debug, Default)]
struct ExecStatsInner {
    /// Records produced at the plan root.
    output_records: AtomicU64,
    /// Records inserted into operator caches.
    cache_stores: AtomicU64,
    /// Associative cache lookups.
    cache_probes: AtomicU64,
    /// Join/selection predicate evaluations (the paper's K term).
    predicate_evals: AtomicU64,
    /// Positions visited by naive value-offset walks and naive per-output
    /// aggregate probing — the "repeated retrievals / recomputation" that
    /// Cache-Strategy-A/B eliminate (§3.5).
    naive_walk_steps: AtomicU64,
    /// Folded (per-batch) counter updates. The vectorized path charges
    /// outputs and predicate evaluations once per batch instead of once per
    /// record; this counts those folds so tests can verify the contract.
    stat_folds: AtomicU64,
    /// Batches emitted carrying a selection vector instead of being gathered
    /// into a dense batch. Path-dependent (like `bytes_decoded`): it varies
    /// with the carry-vs-compact lowering and is excluded from the
    /// cross-path equality contract.
    selections_carried: AtomicU64,
    /// Rows copied by compaction boundaries (a [`RecordBatch::compact`]
    /// gather that densifies a selection-carrying batch before a consumer
    /// that indexes physically). Path-dependent, like `selections_carried`.
    slots_compacted: AtomicU64,
}

/// Cheaply cloneable handle to shared executor counters.
///
/// A scoped handle ([`ExecStats::scoped`]) tees every charge into a parent
/// context, so a profiler can attribute executor work (cache traffic,
/// predicate applications) to a single operator while the query-wide totals
/// stay exactly what they would be unscoped.
#[derive(Debug, Clone, Default)]
pub struct ExecStats {
    inner: Arc<ExecStatsInner>,
    /// Parent counters every charge is forwarded to (profiling scopes).
    parent: Option<Arc<ExecStatsInner>>,
}

impl ExecStats {
    /// Fresh shared counters.
    pub fn new() -> ExecStats {
        ExecStats::default()
    }

    /// A scoped child of `parent`: charges accumulate here *and* forward to
    /// the parent, so scoping never changes the parent's totals. The parent's
    /// own parent (if any) is not chained — scopes are one level deep.
    pub fn scoped(parent: &ExecStats) -> ExecStats {
        ExecStats { inner: Arc::default(), parent: Some(Arc::clone(&parent.inner)) }
    }

    /// Charge one record produced at the plan root.
    pub fn record_output(&self) {
        self.inner.output_records.fetch_add(1, Ordering::Relaxed);
        if let Some(p) = &self.parent {
            p.output_records.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Charge one record stored in an operator cache.
    pub fn record_cache_store(&self) {
        self.inner.cache_stores.fetch_add(1, Ordering::Relaxed);
        if let Some(p) = &self.parent {
            p.cache_stores.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Charge one associative cache lookup.
    pub fn record_cache_probe(&self) {
        self.inner.cache_probes.fetch_add(1, Ordering::Relaxed);
        if let Some(p) = &self.parent {
            p.cache_probes.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Charge one predicate application (the K term).
    pub fn record_predicate_eval(&self) {
        self.inner.predicate_evals.fetch_add(1, Ordering::Relaxed);
        if let Some(p) = &self.parent {
            p.predicate_evals.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Charge one position visited by a naive walk.
    pub fn record_naive_walk_step(&self) {
        self.inner.naive_walk_steps.fetch_add(1, Ordering::Relaxed);
        if let Some(p) = &self.parent {
            p.naive_walk_steps.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Charge `n` output records with a single atomic add (batch path).
    pub fn record_outputs(&self, n: u64) {
        if n > 0 {
            self.inner.output_records.fetch_add(n, Ordering::Relaxed);
            self.inner.stat_folds.fetch_add(1, Ordering::Relaxed);
            if let Some(p) = &self.parent {
                p.output_records.fetch_add(n, Ordering::Relaxed);
                p.stat_folds.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Charge `n` predicate applications with a single atomic add.
    pub fn record_predicate_evals(&self, n: u64) {
        if n > 0 {
            self.inner.predicate_evals.fetch_add(n, Ordering::Relaxed);
            self.inner.stat_folds.fetch_add(1, Ordering::Relaxed);
            if let Some(p) = &self.parent {
                p.predicate_evals.fetch_add(n, Ordering::Relaxed);
                p.stat_folds.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Charge one batch passed downstream with its selection carried (not
    /// gathered). Plain add, no fold: the charge is already per batch.
    pub fn record_selection_carried(&self) {
        self.inner.selections_carried.fetch_add(1, Ordering::Relaxed);
        if let Some(p) = &self.parent {
            p.selections_carried.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Charge `n` rows copied by a compaction boundary. Plain add, no fold:
    /// compaction is itself a per-batch event.
    pub fn record_slots_compacted(&self, n: u64) {
        if n > 0 {
            self.inner.slots_compacted.fetch_add(n, Ordering::Relaxed);
            if let Some(p) = &self.parent {
                p.slots_compacted.fetch_add(n, Ordering::Relaxed);
            }
        }
    }

    /// A point-in-time copy of all counters.
    pub fn snapshot(&self) -> ExecSnapshot {
        ExecSnapshot {
            output_records: self.inner.output_records.load(Ordering::Relaxed),
            cache_stores: self.inner.cache_stores.load(Ordering::Relaxed),
            cache_probes: self.inner.cache_probes.load(Ordering::Relaxed),
            predicate_evals: self.inner.predicate_evals.load(Ordering::Relaxed),
            naive_walk_steps: self.inner.naive_walk_steps.load(Ordering::Relaxed),
            stat_folds: self.inner.stat_folds.load(Ordering::Relaxed),
            selections_carried: self.inner.selections_carried.load(Ordering::Relaxed),
            slots_compacted: self.inner.slots_compacted.load(Ordering::Relaxed),
        }
    }

    /// Zero all counters.
    pub fn reset(&self) {
        self.inner.output_records.store(0, Ordering::Relaxed);
        self.inner.cache_stores.store(0, Ordering::Relaxed);
        self.inner.cache_probes.store(0, Ordering::Relaxed);
        self.inner.predicate_evals.store(0, Ordering::Relaxed);
        self.inner.naive_walk_steps.store(0, Ordering::Relaxed);
        self.inner.stat_folds.store(0, Ordering::Relaxed);
        self.inner.selections_carried.store(0, Ordering::Relaxed);
        self.inner.slots_compacted.store(0, Ordering::Relaxed);
    }
}

/// Point-in-time copy of [`ExecStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ExecSnapshot {
    /// Records produced at the plan root.
    pub output_records: u64,
    /// Records inserted into operator caches.
    pub cache_stores: u64,
    /// Associative cache lookups.
    pub cache_probes: u64,
    /// Predicate applications (the K term of §4.1.3).
    pub predicate_evals: u64,
    /// Positions visited by naive walks.
    pub naive_walk_steps: u64,
    /// Folded (per-batch) counter updates performed by the vectorized path.
    pub stat_folds: u64,
    /// Batches passed downstream carrying a selection vector (path-dependent;
    /// excluded from cross-path equality like `bytes_decoded`).
    pub selections_carried: u64,
    /// Rows copied by compaction boundaries (path-dependent).
    pub slots_compacted: u64,
}

impl ExecSnapshot {
    /// Counter-wise difference `self - earlier` (saturating).
    pub fn since(&self, earlier: &ExecSnapshot) -> ExecSnapshot {
        ExecSnapshot {
            output_records: self.output_records.saturating_sub(earlier.output_records),
            cache_stores: self.cache_stores.saturating_sub(earlier.cache_stores),
            cache_probes: self.cache_probes.saturating_sub(earlier.cache_probes),
            predicate_evals: self.predicate_evals.saturating_sub(earlier.predicate_evals),
            naive_walk_steps: self.naive_walk_steps.saturating_sub(earlier.naive_walk_steps),
            stat_folds: self.stat_folds.saturating_sub(earlier.stat_folds),
            selections_carried: self.selections_carried.saturating_sub(earlier.selections_carried),
            slots_compacted: self.slots_compacted.saturating_sub(earlier.slots_compacted),
        }
    }
}

impl fmt::Display for ExecSnapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "out={} cache_stores={} cache_probes={} preds={} naive_steps={} sel_carried={} \
             compacted={}",
            self.output_records,
            self.cache_stores,
            self.cache_probes,
            self.predicate_evals,
            self.naive_walk_steps,
            self.selections_carried,
            self.slots_compacted
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_counters() {
        let a = ExecStats::new();
        let b = a.clone();
        a.record_output();
        b.record_output();
        b.record_naive_walk_step();
        let s = a.snapshot();
        assert_eq!(s.output_records, 2);
        assert_eq!(s.naive_walk_steps, 1);
    }

    #[test]
    fn folded_adds_count_batches_not_records() {
        let s = ExecStats::new();
        s.record_outputs(1024);
        s.record_predicate_evals(512);
        s.record_outputs(0); // empty batches charge nothing
        let snap = s.snapshot();
        assert_eq!(snap.output_records, 1024);
        assert_eq!(snap.predicate_evals, 512);
        assert_eq!(snap.stat_folds, 2);
    }

    #[test]
    fn scoped_stats_tee_into_parent() {
        let global = ExecStats::new();
        let a = ExecStats::scoped(&global);
        let b = ExecStats::scoped(&global);
        a.record_predicate_evals(100);
        a.record_cache_probe();
        b.record_predicate_eval();
        global.record_output();
        let (sa, sb, sg) = (a.snapshot(), b.snapshot(), global.snapshot());
        assert_eq!(sa.predicate_evals, 100);
        assert_eq!(sa.cache_probes, 1);
        assert_eq!(sb.predicate_evals, 1);
        assert_eq!(sg.predicate_evals, 101);
        assert_eq!(sg.cache_probes, 1);
        assert_eq!(sg.output_records, 1);
        assert_eq!(sg.stat_folds, 1); // only the folded add counts a fold
                                      // Resetting a scope leaves the global totals untouched.
        a.reset();
        assert_eq!(a.snapshot(), ExecSnapshot::default());
        assert_eq!(global.snapshot().predicate_evals, 101);
    }

    #[test]
    fn selection_counters_tee_without_folding() {
        let global = ExecStats::new();
        let scope = ExecStats::scoped(&global);
        scope.record_selection_carried();
        scope.record_selection_carried();
        scope.record_slots_compacted(37);
        scope.record_slots_compacted(0); // dense: nothing copied, no charge
        let (s, g) = (scope.snapshot(), global.snapshot());
        assert_eq!(s.selections_carried, 2);
        assert_eq!(s.slots_compacted, 37);
        assert_eq!(g.selections_carried, 2);
        assert_eq!(g.slots_compacted, 37);
        // Per-batch events are plain adds, not folded vector charges.
        assert_eq!(g.stat_folds, 0);
    }

    #[test]
    fn reset_and_diff() {
        let s = ExecStats::new();
        s.record_predicate_eval();
        let before = s.snapshot();
        s.record_predicate_eval();
        s.record_cache_store();
        let d = s.snapshot().since(&before);
        assert_eq!(d.predicate_evals, 1);
        assert_eq!(d.cache_stores, 1);
        s.reset();
        assert_eq!(s.snapshot(), ExecSnapshot::default());
    }
}
