//! Always-on session telemetry: the seq-trace metrics registry.
//!
//! [`crate::profile::QueryProfile`] is opt-in and per-query — it answers
//! "what did this one plan do". This module answers "what has this session
//! been doing", cheaply enough to stay on by default:
//!
//! - a lock-free **metrics registry** ([`SessionMetrics`]): monotonic
//!   counters (queries per execution path, rows, pages, bytes, predicate and
//!   cache traffic) and log-bucketed latency **histograms**
//!   ([`LatencyHistogram`], p50/p90/p99/max) for the query lifecycle phases
//!   parse → optimize → execute plus per-morsel worker latency. Everything
//!   is relaxed atomics; tuple, batch, and parallel paths fold into the same
//!   slots, and per-worker recordings tee into the shared buckets exactly
//!   (bucket adds commute), mirroring how PR 3's pre-order ids fold morsel
//!   cursor trees into one profile;
//! - a bounded **trace ring buffer** ([`TraceBuffer`]): begin/end spans per
//!   lifecycle phase, per query, and (on profiled runs) per operator,
//!   recorded as complete spans and exportable as Chrome `trace_event` JSON
//!   (`chrome://tracing` / Perfetto loadable) via
//!   [`SessionMetrics::trace_to_chrome_json`];
//! - a hand-rolled JSON **snapshot export**
//!   ([`SessionMetrics::to_json`], `metrics_version: 1`) carrying the
//!   counters, histograms, buffer-pool per-stripe hit/miss/contention, and
//!   ring-buffer occupancy, validated by `profile_check` in CI.
//!
//! The cost per query is two `Instant` reads, four counter snapshots, and a
//! dozen relaxed atomic adds — O(1), independent of row count — so the
//! always-on default stays under the <5% overhead budget the headline batch
//! bench records in `BENCH_telemetry.json` (it measures well under 1%).
//! Per-row and per-batch work is never charged here; the registry folds the
//! deltas of the existing shared counters at query end instead of adding
//! new charges to the hot loops.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use seq_core::Result;
use seq_storage::{BufferPool, StatsSnapshot};

use crate::plan::ExecContext;
use crate::profile::{escape_json_into, QueryProfile};
use crate::stats::ExecSnapshot;

/// Histogram bucket count: bucket 0 holds exact zeros, bucket `b >= 1`
/// holds values in `[2^(b-1), 2^b - 1]`, and the last bucket saturates at
/// `u64::MAX` (values up to 2^63 and beyond land there).
pub const HISTOGRAM_BUCKETS: usize = 65;

/// Default trace ring-buffer capacity, in events. At a handful of spans per
/// query this holds hundreds of recent queries; older events are dropped
/// oldest-first and counted.
pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

/// The bucket a value lands in: 0 for 0, else `64 - leading_zeros`.
#[inline]
fn bucket_of(nanos: u64) -> usize {
    if nanos == 0 {
        0
    } else {
        (u64::BITS - nanos.leading_zeros()) as usize
    }
}

/// Inclusive upper bound of bucket `b` (the value a percentile query
/// reports for samples that landed in it).
#[inline]
fn bucket_upper(b: usize) -> u64 {
    match b {
        0 => 0,
        64.. => u64::MAX,
        _ => (1u64 << b) - 1,
    }
}

/// A log-bucketed latency histogram over nanosecond samples.
///
/// Recording is two relaxed adds plus a relaxed max — safe from any number
/// of worker threads concurrently. Bucketing is deterministic per sample,
/// so recording a sample set split across several histograms and merging
/// them ([`LatencyHistogram::merge_from`]) yields bit-identical bucket
/// counts to recording the whole set into one histogram — the same
/// exactness contract the scoped counters give the profiler.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum_nanos: AtomicU64,
    max_nanos: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
        }
    }

    /// Record one duration.
    pub fn record(&self, d: Duration) {
        self.record_nanos(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Record one sample in nanoseconds.
    pub fn record_nanos(&self, nanos: u64) {
        self.buckets[bucket_of(nanos)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(nanos, Ordering::Relaxed);
    }

    /// Fold another histogram's snapshot into this one (per-worker tees
    /// merging into a session slot). Exact: bucket counts add, maxima max.
    pub fn merge_from(&self, other: &HistogramSnapshot) {
        for (slot, &n) in self.buckets.iter().zip(&other.buckets) {
            if n > 0 {
                slot.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count, Ordering::Relaxed);
        self.sum_nanos.fetch_add(other.sum_nanos, Ordering::Relaxed);
        self.max_nanos.fetch_max(other.max_nanos, Ordering::Relaxed);
    }

    /// Point-in-time copy of the buckets and summary counters.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum_nanos: self.sum_nanos.load(Ordering::Relaxed),
            max_nanos: self.max_nanos.load(Ordering::Relaxed),
        }
    }

    /// Zero every bucket and summary counter.
    pub fn reset(&self) {
        for slot in &self.buckets {
            slot.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_nanos.store(0, Ordering::Relaxed);
        self.max_nanos.store(0, Ordering::Relaxed);
    }
}

/// Point-in-time copy of a [`LatencyHistogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`HISTOGRAM_BUCKETS`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples, in nanoseconds.
    pub sum_nanos: u64,
    /// Largest sample, exact (not bucket-rounded).
    pub max_nanos: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot { buckets: [0; HISTOGRAM_BUCKETS], count: 0, sum_nanos: 0, max_nanos: 0 }
    }
}

impl HistogramSnapshot {
    /// The value at or below which `q` percent of samples fall, reported as
    /// the containing bucket's upper bound (clamped to the exact maximum,
    /// which is tracked precisely). `None` when no samples were recorded —
    /// a zero-sample histogram has no percentiles, not a zero percentile.
    pub fn percentile_nanos(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 100.0);
        // Rank of the sample the percentile asks for, 1-based.
        let target = ((q / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut cumulative = 0u64;
        for (b, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= target {
                return Some(bucket_upper(b).min(self.max_nanos));
            }
        }
        Some(self.max_nanos)
    }

    /// Mean sample in nanoseconds; `None` when empty.
    pub fn mean_nanos(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum_nanos as f64 / self.count as f64)
    }

    /// One-line `count/p50/p90/p99/max` rendering in microseconds.
    pub fn summary_line(&self) -> String {
        match self.count {
            0 => "no samples".to_string(),
            _ => {
                let us = |n: Option<u64>| n.unwrap_or(0) as f64 / 1e3;
                format!(
                    "n={} p50={:.1}us p90={:.1}us p99={:.1}us max={:.1}us",
                    self.count,
                    us(self.percentile_nanos(50.0)),
                    us(self.percentile_nanos(90.0)),
                    us(self.percentile_nanos(99.0)),
                    self.max_nanos as f64 / 1e3,
                )
            }
        }
    }
}

/// Query lifecycle phases with a dedicated latency histogram each.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Text → algebra graph (`seq-lang`).
    Parse,
    /// Algebra graph → costed physical plan (`seq-opt`).
    Optimize,
    /// Physical plan → rows (`seq-exec`; recorded automatically by the
    /// execute entry points).
    Execute,
}

impl Phase {
    fn name(self) -> &'static str {
        match self {
            Phase::Parse => "parse",
            Phase::Optimize => "optimize",
            Phase::Execute => "execute",
        }
    }
}

/// Which execute entry point served a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueryPath {
    /// Record-at-a-time cursors ([`crate::execute`]).
    Tuple,
    /// Vectorized batch cursors ([`crate::execute_batched`]), including
    /// mixed-mode assignments and parallel runs that degenerated to one
    /// morsel.
    Batch,
    /// Morsel-driven parallel workers ([`crate::execute_parallel_with`]).
    Parallel,
    /// Probed point evaluation ([`crate::probe_positions`]).
    Probe,
}

impl QueryPath {
    /// Stable label used in trace spans and the metrics export.
    pub fn label(self) -> &'static str {
        match self {
            QueryPath::Tuple => "tuple",
            QueryPath::Batch => "batch",
            QueryPath::Parallel => "parallel",
            QueryPath::Probe => "probe",
        }
    }

    fn index(self) -> usize {
        match self {
            QueryPath::Tuple => 0,
            QueryPath::Batch => 1,
            QueryPath::Parallel => 2,
            QueryPath::Probe => 3,
        }
    }
}

/// One completed span in the trace ring buffer. Start/duration are relative
/// to the owning registry's epoch ([`SessionMetrics::now_nanos`]).
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Span name (phase name, query path, or operator label).
    pub name: String,
    /// Chrome trace category: `"phase"`, `"query"`, or `"operator"`.
    pub cat: &'static str,
    /// Span start, nanoseconds since the registry epoch.
    pub start_nanos: u64,
    /// Span duration in nanoseconds.
    pub dur_nanos: u64,
    /// Thread lane the span renders in (0 = driver).
    pub tid: u64,
    /// Numeric arguments (row counts, node ids).
    pub args: Vec<(&'static str, u64)>,
}

/// Bounded ring buffer of recent [`TraceEvent`]s. Pushes take one short
/// mutex hold; the buffer never grows past its capacity — old events are
/// dropped oldest-first and the drop count is reported in the exports.
#[derive(Debug)]
pub struct TraceBuffer {
    events: Mutex<std::collections::VecDeque<TraceEvent>>,
    capacity: usize,
    recorded: AtomicU64,
    dropped: AtomicU64,
}

impl TraceBuffer {
    /// A ring holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize) -> TraceBuffer {
        TraceBuffer {
            events: Mutex::new(std::collections::VecDeque::new()),
            capacity: capacity.max(1),
            recorded: AtomicU64::new(0),
            dropped: AtomicU64::new(0),
        }
    }

    /// Append a completed span, evicting the oldest if the ring is full.
    pub fn push(&self, event: TraceEvent) {
        self.recorded.fetch_add(1, Ordering::Relaxed);
        let mut events = self.events.lock().expect("trace buffer poisoned");
        if events.len() >= self.capacity {
            events.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        events.push_back(event);
    }

    /// Copy out the retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.events.lock().expect("trace buffer poisoned").iter().cloned().collect()
    }

    /// Total spans ever pushed (including since-dropped ones).
    pub fn recorded(&self) -> u64 {
        self.recorded.load(Ordering::Relaxed)
    }

    /// Spans evicted to respect the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Maximum retained spans.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn clear(&self) {
        self.events.lock().expect("trace buffer poisoned").clear();
        self.recorded.store(0, Ordering::Relaxed);
        self.dropped.store(0, Ordering::Relaxed);
    }
}

/// The always-on session metrics registry.
///
/// Every [`ExecContext`] carries one (fresh by default; a shell or server
/// shares one across queries via [`ExecContext::share_telemetry`]). All
/// counters are monotonic within a measurement window; [`SessionMetrics::reset`]
/// starts a new window and stamps a marker so exports can never silently mix
/// windows.
#[derive(Debug)]
pub struct SessionMetrics {
    epoch: Instant,
    queries: AtomicU64,
    queries_failed: AtomicU64,
    path_counts: [AtomicU64; 4],
    rows_out: AtomicU64,
    page_reads: AtomicU64,
    page_hits: AtomicU64,
    pages_skipped: AtomicU64,
    probes: AtomicU64,
    stream_records: AtomicU64,
    bytes_decoded: AtomicU64,
    columns_pruned: AtomicU64,
    predicate_evals: AtomicU64,
    selections_carried: AtomicU64,
    slots_compacted: AtomicU64,
    cache_probes: AtomicU64,
    cache_stores: AtomicU64,
    morsels: AtomicU64,
    plan_cache_hits: AtomicU64,
    plan_cache_misses: AtomicU64,
    plan_cache_invalidations: AtomicU64,
    /// Measurement-window marker: how many times the registry was reset…
    resets: AtomicU64,
    /// …and when the current window started (unix milliseconds).
    window_started_unix_ms: AtomicU64,
    parse_latency: LatencyHistogram,
    optimize_latency: LatencyHistogram,
    execute_latency: LatencyHistogram,
    morsel_latency: LatencyHistogram,
    trace: TraceBuffer,
}

impl Default for SessionMetrics {
    fn default() -> Self {
        SessionMetrics::new()
    }
}

fn unix_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis().min(u64::MAX as u128) as u64)
        .unwrap_or(0)
}

impl SessionMetrics {
    /// A fresh registry with the default trace capacity.
    pub fn new() -> SessionMetrics {
        SessionMetrics::with_trace_capacity(DEFAULT_TRACE_CAPACITY)
    }

    /// A fresh registry retaining at most `trace_capacity` trace spans.
    pub fn with_trace_capacity(trace_capacity: usize) -> SessionMetrics {
        SessionMetrics {
            epoch: Instant::now(),
            queries: AtomicU64::new(0),
            queries_failed: AtomicU64::new(0),
            path_counts: std::array::from_fn(|_| AtomicU64::new(0)),
            rows_out: AtomicU64::new(0),
            page_reads: AtomicU64::new(0),
            page_hits: AtomicU64::new(0),
            pages_skipped: AtomicU64::new(0),
            probes: AtomicU64::new(0),
            stream_records: AtomicU64::new(0),
            bytes_decoded: AtomicU64::new(0),
            columns_pruned: AtomicU64::new(0),
            predicate_evals: AtomicU64::new(0),
            selections_carried: AtomicU64::new(0),
            slots_compacted: AtomicU64::new(0),
            cache_probes: AtomicU64::new(0),
            cache_stores: AtomicU64::new(0),
            morsels: AtomicU64::new(0),
            plan_cache_hits: AtomicU64::new(0),
            plan_cache_misses: AtomicU64::new(0),
            plan_cache_invalidations: AtomicU64::new(0),
            resets: AtomicU64::new(0),
            window_started_unix_ms: AtomicU64::new(unix_ms()),
            parse_latency: LatencyHistogram::new(),
            optimize_latency: LatencyHistogram::new(),
            execute_latency: LatencyHistogram::new(),
            morsel_latency: LatencyHistogram::new(),
            trace: TraceBuffer::new(trace_capacity),
        }
    }

    /// Nanoseconds since this registry's epoch — the timestamp base every
    /// trace span uses.
    pub fn now_nanos(&self) -> u64 {
        self.epoch.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// Record a parse or optimize phase: its latency histogram sample plus a
    /// `"phase"` trace span. (The execute phase is recorded by the execute
    /// entry points themselves.)
    pub fn record_phase(&self, phase: Phase, start_nanos: u64, dur: Duration) {
        self.phase_histogram(phase).record(dur);
        self.record_span(phase.name().to_string(), "phase", start_nanos, dur, 0, Vec::new());
    }

    /// The latency histogram backing `phase`.
    pub fn phase_histogram(&self, phase: Phase) -> &LatencyHistogram {
        match phase {
            Phase::Parse => &self.parse_latency,
            Phase::Optimize => &self.optimize_latency,
            Phase::Execute => &self.execute_latency,
        }
    }

    /// Per-morsel worker latency histogram (parallel path).
    pub fn morsel_histogram(&self) -> &LatencyHistogram {
        &self.morsel_latency
    }

    /// The trace ring buffer.
    pub fn trace(&self) -> &TraceBuffer {
        &self.trace
    }

    /// Push a completed span into the trace ring buffer.
    pub fn record_span(
        &self,
        name: String,
        cat: &'static str,
        start_nanos: u64,
        dur: Duration,
        tid: u64,
        args: Vec<(&'static str, u64)>,
    ) {
        self.trace.push(TraceEvent {
            name,
            cat,
            start_nanos,
            dur_nanos: dur.as_nanos().min(u64::MAX as u128) as u64,
            tid,
            args,
        });
    }

    /// Fold one successful query into the registry: the execute-phase
    /// latency, the per-path query count, and the deltas of the shared
    /// executor/storage counters accumulated while it ran. Called once per
    /// query by the execute entry points; the deltas make the fold exact on
    /// every path (workers already share the underlying atomics).
    pub fn record_query(
        &self,
        path: QueryPath,
        start_nanos: u64,
        dur: Duration,
        rows: u64,
        exec: &ExecSnapshot,
        storage: &StatsSnapshot,
    ) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.path_counts[path.index()].fetch_add(1, Ordering::Relaxed);
        self.rows_out.fetch_add(rows, Ordering::Relaxed);
        self.page_reads.fetch_add(storage.page_reads, Ordering::Relaxed);
        self.page_hits.fetch_add(storage.page_hits, Ordering::Relaxed);
        self.pages_skipped.fetch_add(storage.pages_skipped, Ordering::Relaxed);
        self.probes.fetch_add(storage.probes, Ordering::Relaxed);
        self.stream_records.fetch_add(storage.stream_records, Ordering::Relaxed);
        self.bytes_decoded.fetch_add(storage.bytes_decoded, Ordering::Relaxed);
        self.columns_pruned.fetch_add(storage.columns_pruned, Ordering::Relaxed);
        self.predicate_evals.fetch_add(exec.predicate_evals, Ordering::Relaxed);
        self.selections_carried.fetch_add(exec.selections_carried, Ordering::Relaxed);
        self.slots_compacted.fetch_add(exec.slots_compacted, Ordering::Relaxed);
        self.cache_probes.fetch_add(exec.cache_probes, Ordering::Relaxed);
        self.cache_stores.fetch_add(exec.cache_stores, Ordering::Relaxed);
        self.execute_latency.record(dur);
        self.record_span(
            path.label().to_string(),
            "query",
            start_nanos,
            dur,
            0,
            vec![("rows", rows)],
        );
    }

    /// Count a failed query: latency still lands in the execute histogram
    /// (failures are part of the latency distribution a server reports), but
    /// no counters fold and the failure is tallied separately.
    pub fn record_query_error(&self, path: QueryPath, start_nanos: u64, dur: Duration) {
        self.queries.fetch_add(1, Ordering::Relaxed);
        self.queries_failed.fetch_add(1, Ordering::Relaxed);
        self.path_counts[path.index()].fetch_add(1, Ordering::Relaxed);
        self.execute_latency.record(dur);
        self.record_span(
            path.label().to_string(),
            "query",
            start_nanos,
            dur,
            0,
            vec![("failed", 1)],
        );
    }

    /// Tally one normalized-plan-cache lookup: a hit skipped parse+optimize
    /// for the query, a miss paid the full pipeline. Recorded by servers
    /// (`seq-serve`) that front the optimizer with a template cache.
    pub fn record_plan_cache_lookup(&self, hit: bool) {
        if hit {
            self.plan_cache_hits.fetch_add(1, Ordering::Relaxed);
        } else {
            self.plan_cache_misses.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Tally plan-cache entries dropped because their catalog epoch or
    /// statistics revision went stale.
    pub fn record_plan_cache_invalidations(&self, n: u64) {
        if n > 0 {
            self.plan_cache_invalidations.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Record one morsel's worker-side latency (parallel path). Workers call
    /// this concurrently; the histogram buckets are shared atomics, so the
    /// per-worker recordings fold into the session slot exactly.
    pub fn record_morsel(&self, dur: Duration) {
        self.morsels.fetch_add(1, Ordering::Relaxed);
        self.morsel_latency.record(dur);
    }

    /// After a profiled run, emit one `"operator"` span per plan operator
    /// (pre-order, the profiler's node ids). Operator busy times are
    /// inclusive of children, so the spans nest into a flame when rendered.
    pub fn record_operator_spans(&self, profile: &QueryProfile, query_start_nanos: u64) {
        for (id, op) in profile.op_reports().iter().enumerate() {
            self.record_span(
                op.label.clone(),
                "operator",
                query_start_nanos,
                op.busy,
                0,
                vec![("node", id as u64), ("rows", op.rows_out)],
            );
        }
    }

    /// Point-in-time copy of every counter and histogram.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            queries: self.queries.load(Ordering::Relaxed),
            queries_failed: self.queries_failed.load(Ordering::Relaxed),
            path_counts: std::array::from_fn(|i| self.path_counts[i].load(Ordering::Relaxed)),
            rows_out: self.rows_out.load(Ordering::Relaxed),
            page_reads: self.page_reads.load(Ordering::Relaxed),
            page_hits: self.page_hits.load(Ordering::Relaxed),
            pages_skipped: self.pages_skipped.load(Ordering::Relaxed),
            probes: self.probes.load(Ordering::Relaxed),
            stream_records: self.stream_records.load(Ordering::Relaxed),
            bytes_decoded: self.bytes_decoded.load(Ordering::Relaxed),
            columns_pruned: self.columns_pruned.load(Ordering::Relaxed),
            predicate_evals: self.predicate_evals.load(Ordering::Relaxed),
            selections_carried: self.selections_carried.load(Ordering::Relaxed),
            slots_compacted: self.slots_compacted.load(Ordering::Relaxed),
            cache_probes: self.cache_probes.load(Ordering::Relaxed),
            cache_stores: self.cache_stores.load(Ordering::Relaxed),
            morsels: self.morsels.load(Ordering::Relaxed),
            plan_cache_hits: self.plan_cache_hits.load(Ordering::Relaxed),
            plan_cache_misses: self.plan_cache_misses.load(Ordering::Relaxed),
            plan_cache_invalidations: self.plan_cache_invalidations.load(Ordering::Relaxed),
            resets: self.resets.load(Ordering::Relaxed),
            window_started_unix_ms: self.window_started_unix_ms.load(Ordering::Relaxed),
            parse: self.parse_latency.snapshot(),
            optimize: self.optimize_latency.snapshot(),
            execute: self.execute_latency.snapshot(),
            morsel: self.morsel_latency.snapshot(),
            trace_recorded: self.trace.recorded(),
            trace_dropped: self.trace.dropped(),
            trace_capacity: self.trace.capacity(),
        }
    }

    /// Start a new measurement window: zero every counter and histogram,
    /// clear the trace ring, bump the reset marker, and stamp the window
    /// start time. Callers resetting legacy counters (`\stats reset`) must
    /// reset through here too, so both views share one window.
    pub fn reset(&self) {
        self.queries.store(0, Ordering::Relaxed);
        self.queries_failed.store(0, Ordering::Relaxed);
        for slot in &self.path_counts {
            slot.store(0, Ordering::Relaxed);
        }
        self.rows_out.store(0, Ordering::Relaxed);
        self.page_reads.store(0, Ordering::Relaxed);
        self.page_hits.store(0, Ordering::Relaxed);
        self.pages_skipped.store(0, Ordering::Relaxed);
        self.probes.store(0, Ordering::Relaxed);
        self.stream_records.store(0, Ordering::Relaxed);
        self.bytes_decoded.store(0, Ordering::Relaxed);
        self.columns_pruned.store(0, Ordering::Relaxed);
        self.predicate_evals.store(0, Ordering::Relaxed);
        self.selections_carried.store(0, Ordering::Relaxed);
        self.slots_compacted.store(0, Ordering::Relaxed);
        self.cache_probes.store(0, Ordering::Relaxed);
        self.cache_stores.store(0, Ordering::Relaxed);
        self.morsels.store(0, Ordering::Relaxed);
        self.plan_cache_hits.store(0, Ordering::Relaxed);
        self.plan_cache_misses.store(0, Ordering::Relaxed);
        self.plan_cache_invalidations.store(0, Ordering::Relaxed);
        self.parse_latency.reset();
        self.optimize_latency.reset();
        self.execute_latency.reset();
        self.morsel_latency.reset();
        self.trace.clear();
        self.resets.fetch_add(1, Ordering::Relaxed);
        self.window_started_unix_ms.store(unix_ms(), Ordering::Relaxed);
    }

    /// Chrome `trace_event` JSON of the retained spans: an object with a
    /// `traceEvents` array of complete (`"ph": "X"`) events, timestamps in
    /// microseconds since the registry epoch — loadable in `chrome://tracing`
    /// and Perfetto.
    pub fn trace_to_chrome_json(&self) -> String {
        use std::fmt::Write;
        let events = self.trace.events();
        let mut out = String::new();
        out.push_str("{\n  \"displayTimeUnit\": \"ms\",\n  \"otherData\": {");
        let _ = write!(
            out,
            "\"recorded\": {}, \"dropped\": {}, \"capacity\": {}",
            self.trace.recorded(),
            self.trace.dropped(),
            self.trace.capacity()
        );
        out.push_str("},\n  \"traceEvents\": [");
        for (i, ev) in events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"name\": \"");
            escape_json_into(&ev.name, &mut out);
            let _ = write!(
                out,
                "\", \"cat\": \"{}\", \"ph\": \"X\", \"ts\": {:.3}, \"dur\": {:.3}, \
                 \"pid\": 1, \"tid\": {}, \"args\": {{",
                ev.cat,
                ev.start_nanos as f64 / 1e3,
                ev.dur_nanos as f64 / 1e3,
                ev.tid
            );
            for (j, (k, v)) in ev.args.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "\"{k}\": {v}");
            }
            out.push_str("}}");
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Machine-readable registry snapshot (`metrics_version: 1`): window
    /// marker, counters, per-path query counts, the four histograms with
    /// percentiles and non-empty buckets, buffer-pool per-stripe counters
    /// when a pool is attached, and the trace ring occupancy. Hand-rolled,
    /// no serde; `profile_check` validates the schema in CI.
    pub fn to_json(&self, buffer: Option<&BufferPool>) -> String {
        use std::fmt::Write;
        let snap = self.snapshot();
        let mut out = String::new();
        out.push_str("{\n  \"metrics_version\": 1,\n");
        let _ = writeln!(
            out,
            "  \"window\": {{\"resets\": {}, \"started_unix_ms\": {}}},",
            snap.resets, snap.window_started_unix_ms
        );
        out.push_str("  \"counters\": {");
        for (i, (key, value)) in [
            ("queries", snap.queries),
            ("queries_failed", snap.queries_failed),
            ("rows_out", snap.rows_out),
            ("page_reads", snap.page_reads),
            ("page_hits", snap.page_hits),
            ("pages_skipped", snap.pages_skipped),
            ("probes", snap.probes),
            ("stream_records", snap.stream_records),
            ("bytes_decoded", snap.bytes_decoded),
            ("columns_pruned", snap.columns_pruned),
            ("predicate_evals", snap.predicate_evals),
            ("selections_carried", snap.selections_carried),
            ("slots_compacted", snap.slots_compacted),
            ("cache_probes", snap.cache_probes),
            ("cache_stores", snap.cache_stores),
            ("morsels", snap.morsels),
            ("plan_cache_hits", snap.plan_cache_hits),
            ("plan_cache_misses", snap.plan_cache_misses),
            ("plan_cache_invalidations", snap.plan_cache_invalidations),
        ]
        .iter()
        .enumerate()
        {
            let _ = write!(out, "{}\n    \"{key}\": {value}", if i > 0 { "," } else { "" });
        }
        out.push_str("\n  },\n  \"paths\": {");
        for (i, path) in [QueryPath::Tuple, QueryPath::Batch, QueryPath::Parallel, QueryPath::Probe]
            .into_iter()
            .enumerate()
        {
            let _ = write!(
                out,
                "{}\"{}\": {}",
                if i > 0 { ", " } else { "" },
                path.label(),
                snap.path_counts[path.index()]
            );
        }
        out.push_str("},\n  \"histograms\": [");
        for (i, (name, h)) in [
            ("parse", &snap.parse),
            ("optimize", &snap.optimize),
            ("execute", &snap.execute),
            ("morsel", &snap.morsel),
        ]
        .iter()
        .enumerate()
        {
            if i > 0 {
                out.push(',');
            }
            let pct = |q: f64| match h.percentile_nanos(q) {
                Some(n) => format!("{:.3}", n as f64 / 1e3),
                None => "null".to_string(),
            };
            let _ = write!(
                out,
                "\n    {{\"name\": \"{name}\", \"count\": {}, \"p50_us\": {}, \"p90_us\": {}, \
                 \"p99_us\": {}, \"max_us\": {}, \"mean_us\": {}, \"buckets\": [",
                h.count,
                pct(50.0),
                pct(90.0),
                pct(99.0),
                match h.count {
                    0 => "null".to_string(),
                    _ => format!("{:.3}", h.max_nanos as f64 / 1e3),
                },
                match h.mean_nanos() {
                    Some(m) => format!("{:.3}", m / 1e3),
                    None => "null".to_string(),
                },
            );
            let mut first = true;
            for (b, &n) in h.buckets.iter().enumerate() {
                if n > 0 {
                    if !first {
                        out.push_str(", ");
                    }
                    first = false;
                    let _ = write!(out, "[{}, {n}]", bucket_upper(b));
                }
            }
            out.push_str("]}");
        }
        out.push_str("\n  ],\n  \"buffer_pool\": ");
        match buffer {
            None => out.push_str("null"),
            Some(pool) => {
                let _ = write!(out, "{{\"capacity_pages\": {}, \"stripes\": [", pool.capacity());
                for (i, s) in pool.stripe_stats().iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(
                        out,
                        "\n    {{\"hits\": {}, \"misses\": {}, \"contended\": {}}}",
                        s.hits, s.misses, s.contended
                    );
                }
                out.push_str("\n  ]}");
            }
        }
        let _ = write!(
            out,
            ",\n  \"trace\": {{\"recorded\": {}, \"dropped\": {}, \"capacity\": {}}}\n}}\n",
            snap.trace_recorded, snap.trace_dropped, snap.trace_capacity
        );
        out
    }
}

/// Point-in-time copy of a [`SessionMetrics`] registry.
#[derive(Debug, Clone)]
pub struct MetricsSnapshot {
    /// Queries executed (successes and failures).
    pub queries: u64,
    /// Queries that returned an error.
    pub queries_failed: u64,
    /// Per-path query counts, indexed like [`QueryPath::index`]
    /// (tuple, batch, parallel, probe).
    pub path_counts: [u64; 4],
    /// Rows produced at plan roots.
    pub rows_out: u64,
    /// Storage counter folds (deltas summed per query).
    pub page_reads: u64,
    /// Pages served from the buffer pool.
    pub page_hits: u64,
    /// Pages skipped by zone maps.
    pub pages_skipped: u64,
    /// Point probes issued.
    pub probes: u64,
    /// Records streamed out of scans.
    pub stream_records: u64,
    /// Bytes decoded from encoded columns.
    pub bytes_decoded: u64,
    /// Column slots left un-decoded by scan-level pruning.
    pub columns_pruned: u64,
    /// Predicate applications (the paper's K term).
    pub predicate_evals: u64,
    /// Batches handed downstream with a selection vector still attached.
    pub selections_carried: u64,
    /// Rows copied when a selection was densified at a batch boundary.
    pub slots_compacted: u64,
    /// Operator-cache lookups.
    pub cache_probes: u64,
    /// Operator-cache insertions.
    pub cache_stores: u64,
    /// Morsels run by parallel workers.
    pub morsels: u64,
    /// Normalized-plan-cache hits (parse+optimize skipped).
    pub plan_cache_hits: u64,
    /// Normalized-plan-cache misses (full pipeline paid).
    pub plan_cache_misses: u64,
    /// Plan-cache entries dropped for a stale epoch or statistics revision.
    pub plan_cache_invalidations: u64,
    /// Measurement-window resets so far.
    pub resets: u64,
    /// Unix milliseconds at which the current window started.
    pub window_started_unix_ms: u64,
    /// Parse-phase latency.
    pub parse: HistogramSnapshot,
    /// Optimize-phase latency.
    pub optimize: HistogramSnapshot,
    /// Execute-phase latency (per query, all paths).
    pub execute: HistogramSnapshot,
    /// Per-morsel worker latency (parallel path).
    pub morsel: HistogramSnapshot,
    /// Trace spans pushed in this window.
    pub trace_recorded: u64,
    /// Trace spans evicted by the ring bound.
    pub trace_dropped: u64,
    /// Trace ring capacity.
    pub trace_capacity: usize,
}

/// Wrap one execute entry point: time it, and on completion fold the query
/// into the context's registry (no-op when telemetry is detached). Exactly
/// one `record_query` per top-level query — the parallel driver's
/// degenerate delegation to the batch path routes through the batch entry
/// *instead of* this wrapper, never both.
pub(crate) fn instrument<T>(
    ctx: &ExecContext<'_>,
    path: QueryPath,
    rows_of: impl Fn(&T) -> u64,
    f: impl FnOnce() -> Result<T>,
) -> Result<T> {
    let Some(metrics) = &ctx.telemetry else { return f() };
    let exec_before = ctx.stats.snapshot();
    let storage_before = ctx.catalog.stats().snapshot();
    let start_nanos = metrics.now_nanos();
    let started = Instant::now();
    let out = f();
    let dur = started.elapsed();
    match &out {
        Ok(value) => {
            let exec_delta = ctx.stats.snapshot().since(&exec_before);
            let storage_delta = ctx.catalog.stats().snapshot().since(&storage_before);
            metrics.record_query(
                path,
                start_nanos,
                dur,
                rows_of(value),
                &exec_delta,
                &storage_delta,
            );
            if let Some(profile) = &ctx.profile {
                metrics.record_operator_spans(profile, start_nanos);
            }
        }
        Err(_) => metrics.record_query_error(path, start_nanos, dur),
    }
    out
}

/// Convenience for shells and servers: share one registry across contexts.
pub fn shared_registry() -> Arc<SessionMetrics> {
    Arc::new(SessionMetrics::new())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_sample_percentiles_are_none() {
        let h = LatencyHistogram::new();
        let s = h.snapshot();
        assert_eq!(s.count, 0);
        assert_eq!(s.percentile_nanos(50.0), None);
        assert_eq!(s.percentile_nanos(99.0), None);
        assert_eq!(s.mean_nanos(), None);
        assert_eq!(s.summary_line(), "no samples");
    }

    #[test]
    fn bucket_boundaries_are_exact_powers_of_two() {
        // Bucket b covers [2^(b-1), 2^b - 1]: the upper edge of one bucket
        // and the lower edge of the next must land one bucket apart.
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        for b in 1..=63usize {
            let lower = 1u64 << (b - 1);
            assert_eq!(bucket_of(lower), b, "lower edge of bucket {b}");
            assert_eq!(bucket_of(lower - 1), b - 1, "upper edge of bucket {}", b - 1);
            assert_eq!(bucket_upper(b), (1u64 << b) - 1);
        }
        let h = LatencyHistogram::new();
        h.record_nanos(1023); // bucket 10, upper 1023
        h.record_nanos(1024); // bucket 11, upper 2047
        let s = h.snapshot();
        assert_eq!(s.buckets[10], 1);
        assert_eq!(s.buckets[11], 1);
        assert_eq!(s.percentile_nanos(50.0), Some(1023));
        // p100 hits the top bucket but is clamped to the exact max.
        assert_eq!(s.percentile_nanos(100.0), Some(1024));
    }

    #[test]
    fn max_bucket_saturates_without_overflow() {
        let h = LatencyHistogram::new();
        h.record_nanos(u64::MAX);
        h.record_nanos(1u64 << 63);
        let s = h.snapshot();
        assert_eq!(bucket_of(u64::MAX), 64);
        assert_eq!(bucket_of(1u64 << 63), 64);
        assert_eq!(s.buckets[HISTOGRAM_BUCKETS - 1], 2);
        assert_eq!(s.max_nanos, u64::MAX);
        assert_eq!(s.percentile_nanos(99.0), Some(u64::MAX));
    }

    #[test]
    fn per_worker_merge_equals_single_histogram() {
        // The satellite contract: a sample set split across per-worker
        // histograms, merged, is bit-identical to one histogram fed the
        // whole set. LCG samples spread across many buckets.
        let mut seed = 0x5eed_u64;
        let mut lcg = move || {
            seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (seed >> 20) % 10_000_000
        };
        let samples: Vec<u64> = (0..10_000).map(|_| lcg()).collect();

        let single = LatencyHistogram::new();
        for &s in &samples {
            single.record_nanos(s);
        }

        const WORKERS: usize = 4;
        let workers: Vec<LatencyHistogram> =
            (0..WORKERS).map(|_| LatencyHistogram::new()).collect();
        std::thread::scope(|scope| {
            for (w, h) in workers.iter().enumerate() {
                let samples = &samples;
                scope.spawn(move || {
                    for s in samples.iter().skip(w).step_by(WORKERS) {
                        h.record_nanos(*s);
                    }
                });
            }
        });
        let merged = LatencyHistogram::new();
        for h in &workers {
            merged.merge_from(&h.snapshot());
        }
        assert_eq!(merged.snapshot(), single.snapshot());
        // And the concurrent-recording form: all workers share one
        // histogram's atomics directly.
        let shared = LatencyHistogram::new();
        std::thread::scope(|scope| {
            for w in 0..WORKERS {
                let (shared, samples) = (&shared, &samples);
                scope.spawn(move || {
                    for s in samples.iter().skip(w).step_by(WORKERS) {
                        shared.record_nanos(*s);
                    }
                });
            }
        });
        assert_eq!(shared.snapshot(), single.snapshot());
    }

    #[test]
    fn percentiles_are_monotone_and_clamped() {
        let h = LatencyHistogram::new();
        for n in [5u64, 17, 130, 999, 4096, 70_000] {
            h.record_nanos(n);
        }
        let s = h.snapshot();
        let p50 = s.percentile_nanos(50.0).unwrap();
        let p90 = s.percentile_nanos(90.0).unwrap();
        let p99 = s.percentile_nanos(99.0).unwrap();
        assert!(p50 <= p90 && p90 <= p99 && p99 <= s.max_nanos);
        assert_eq!(s.max_nanos, 70_000);
    }

    #[test]
    fn trace_ring_bounds_and_counts_drops() {
        let ring = TraceBuffer::new(3);
        for i in 0..5u64 {
            ring.push(TraceEvent {
                name: format!("span{i}"),
                cat: "phase",
                start_nanos: i,
                dur_nanos: 1,
                tid: 0,
                args: Vec::new(),
            });
        }
        assert_eq!(ring.recorded(), 5);
        assert_eq!(ring.dropped(), 2);
        let kept = ring.events();
        assert_eq!(kept.len(), 3);
        assert_eq!(kept[0].name, "span2"); // oldest-first eviction
        assert_eq!(kept[2].name, "span4");
    }

    #[test]
    fn chrome_export_is_balanced_and_complete() {
        let m = SessionMetrics::new();
        let t0 = m.now_nanos();
        m.record_phase(Phase::Parse, t0, Duration::from_micros(120));
        m.record_query(
            QueryPath::Batch,
            t0 + 1_000,
            Duration::from_micros(400),
            42,
            &ExecSnapshot::default(),
            &StatsSnapshot::default(),
        );
        let json = m.trace_to_chrome_json();
        assert!(json.contains("\"traceEvents\": ["));
        assert!(json.contains("\"ph\": \"X\""));
        assert!(json.contains("\"name\": \"parse\""));
        assert!(json.contains("\"name\": \"batch\""));
        assert!(json.contains("\"rows\": 42"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn metrics_json_is_balanced_and_reset_stamps_marker() {
        let m = SessionMetrics::new();
        m.record_query(
            QueryPath::Tuple,
            0,
            Duration::from_micros(10),
            7,
            &ExecSnapshot { predicate_evals: 3, ..Default::default() },
            &StatsSnapshot { page_reads: 2, ..Default::default() },
        );
        let snap = m.snapshot();
        assert_eq!(snap.queries, 1);
        assert_eq!(snap.rows_out, 7);
        assert_eq!(snap.predicate_evals, 3);
        assert_eq!(snap.page_reads, 2);
        assert_eq!(snap.path_counts, [1, 0, 0, 0]);
        let json = m.to_json(None);
        assert!(json.contains("\"metrics_version\": 1"));
        assert!(json.contains("\"buffer_pool\": null"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());

        m.reset();
        let snap = m.snapshot();
        assert_eq!(snap.queries, 0);
        assert_eq!(snap.execute.count, 0);
        assert_eq!(snap.trace_recorded, 0);
        assert_eq!(snap.resets, 1, "reset must stamp the window marker");
    }

    #[test]
    fn failed_queries_tally_without_folding_counters() {
        let m = SessionMetrics::new();
        m.record_query_error(QueryPath::Tuple, 0, Duration::from_micros(5));
        let snap = m.snapshot();
        assert_eq!(snap.queries, 1);
        assert_eq!(snap.queries_failed, 1);
        assert_eq!(snap.rows_out, 0);
        assert_eq!(snap.execute.count, 1, "failures stay in the latency distribution");
    }
}
