//! Access-mode interfaces (§3.3) and the simple (unit-scope) cursors.
//!
//! Every physical operator can be opened in one of the two access modes the
//! paper distinguishes:
//!
//! - **stream** ([`Cursor`]): "get the next non-Null record", in positional
//!   order, optionally skipping forward ([`Cursor::next_from`]) — the skip is
//!   what lets a lock-step positional join avoid materializing the dense
//!   output of value offsets and aggregates;
//! - **probed** ([`PointAccess`]): "get the record at a specific position".

use seq_core::{Record, Result, Span, NEG_INF, POS_INF};
use seq_ops::Expr;

use crate::stats::ExecStats;

/// Canonicalize a (possibly empty) output span for a position-driven cursor:
/// the span to store plus the initial output position. The empty span maps
/// to its canonical `[1, 0]` form, so `cur > span.end()` holds before any
/// input is pulled — an empty-span cursor must yield nothing without ever
/// touching its input.
pub(crate) fn span_cursor_start(span: Span) -> (Span, i64) {
    if span.is_empty() {
        (Span::empty(), 1)
    } else {
        (span, span.start())
    }
}

/// `p - offset` when the result is a representable position: a finite `i64`
/// that is not an infinity sentinel. `None` means the shifted position falls
/// outside the representable range, so the input record at `p` has no output
/// position.
pub(crate) fn unshift_position(p: i64, offset: i64) -> Option<i64> {
    match p.checked_sub(offset) {
        Some(out) if out != NEG_INF && out != POS_INF => Some(out),
        _ => None,
    }
}

/// Stream access to a (base or derived) sequence.
pub trait Cursor {
    /// The next non-Null `(position, record)` in increasing positional order.
    fn next(&mut self) -> Result<Option<(i64, Record)>>;

    /// The next non-Null record at a position `>= lower`. Implementations
    /// override this to skip without doing per-position work; the default
    /// simply discards smaller positions.
    fn next_from(&mut self, lower: i64) -> Result<Option<(i64, Record)>> {
        loop {
            match self.next()? {
                Some((p, r)) if p >= lower => return Ok(Some((p, r))),
                Some(_) => continue,
                None => return Ok(None),
            }
        }
    }
}

/// Probed access to a (base or derived) sequence.
pub trait PointAccess {
    /// The record at `pos`, or `None` for an empty position.
    fn get(&mut self, pos: i64) -> Result<Option<Record>>;
}

/// Stream over a stored base sequence (wraps the storage layer's owning
/// scan, which charges page/record counters itself).
pub struct BaseStreamCursor {
    scan: seq_storage::OwnedScan,
}

impl BaseStreamCursor {
    /// A stream over `store` restricted to `span`.
    pub fn new(store: &std::sync::Arc<seq_storage::StoredSequence>, span: Span) -> Self {
        BaseStreamCursor { scan: store.scan_owned(span) }
    }
}

impl Cursor for BaseStreamCursor {
    fn next(&mut self) -> Result<Option<(i64, Record)>> {
        Ok(self.scan.next_record())
    }

    fn next_from(&mut self, lower: i64) -> Result<Option<(i64, Record)>> {
        self.scan.skip_to(lower);
        Ok(self.scan.next_record())
    }
}

/// Stream over a stored base sequence with a selection fused into the scan:
/// the storage layer skips pages whose zone map refutes the pushed
/// conjunction (charged to `pages_skipped`, never read), and the full
/// predicate is re-applied here to every record of a surviving page — the
/// residual filter. Produces exactly what `Select(BaseScan)` produces.
pub struct FusedBaseStreamCursor {
    scan: seq_storage::OwnedScan,
    predicate: Expr,
    stats: ExecStats,
}

impl FusedBaseStreamCursor {
    /// A filtered stream over `store` restricted to `span`. `filter` must be
    /// implied by `predicate` (it is the pushdown-eligible conjunction the
    /// optimizer extracted from it).
    pub fn new(
        store: &std::sync::Arc<seq_storage::StoredSequence>,
        span: Span,
        filter: seq_storage::ScanFilter,
        predicate: Expr,
        stats: ExecStats,
    ) -> Self {
        FusedBaseStreamCursor {
            scan: store.scan_owned_filtered(span, Some(filter)),
            predicate,
            stats,
        }
    }
}

impl Cursor for FusedBaseStreamCursor {
    fn next(&mut self) -> Result<Option<(i64, Record)>> {
        while let Some((p, r)) = self.scan.next_record() {
            self.stats.record_predicate_eval();
            if self.predicate.eval_predicate(&r)? {
                return Ok(Some((p, r)));
            }
        }
        Ok(None)
    }

    fn next_from(&mut self, lower: i64) -> Result<Option<(i64, Record)>> {
        self.scan.skip_to(lower);
        self.next()
    }
}

/// Probed access to a stored base sequence.
pub struct BaseProbe {
    store: std::sync::Arc<seq_storage::StoredSequence>,
    span: Span,
}

impl BaseProbe {
    /// Probed access to `store` restricted to `span`.
    pub fn new(store: std::sync::Arc<seq_storage::StoredSequence>, span: Span) -> Self {
        BaseProbe { store, span }
    }
}

impl PointAccess for BaseProbe {
    fn get(&mut self, pos: i64) -> Result<Option<Record>> {
        if !self.span.contains(pos) {
            return Ok(None);
        }
        Ok(seq_core::Sequence::get(self.store.as_ref(), pos))
    }
}

/// A constant sequence streamed over a bounded span.
pub struct ConstCursor {
    record: Record,
    next_pos: i64,
    end: i64,
    done: bool,
}

impl ConstCursor {
    /// Enumerate `record` at every position of the (bounded) span.
    pub fn new(record: Record, span: Span) -> Result<ConstCursor> {
        if !span.is_empty() && !span.is_bounded() {
            return Err(seq_core::SeqError::Unsupported(
                "cannot stream a constant sequence over an unbounded span".into(),
            ));
        }
        Ok(ConstCursor { record, next_pos: span.start(), end: span.end(), done: span.is_empty() })
    }
}

impl Cursor for ConstCursor {
    fn next(&mut self) -> Result<Option<(i64, Record)>> {
        if self.done || self.next_pos > self.end {
            self.done = true;
            return Ok(None);
        }
        let p = self.next_pos;
        self.next_pos += 1;
        Ok(Some((p, self.record.clone())))
    }

    fn next_from(&mut self, lower: i64) -> Result<Option<(i64, Record)>> {
        self.next_pos = self.next_pos.max(lower);
        self.next()
    }
}

/// Probed access to a constant sequence.
pub struct ConstProbe {
    record: Record,
    span: Span,
}

impl ConstProbe {
    /// Probe `record` at any position within `span`.
    pub fn new(record: Record, span: Span) -> ConstProbe {
        ConstProbe { record, span }
    }
}

impl PointAccess for ConstProbe {
    fn get(&mut self, pos: i64) -> Result<Option<Record>> {
        if self.span.contains(pos) {
            Ok(Some(self.record.clone()))
        } else {
            Ok(None)
        }
    }
}

/// σ over a stream.
pub struct SelectCursor {
    input: Box<dyn Cursor>,
    predicate: Expr,
    stats: ExecStats,
}

impl SelectCursor {
    /// Filter the input stream by a bound predicate.
    pub fn new(input: Box<dyn Cursor>, predicate: Expr, stats: ExecStats) -> SelectCursor {
        SelectCursor { input, predicate, stats }
    }
}

impl Cursor for SelectCursor {
    fn next(&mut self) -> Result<Option<(i64, Record)>> {
        while let Some((p, r)) = self.input.next()? {
            self.stats.record_predicate_eval();
            if self.predicate.eval_predicate(&r)? {
                return Ok(Some((p, r)));
            }
        }
        Ok(None)
    }

    fn next_from(&mut self, lower: i64) -> Result<Option<(i64, Record)>> {
        let mut item = self.input.next_from(lower)?;
        while let Some((p, r)) = item {
            self.stats.record_predicate_eval();
            if self.predicate.eval_predicate(&r)? {
                return Ok(Some((p, r)));
            }
            item = self.input.next()?;
        }
        Ok(None)
    }
}

/// σ over probed access.
pub struct SelectProbe {
    input: Box<dyn PointAccess>,
    predicate: Expr,
    stats: ExecStats,
}

impl SelectProbe {
    /// Filter probed lookups by a bound predicate.
    pub fn new(input: Box<dyn PointAccess>, predicate: Expr, stats: ExecStats) -> SelectProbe {
        SelectProbe { input, predicate, stats }
    }
}

impl PointAccess for SelectProbe {
    fn get(&mut self, pos: i64) -> Result<Option<Record>> {
        let Some(r) = self.input.get(pos)? else { return Ok(None) };
        self.stats.record_predicate_eval();
        if self.predicate.eval_predicate(&r)? {
            Ok(Some(r))
        } else {
            Ok(None)
        }
    }
}

/// π over a stream.
pub struct ProjectCursor {
    input: Box<dyn Cursor>,
    indices: Vec<usize>,
}

impl ProjectCursor {
    /// Project each streamed record to `indices`.
    pub fn new(input: Box<dyn Cursor>, indices: Vec<usize>) -> ProjectCursor {
        ProjectCursor { input, indices }
    }
}

impl Cursor for ProjectCursor {
    fn next(&mut self) -> Result<Option<(i64, Record)>> {
        match self.input.next()? {
            Some((p, r)) => Ok(Some((p, r.project(&self.indices)?))),
            None => Ok(None),
        }
    }

    fn next_from(&mut self, lower: i64) -> Result<Option<(i64, Record)>> {
        match self.input.next_from(lower)? {
            Some((p, r)) => Ok(Some((p, r.project(&self.indices)?))),
            None => Ok(None),
        }
    }
}

/// π over probed access.
pub struct ProjectProbe {
    input: Box<dyn PointAccess>,
    indices: Vec<usize>,
}

impl ProjectProbe {
    /// Project each probed record to `indices`.
    pub fn new(input: Box<dyn PointAccess>, indices: Vec<usize>) -> ProjectProbe {
        ProjectProbe { input, indices }
    }
}

impl PointAccess for ProjectProbe {
    fn get(&mut self, pos: i64) -> Result<Option<Record>> {
        match self.input.get(pos)? {
            Some(r) => Ok(Some(r.project(&self.indices)?)),
            None => Ok(None),
        }
    }
}

/// Positional offset over a stream: `Out(i) = In(i + offset)`, so an input
/// record at position `p` surfaces at output position `p - offset`. Order is
/// preserved; the output is clamped to `span`.
pub struct PosOffsetCursor {
    input: Box<dyn Cursor>,
    offset: i64,
    span: Span,
}

impl PosOffsetCursor {
    /// Shift the input stream: `Out(i) = In(i + offset)`, clamped to `span`.
    pub fn new(input: Box<dyn Cursor>, offset: i64, span: Span) -> PosOffsetCursor {
        PosOffsetCursor { input, offset, span }
    }
}

impl PosOffsetCursor {
    /// Map an input record to its output position, or decide the stream's
    /// fate when `p - offset` is not a representable position: a negative
    /// offset pushes later inputs even further past `POS_INF`, so the stream
    /// is over; a positive offset only underflows a prefix, so skip.
    fn shift_or_stop(&self, p: i64) -> std::ops::ControlFlow<(), Option<i64>> {
        match unshift_position(p, self.offset) {
            Some(out) if out > self.span.end() => std::ops::ControlFlow::Break(()),
            Some(out) if self.span.contains(out) => std::ops::ControlFlow::Continue(Some(out)),
            Some(_) => std::ops::ControlFlow::Continue(None),
            None if self.offset < 0 => std::ops::ControlFlow::Break(()),
            None => std::ops::ControlFlow::Continue(None),
        }
    }
}

impl Cursor for PosOffsetCursor {
    fn next(&mut self) -> Result<Option<(i64, Record)>> {
        while let Some((p, r)) = self.input.next()? {
            match self.shift_or_stop(p) {
                std::ops::ControlFlow::Break(()) => return Ok(None),
                std::ops::ControlFlow::Continue(Some(out)) => return Ok(Some((out, r))),
                std::ops::ControlFlow::Continue(None) => continue,
            }
        }
        Ok(None)
    }

    fn next_from(&mut self, lower: i64) -> Result<Option<(i64, Record)>> {
        // Iterative rather than recursive: a long run of out-of-span input
        // records must not grow the stack with it.
        let mut item = match lower.checked_add(self.offset) {
            Some(in_lower) => self.input.next_from(in_lower)?,
            // Overflow above: no representable input can serve the request.
            None if self.offset > 0 => return Ok(None),
            // Underflow below: every remaining input position qualifies.
            None => self.input.next()?,
        };
        while let Some((p, r)) = item {
            match self.shift_or_stop(p) {
                std::ops::ControlFlow::Break(()) => return Ok(None),
                std::ops::ControlFlow::Continue(Some(out)) => return Ok(Some((out, r))),
                std::ops::ControlFlow::Continue(None) => {}
            }
            item = self.input.next()?;
        }
        Ok(None)
    }
}

/// Positional offset over probed access.
pub struct PosOffsetProbe {
    input: Box<dyn PointAccess>,
    offset: i64,
    span: Span,
}

impl PosOffsetProbe {
    /// Shift probed lookups: `Out(i) = In(i + offset)`.
    pub fn new(input: Box<dyn PointAccess>, offset: i64, span: Span) -> PosOffsetProbe {
        PosOffsetProbe { input, offset, span }
    }
}

impl PointAccess for PosOffsetProbe {
    fn get(&mut self, pos: i64) -> Result<Option<Record>> {
        if !self.span.contains(pos) {
            return Ok(None);
        }
        self.input.get(pos.saturating_add(self.offset))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seq_core::{record, schema, AttrType, BaseSequence};
    use seq_storage::Catalog;

    fn catalog() -> Catalog {
        let mut c = Catalog::new();
        c.set_page_capacity(4);
        let base = BaseSequence::from_entries(
            schema(&[("time", AttrType::Int), ("close", AttrType::Float)]),
            (1..=10).map(|p| (p, record![p, p as f64])).collect(),
        )
        .unwrap();
        c.register("S", &base);
        c
    }

    #[test]
    fn base_stream_and_skip() {
        let c = catalog();
        let store = c.get("S").unwrap();
        let mut cur = BaseStreamCursor::new(&store, Span::new(1, 10));
        assert_eq!(cur.next().unwrap().unwrap().0, 1);
        assert_eq!(cur.next_from(7).unwrap().unwrap().0, 7);
        assert_eq!(cur.next().unwrap().unwrap().0, 8);
    }

    #[test]
    fn base_probe_respects_span() {
        let c = catalog();
        let mut p = BaseProbe::new(c.get("S").unwrap(), Span::new(3, 5));
        assert!(p.get(4).unwrap().is_some());
        assert!(p.get(2).unwrap().is_none()); // outside the clamped span
    }

    #[test]
    fn const_cursor_enumerates_span() {
        let mut cur = ConstCursor::new(record![7.0], Span::new(2, 4)).unwrap();
        let mut got = Vec::new();
        while let Some((p, _)) = cur.next().unwrap() {
            got.push(p);
        }
        assert_eq!(got, vec![2, 3, 4]);
        assert!(ConstCursor::new(record![7.0], Span::all()).is_err());
        let mut empty = ConstCursor::new(record![7.0], Span::empty()).unwrap();
        assert!(empty.next().unwrap().is_none());
    }

    #[test]
    fn select_cursor_filters_and_counts() {
        let c = catalog();
        let stats = ExecStats::new();
        let store = c.get("S").unwrap();
        let base = Box::new(BaseStreamCursor::new(&store, Span::new(1, 10)));
        let sch = schema(&[("time", AttrType::Int), ("close", AttrType::Float)]);
        let pred = Expr::attr("close").gt(Expr::lit(7.5)).bind(&sch).unwrap();
        let mut cur = SelectCursor::new(base, pred, stats.clone());
        let mut got = Vec::new();
        while let Some((p, _)) = cur.next().unwrap() {
            got.push(p);
        }
        assert_eq!(got, vec![8, 9, 10]);
        assert_eq!(stats.snapshot().predicate_evals, 10);
    }

    #[test]
    fn project_cursor_narrows() {
        let c = catalog();
        let store = c.get("S").unwrap();
        let base = Box::new(BaseStreamCursor::new(&store, Span::new(1, 2)));
        let mut cur = ProjectCursor::new(base, vec![1]);
        let (_, r) = cur.next().unwrap().unwrap();
        assert_eq!(r.arity(), 1);
    }

    #[test]
    fn pos_offset_cursor_shifts() {
        let c = catalog();
        let store = c.get("S").unwrap();
        // Out(i) = In(i + 2): input 1..=10 surfaces at outputs -1..=8.
        let base = Box::new(BaseStreamCursor::new(&store, Span::new(1, 10)));
        let mut cur = PosOffsetCursor::new(base, 2, Span::new(0, 8));
        assert_eq!(cur.next().unwrap().unwrap().0, 0); // input pos 2
        assert_eq!(cur.next_from(5).unwrap().unwrap().0, 5); // input pos 7
        let mut rest = Vec::new();
        while let Some((p, _)) = cur.next().unwrap() {
            rest.push(p);
        }
        assert_eq!(rest, vec![6, 7, 8]);
    }

    #[test]
    fn pos_offset_probe() {
        let c = catalog();
        let probe = Box::new(BaseProbe::new(c.get("S").unwrap(), Span::new(1, 10)));
        let mut p = PosOffsetProbe::new(probe, -3, Span::new(4, 13));
        // Out(4) = In(1).
        let r = p.get(4).unwrap().unwrap();
        assert_eq!(r.value(0).unwrap().as_i64().unwrap(), 1);
        assert!(p.get(3).unwrap().is_none()); // outside output span
        assert!(p.get(20).unwrap().is_none());
    }

    #[test]
    fn select_probe() {
        let c = catalog();
        let sch = schema(&[("time", AttrType::Int), ("close", AttrType::Float)]);
        let pred = Expr::attr("close").gt(Expr::lit(5.0)).bind(&sch).unwrap();
        let probe = Box::new(BaseProbe::new(c.get("S").unwrap(), Span::new(1, 10)));
        let mut p = SelectProbe::new(probe, pred, ExecStats::new());
        assert!(p.get(6).unwrap().is_some());
        assert!(p.get(5).unwrap().is_none());
    }

    #[test]
    fn default_next_from_skips() {
        // Exercise the trait's default next_from through a minimal cursor.
        struct Fixed(Vec<(i64, Record)>, usize);
        impl Cursor for Fixed {
            fn next(&mut self) -> Result<Option<(i64, Record)>> {
                let item = self.0.get(self.1).cloned();
                self.1 += 1;
                Ok(item)
            }
        }
        let mut f = Fixed(vec![(1, record![1i64]), (4, record![4i64]), (9, record![9i64])], 0);
        assert_eq!(f.next_from(2).unwrap().unwrap().0, 4);
        assert_eq!(f.next_from(5).unwrap().unwrap().0, 9);
        assert!(f.next_from(10).unwrap().is_none());
    }
}
