//! Incremental (trigger) evaluation — the §5.3 extension.
//!
//! "In applications where the data sequences are dynamic, and where the
//! queries are acting as triggers, it may be important to optimize the
//! incremental cost of processing each new arriving data item." (§5.3; also
//! footnote 7 and the \[GJS92\] motivation.)
//!
//! [`TriggerEngine`] evaluates a physical plan *push-style*: records arrive
//! one at a time, in globally non-decreasing position order, each arrival
//! updates O(cache) operator state, and newly determined query outputs are
//! emitted immediately. State per operator is exactly the cache the batch
//! plan would use (Cache-Strategy-A windows, Cache-Strategy-B rings), so the
//! per-arrival cost is O(scope) — never a rescan.
//!
//! ## Output contract
//!
//! The engine emits **event-aligned** outputs: the subset of the batch
//! plan's outputs whose positions carry at least one base-sequence record.
//! For trigger-style queries this is every output — a compose with any
//! leaf-derived side only produces output at event positions. Queries whose
//! outputs lie *between* events (e.g. a bare `Previous`, whose output is
//! dense) are still maintained as state and can be observed with
//! [`TriggerEngine::current`], but only event positions are emitted.
//!
//! Because several bases may carry records at the *same* position, the
//! output at position `p` is only determined once every arrival at `p` has
//! been seen. Arrivals are therefore staged per position and the position is
//! finalized when the clock advances past it (or on [`TriggerEngine::flush`])
//! — a one-position watermark.

use std::collections::HashMap;
use std::collections::VecDeque;

use seq_core::{Record, Result, SeqError, Span, Value};
use seq_ops::{AggFunc, Expr, Window};

use crate::plan::{PhysNode, PhysPlan};

/// One emitted query output.
pub type Emission = (i64, Record);

/// A push-mode operator node.
enum PushNode {
    /// A base-sequence leaf fed by [`TriggerEngine::arrive`].
    Leaf {
        name: String,
        span: Span,
        last: Option<(i64, Record)>,
    },
    Constant {
        record: Record,
        span: Span,
    },
    Select {
        input: Box<PushNode>,
        predicate: Expr,
    },
    Project {
        input: Box<PushNode>,
        indices: Vec<usize>,
    },
    PosOffset {
        input: Box<PushNode>,
        offset: i64,
        span: Span,
    },
    /// Backward value offsets via a Cache-Strategy-B ring.
    ValueOffset {
        input: Box<PushNode>,
        magnitude: usize,
        ring: VecDeque<(i64, Record)>,
    },
    /// Trailing/sliding aggregates via a Cache-Strategy-A window
    /// (windows must not look ahead: `hi <= 0`).
    Aggregate {
        input: Box<PushNode>,
        func: AggFunc,
        attr_index: usize,
        lo: Option<i64>, // None = cumulative
        hi: i64,
        window: VecDeque<(i64, Value)>,
        /// Running state for cumulative windows.
        cumulative: Option<crate::aggregate::SlidingAccumulator>,
    },
    Compose {
        left: Box<PushNode>,
        right: Box<PushNode>,
        predicate: Option<Expr>,
    },
}

/// Whether a plan subtree's non-Null positions coincide with base-record
/// event positions. Aggregates and value offsets produce *dense* outputs
/// (values exist between events), which an event-driven state machine cannot
/// replay faithfully into another value offset's or aggregate's history —
/// those combinations are rejected at construction. A compose is
/// event-aligned if either side is (its output needs both sides non-Null).
fn is_event_aligned(node: &PhysNode) -> bool {
    match node {
        PhysNode::Base { .. } | PhysNode::FusedScan { .. } => true,
        PhysNode::Constant { .. } => false,
        PhysNode::Select { input, .. }
        | PhysNode::Project { input, .. }
        | PhysNode::PosOffset { input, .. } => is_event_aligned(input),
        PhysNode::ValueOffset { .. } | PhysNode::Aggregate { .. } => false,
        PhysNode::Compose { left, right, .. } => is_event_aligned(left) || is_event_aligned(right),
    }
}

impl PushNode {
    fn from_plan(node: &PhysNode) -> Result<PushNode> {
        Ok(match node {
            PhysNode::Base { name, span } => {
                PushNode::Leaf { name: name.clone(), span: *span, last: None }
            }
            // Push-based evaluation sees records one at a time — there are no
            // pages to skip — so a fused scan degenerates to σ over the leaf.
            PhysNode::FusedScan { name, predicate, span, .. } => PushNode::Select {
                input: Box::new(PushNode::Leaf { name: name.clone(), span: *span, last: None }),
                predicate: predicate.clone(),
            },
            PhysNode::Constant { record, span } => {
                PushNode::Constant { record: record.clone(), span: *span }
            }
            PhysNode::Select { input, predicate, .. } => PushNode::Select {
                input: Box::new(PushNode::from_plan(input)?),
                predicate: predicate.clone(),
            },
            PhysNode::Project { input, indices, .. } => PushNode::Project {
                input: Box::new(PushNode::from_plan(input)?),
                indices: indices.clone(),
            },
            PhysNode::PosOffset { input, offset, span } => {
                if *offset > 0 {
                    return Err(SeqError::Unsupported(
                        "incremental evaluation cannot look ahead (positive positional offset)"
                            .into(),
                    ));
                }
                PushNode::PosOffset {
                    input: Box::new(PushNode::from_plan(input)?),
                    offset: *offset,
                    span: *span,
                }
            }
            PhysNode::ValueOffset { input, offset, .. } => {
                if *offset > 0 {
                    return Err(SeqError::Unsupported(
                        "incremental evaluation cannot look ahead (forward value offset)".into(),
                    ));
                }
                if !is_event_aligned(input) {
                    return Err(SeqError::Unsupported(
                        "incremental value offsets need an event-aligned input \
                         (aggregate/value-offset outputs are dense)"
                            .into(),
                    ));
                }
                PushNode::ValueOffset {
                    input: Box::new(PushNode::from_plan(input)?),
                    magnitude: offset.unsigned_abs() as usize,
                    ring: VecDeque::new(),
                }
            }
            PhysNode::Aggregate { input, func, attr_index, window, .. } => {
                if !is_event_aligned(input) {
                    return Err(SeqError::Unsupported(
                        "incremental aggregates need an event-aligned input \
                         (aggregate/value-offset outputs are dense)"
                            .into(),
                    ));
                }
                let (lo, hi, cumulative) = match window {
                    Window::Sliding { lo, hi } => {
                        if *hi > 0 {
                            return Err(SeqError::Unsupported(
                                "incremental evaluation cannot look ahead (leading window)".into(),
                            ));
                        }
                        (Some(*lo), *hi, None)
                    }
                    Window::Cumulative => {
                        (None, 0, Some(crate::aggregate::SlidingAccumulator::new(*func)))
                    }
                    Window::WholeSpan => {
                        return Err(SeqError::Unsupported(
                            "whole-span aggregates need the entire input before any output".into(),
                        ))
                    }
                };
                PushNode::Aggregate {
                    input: Box::new(PushNode::from_plan(input)?),
                    func: *func,
                    attr_index: *attr_index,
                    lo,
                    hi,
                    window: VecDeque::new(),
                    cumulative,
                }
            }
            PhysNode::Compose { left, right, predicate, .. } => PushNode::Compose {
                left: Box::new(PushNode::from_plan(left)?),
                right: Box::new(PushNode::from_plan(right)?),
                predicate: predicate.clone(),
            },
        })
    }

    fn collect_leaves<'a>(&'a mut self, out: &mut Vec<&'a mut PushNode>) {
        match self {
            PushNode::Leaf { .. } => out.push(self),
            PushNode::Constant { .. } => {}
            PushNode::Select { input, .. }
            | PushNode::Project { input, .. }
            | PushNode::PosOffset { input, .. }
            | PushNode::ValueOffset { input, .. }
            | PushNode::Aggregate { input, .. } => input.collect_leaves(out),
            PushNode::Compose { left, right, .. } => {
                left.collect_leaves(out);
                right.collect_leaves(out);
            }
        }
    }

    /// Phase 1: record an arrival on base `name` at `pos` into the matching
    /// leaf. Returns whether a leaf below accepted the record.
    fn stage(&mut self, name: &str, pos: i64, rec: &Record) -> bool {
        match self {
            PushNode::Leaf { name: n, span, last } => {
                if n != name || !span.contains(pos) {
                    return false;
                }
                *last = Some((pos, rec.clone()));
                true
            }
            PushNode::Constant { .. } => false,
            PushNode::Select { input, .. }
            | PushNode::Project { input, .. }
            | PushNode::PosOffset { input, .. }
            | PushNode::ValueOffset { input, .. }
            | PushNode::Aggregate { input, .. } => input.stage(name, pos, rec),
            PushNode::Compose { left, right, .. } => {
                let l = left.stage(name, pos, rec);
                let r = right.stage(name, pos, rec);
                l || r
            }
        }
    }

    /// Phase 2 (after all arrivals at `pos` are staged): fold the position's
    /// input values into every stateful node's history, children first.
    fn absorb(&mut self, pos: i64) -> Result<()> {
        match self {
            PushNode::Leaf { .. } | PushNode::Constant { .. } => Ok(()),
            PushNode::Select { input, .. }
            | PushNode::Project { input, .. }
            | PushNode::PosOffset { input, .. } => input.absorb(pos),
            PushNode::ValueOffset { input, magnitude, ring } => {
                input.absorb(pos)?;
                // Event-aligned input (enforced at construction): its value
                // at `pos` is exactly this position's event, if any.
                if let Some(r) = input.value_at(pos)? {
                    // Keep one extra entry so value_at can skip the
                    // same-position record (value offsets look strictly
                    // before their position).
                    if ring.len() > *magnitude {
                        ring.pop_front();
                    }
                    ring.push_back((pos, r));
                }
                Ok(())
            }
            PushNode::Aggregate { input, lo, window, cumulative, attr_index, .. } => {
                input.absorb(pos)?;
                if let Some(r) = input.value_at(pos)? {
                    let v = r.value(*attr_index)?.clone();
                    match cumulative {
                        Some(acc) => acc.push(pos, &v)?,
                        None => window.push_back((pos, v)),
                    }
                }
                // GC: entries that can never be visible again (the clock is
                // monotone, so future windows start at >= pos + lo).
                if let Some(lo) = lo {
                    let bound = pos + *lo;
                    while window.front().map(|(p, _)| *p < bound).unwrap_or(false) {
                        window.pop_front();
                    }
                }
                Ok(())
            }
            PushNode::Compose { left, right, .. } => {
                left.absorb(pos)?;
                right.absorb(pos)
            }
        }
    }

    /// The node's current value at frontier position `pos` (≥ every arrival
    /// so far), derived purely from maintained state.
    fn value_at(&self, pos: i64) -> Result<Option<Record>> {
        match self {
            PushNode::Leaf { last, .. } => {
                Ok(last.as_ref().filter(|(p, _)| *p == pos).map(|(_, r)| r.clone()))
            }
            PushNode::Constant { record, span } => Ok(span.contains(pos).then(|| record.clone())),
            PushNode::Select { input, predicate } => match input.value_at(pos)? {
                Some(r) if predicate.eval_predicate(&r)? => Ok(Some(r)),
                _ => Ok(None),
            },
            PushNode::Project { input, indices } => {
                Ok(input.value_at(pos)?.map(|r| r.project(indices)).transpose()?)
            }
            PushNode::PosOffset { input, offset, span } => {
                if !span.contains(pos) {
                    return Ok(None);
                }
                input.value_at(pos + *offset)
            }
            PushNode::ValueOffset { magnitude, ring, .. } => {
                // All ring entries are at positions < pos (frontier), so the
                // magnitude-th most recent is the answer.
                let skip_current = ring.back().map(|(p, _)| *p == pos).unwrap_or(false);
                let effective: usize = *magnitude + usize::from(skip_current);
                if ring.len() >= effective {
                    Ok(Some(ring[ring.len() - effective].1.clone()))
                } else {
                    Ok(None)
                }
            }
            PushNode::Aggregate { func, lo, hi, window, cumulative, .. } => match cumulative {
                Some(acc) => Ok(acc.current().map(|v| Record::new(vec![v]))),
                None => {
                    let lo_bound = pos + lo.expect("sliding");
                    let hi_bound = pos + *hi;
                    let values: Vec<Value> = window
                        .iter()
                        .filter(|(p, _)| *p >= lo_bound && *p <= hi_bound)
                        .map(|(_, v)| v.clone())
                        .collect();
                    Ok(func.apply(values.iter())?.map(|v| Record::new(vec![v])))
                }
            },
            PushNode::Compose { left, right, predicate, .. } => {
                let (Some(l), Some(r)) = (left.value_at(pos)?, right.value_at(pos)?) else {
                    return Ok(None);
                };
                let joined = l.compose(&r);
                if let Some(p) = predicate {
                    if !p.eval_predicate(&joined)? {
                        return Ok(None);
                    }
                }
                Ok(Some(joined))
            }
        }
    }
}

/// The push-mode (trigger) evaluation engine for one plan.
pub struct TriggerEngine {
    root: PushNode,
    range: Span,
    /// Base names the plan listens to.
    bases: Vec<String>,
    clock: Option<i64>,
    /// Arrivals staged at the current clock position, awaiting finalization.
    pending: Vec<(String, Record)>,
    arrivals: u64,
    emissions: u64,
}

impl TriggerEngine {
    /// Build from a physical plan. Plans using lookahead (positive offsets,
    /// leading windows, Next), whole-span aggregates, or value offsets and
    /// aggregates over dense (non-event-aligned) inputs are rejected —
    /// incremental evaluation cannot see the future or replay dense history.
    pub fn new(plan: &PhysPlan) -> Result<TriggerEngine> {
        let mut root = PushNode::from_plan(&plan.root)?;
        let mut leaves = Vec::new();
        root.collect_leaves(&mut leaves);
        let mut bases: Vec<String> = leaves
            .iter()
            .map(|l| match l {
                PushNode::Leaf { name, .. } => name.clone(),
                _ => unreachable!(),
            })
            .collect();
        bases.sort();
        bases.dedup();
        Ok(TriggerEngine {
            root,
            range: plan.range,
            bases,
            clock: None,
            pending: Vec::new(),
            arrivals: 0,
            emissions: 0,
        })
    }

    /// Base sequences this engine consumes.
    pub fn bases(&self) -> &[String] {
        &self.bases
    }

    /// Process one arriving record. Positions must be globally
    /// non-decreasing across all bases. Outputs for a position are returned
    /// once the clock moves past it (several bases may carry records at the
    /// same position); call [`TriggerEngine::flush`] to finalize the last
    /// position.
    pub fn arrive(&mut self, base: &str, pos: i64, rec: &Record) -> Result<Vec<Emission>> {
        let mut out = Vec::new();
        match self.clock {
            Some(c) if pos < c => {
                return Err(SeqError::Position(format!(
                    "arrival at {pos} after the clock reached {c}; arrivals must be ordered"
                )));
            }
            Some(c) if pos > c => {
                out.extend(self.finalize(c)?);
            }
            _ => {}
        }
        self.clock = Some(pos);
        self.arrivals += 1;
        self.pending.push((base.to_string(), rec.clone()));
        Ok(out)
    }

    /// Finalize the current position: emit its output (if any) and clear the
    /// staging buffer. Call after the final arrival.
    pub fn flush(&mut self) -> Result<Vec<Emission>> {
        match self.clock {
            Some(c) => self.finalize(c),
            None => Ok(Vec::new()),
        }
    }

    fn finalize(&mut self, pos: i64) -> Result<Vec<Emission>> {
        if self.pending.is_empty() {
            return Ok(Vec::new());
        }
        let staged: Vec<(String, Record)> = std::mem::take(&mut self.pending);
        let mut fired = false;
        for (base, rec) in &staged {
            fired |= self.root.stage(base, pos, rec);
        }
        // Compute the output *before* folding the position into value-offset
        // history? No: value_at skips same-position ring entries itself, so
        // absorbing first keeps one code path.
        self.root.absorb(pos)?;
        let mut out = Vec::new();
        if fired && self.range.contains(pos) {
            if let Some(r) = self.root.value_at(pos)? {
                self.emissions += 1;
                out.push((pos, r));
            }
        }
        Ok(out)
    }

    /// The query's current value at the frontier (state-only lookup).
    pub fn current(&self, pos: i64) -> Result<Option<Record>> {
        self.root.value_at(pos)
    }

    /// Records processed so far.
    pub fn arrivals(&self) -> u64 {
        self.arrivals
    }

    /// Query outputs emitted so far.
    pub fn emissions(&self) -> u64 {
        self.emissions
    }
}

/// Drive a trigger engine from materialized base sequences, merging their
/// records in position order — the batch-replay harness used to validate
/// the engine against batch evaluation.
pub fn replay(
    engine: &mut TriggerEngine,
    feeds: &HashMap<String, Vec<(i64, Record)>>,
) -> Result<Vec<Emission>> {
    let mut merged: Vec<(i64, &str, &Record)> = Vec::new();
    for (name, entries) in feeds {
        for (p, r) in entries {
            merged.push((*p, name.as_str(), r));
        }
    }
    merged.sort_by_key(|(p, name, _)| (*p, name.to_string()));
    let mut out = Vec::new();
    for (p, name, r) in merged {
        out.extend(engine.arrive(name, p, r)?);
    }
    out.extend(engine.flush()?);
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::execute;
    use crate::plan::{ExecContext, PhysPlan};
    use seq_core::{record, schema, AttrType, BaseSequence, Sequence};
    use seq_opt_free_helpers::*;

    /// Local helpers that would otherwise need seq-opt (dependency cycle):
    /// hand-built plans mirroring what the optimizer produces.
    mod seq_opt_free_helpers {
        use super::*;
        use crate::plan::{JoinStrategy, PhysNode, ValueOffsetStrategy};

        pub fn base(name: &str, span: Span) -> PhysNode {
            PhysNode::Base { name: name.into(), span }
        }

        pub fn previous(input: PhysNode, span: Span) -> PhysNode {
            PhysNode::ValueOffset {
                input: Box::new(input),
                offset: -1,
                strategy: ValueOffsetStrategy::IncrementalCacheB,
                span,
            }
        }

        pub fn compose(l: PhysNode, r: PhysNode, pred: Option<Expr>, span: Span) -> PhysNode {
            PhysNode::Compose {
                left: Box::new(l),
                right: Box::new(r),
                predicate: pred,
                strategy: JoinStrategy::LockStep,
                span,
            }
        }

        pub fn select(input: PhysNode, pred: Expr, span: Span) -> PhysNode {
            PhysNode::Select { input: Box::new(input), predicate: pred, span }
        }

        pub fn aggregate(
            input: PhysNode,
            func: AggFunc,
            attr: usize,
            window: Window,
            span: Span,
        ) -> PhysNode {
            PhysNode::Aggregate {
                input: Box::new(input),
                func,
                attr_index: attr,
                window,
                strategy: crate::plan::AggStrategy::CacheA,
                span,
            }
        }
    }

    fn catalog_with(seqs: &[(&str, &[(i64, f64)])]) -> seq_storage::Catalog {
        let mut c = seq_storage::Catalog::new();
        c.set_page_capacity(8);
        for (name, data) in seqs {
            let base = BaseSequence::from_entries(
                schema(&[("time", AttrType::Int), ("v", AttrType::Float)]),
                data.iter().map(|&(p, v)| (p, record![p, v])).collect(),
            )
            .unwrap();
            c.register(*name, &base);
        }
        c
    }

    fn feeds_from(
        catalog: &seq_storage::Catalog,
        names: &[&str],
    ) -> HashMap<String, Vec<(i64, Record)>> {
        names
            .iter()
            .map(|n| {
                let s = catalog.get(n).unwrap();
                (n.to_string(), s.scan(Span::all()).collect())
            })
            .collect()
    }

    /// Engine emissions must equal batch outputs at event positions.
    fn assert_matches_batch(catalog: &seq_storage::Catalog, plan: &PhysPlan, names: &[&str]) {
        let ctx = ExecContext::new(catalog);
        let batch = execute(plan, &ctx).unwrap();
        let event_positions: std::collections::HashSet<i64> = names
            .iter()
            .flat_map(|n| {
                catalog.get(n).unwrap().scan(Span::all()).map(|(p, _)| p).collect::<Vec<_>>()
            })
            .collect();
        let expected: Vec<(i64, Record)> =
            batch.into_iter().filter(|(p, _)| event_positions.contains(p)).collect();

        let mut engine = TriggerEngine::new(plan).unwrap();
        let got = replay(&mut engine, &feeds_from(catalog, names)).unwrap();
        if expected.len() != got.len() {
            let gp: std::collections::HashSet<i64> = got.iter().map(|(p, _)| *p).collect();
            let ep: std::collections::HashSet<i64> = expected.iter().map(|(p, _)| *p).collect();
            eprintln!("missing from engine: {:?}", ep.difference(&gp).collect::<Vec<_>>());
            eprintln!("extra in engine:    {:?}", gp.difference(&ep).collect::<Vec<_>>());
        }
        assert_eq!(expected.len(), got.len(), "emission count");
        for ((pe, re), (pg, rg)) in expected.iter().zip(got.iter()) {
            assert_eq!(pe, pg);
            assert_eq!(re, rg);
        }
    }

    #[test]
    fn select_trigger_fires_on_matching_arrivals() {
        let catalog = catalog_with(&[("S", &[(1, 5.0), (2, 1.0), (3, 9.0)])]);
        let span = Span::new(1, 10);
        let plan =
            PhysPlan::new(select(base("S", span), Expr::Col(1).gt(Expr::lit(4.0)), span), span);
        assert_matches_batch(&catalog, &plan, &["S"]);
        // And explicitly: emissions surface when the clock passes a position.
        let mut engine = TriggerEngine::new(&plan).unwrap();
        assert!(engine.arrive("S", 1, &record![1i64, 5.0]).unwrap().is_empty());
        // Advancing to 2 finalizes position 1 (which qualified).
        assert_eq!(engine.arrive("S", 2, &record![2i64, 1.0]).unwrap().len(), 1);
        // Advancing to 3 finalizes position 2 (filtered out).
        assert!(engine.arrive("S", 3, &record![3i64, 9.0]).unwrap().is_empty());
        assert_eq!(engine.flush().unwrap().len(), 1);
        assert_eq!(engine.arrivals(), 3);
        assert_eq!(engine.emissions(), 2);
    }

    #[test]
    fn example_1_1_as_a_trigger() {
        // Volcanos ∘ Previous(Quakes), σ(strength > 7): the composite-event
        // trigger of the paper's introduction, evaluated per arrival.
        let quakes: &[(i64, f64)] = &[(10, 6.0), (20, 8.0), (40, 5.0)];
        let volcanos: &[(i64, f64)] = &[(15, 0.0), (25, 1.0), (45, 2.0)];
        let catalog = catalog_with(&[("Q", quakes), ("V", volcanos)]);
        let span = Span::new(1, 100);
        let plan = PhysPlan::new(
            select(
                compose(base("V", span), previous(base("Q", span), span), None, span),
                Expr::Col(3).gt(Expr::lit(7.0)), // Q's strength within V∘Q
                span,
            ),
            span,
        );
        assert_matches_batch(&catalog, &plan, &["Q", "V"]);
        let mut engine = TriggerEngine::new(&plan).unwrap();
        let feeds = feeds_from(&catalog, &["Q", "V"]);
        let out = replay(&mut engine, &feeds).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 25); // the eruption after the 8.0 quake
    }

    #[test]
    fn trailing_aggregate_trigger() {
        let catalog = catalog_with(&[("S", &[(1, 1.0), (2, 2.0), (4, 4.0), (7, 8.0)])]);
        let span = Span::new(1, 10);
        let plan = PhysPlan::new(
            aggregate(base("S", span), AggFunc::Sum, 1, Window::trailing(3), span),
            span,
        );
        assert_matches_batch(&catalog, &plan, &["S"]);
    }

    #[test]
    fn cumulative_aggregate_trigger() {
        let catalog = catalog_with(&[("S", &[(1, 1.0), (3, 2.0), (9, 4.0)])]);
        let span = Span::new(1, 10);
        let plan = PhysPlan::new(
            aggregate(base("S", span), AggFunc::Sum, 1, Window::Cumulative, span),
            span,
        );
        assert_matches_batch(&catalog, &plan, &["S"]);
    }

    #[test]
    fn lookahead_plans_are_rejected() {
        let span = Span::new(1, 10);
        let next_plan = PhysPlan::new(
            PhysNode::ValueOffset {
                input: Box::new(base("S", span)),
                offset: 1,
                strategy: crate::plan::ValueOffsetStrategy::IncrementalCacheB,
                span,
            },
            span,
        );
        assert!(TriggerEngine::new(&next_plan).is_err());
        let leading = PhysPlan::new(
            aggregate(base("S", span), AggFunc::Sum, 1, Window::Sliding { lo: 0, hi: 2 }, span),
            span,
        );
        assert!(TriggerEngine::new(&leading).is_err());
    }

    #[test]
    fn dense_input_value_offset_is_rejected() {
        let span = Span::new(1, 10);
        let plan = PhysPlan::new(
            previous(aggregate(base("S", span), AggFunc::Sum, 1, Window::trailing(3), span), span),
            span,
        );
        assert!(TriggerEngine::new(&plan).is_err());
    }

    #[test]
    fn out_of_order_arrivals_are_rejected() {
        let span = Span::new(1, 10);
        let plan = PhysPlan::new(base("S", span), span);
        let mut engine = TriggerEngine::new(&plan).unwrap();
        engine.arrive("S", 5, &record![5i64, 1.0]).unwrap();
        assert!(engine.arrive("S", 3, &record![3i64, 1.0]).is_err());
    }

    #[test]
    fn current_exposes_dense_state_between_events() {
        // A bare Previous emits at event positions, but `current` can be
        // asked at any frontier position.
        let span = Span::new(1, 100);
        let plan = PhysPlan::new(previous(base("S", span), span), span);
        let mut engine = TriggerEngine::new(&plan).unwrap();
        engine.arrive("S", 10, &record![10i64, 1.0]).unwrap();
        engine.arrive("S", 20, &record![20i64, 2.0]).unwrap();
        engine.flush().unwrap(); // finalize position 20 into state
                                 // Between/after events, the most recent record is position 20.
        let cur = engine.current(35).unwrap().unwrap();
        assert_eq!(cur.value(0).unwrap().as_i64().unwrap(), 20);
    }

    #[test]
    fn compose_same_position_on_both_sides_emits_once() {
        let catalog = catalog_with(&[("A", &[(1, 1.0), (2, 2.0)]), ("B", &[(2, 20.0), (3, 30.0)])]);
        let span = Span::new(1, 10);
        let plan = PhysPlan::new(compose(base("A", span), base("B", span), None, span), span);
        assert_matches_batch(&catalog, &plan, &["A", "B"]);
        let mut engine = TriggerEngine::new(&plan).unwrap();
        let out = replay(&mut engine, &feeds_from(&catalog, &["A", "B"])).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, 2);
    }

    #[test]
    fn randomized_trigger_vs_batch() {
        use seq_workload::Rng;
        for seed in 0..30u64 {
            let mut rng = Rng::seed_from_u64(seed);
            let mk = |rng: &mut Rng| -> Vec<(i64, f64)> {
                let mut out = Vec::new();
                for p in 1..=60 {
                    if rng.gen_bool(0.6) {
                        out.push((p, rng.gen_range(0.0..100.0)));
                    }
                }
                out
            };
            let a = mk(&mut rng);
            let b = mk(&mut rng);
            let catalog = catalog_with(&[("A", &a), ("B", &b)]);
            let span = Span::new(1, 70);
            // A ∘ Previous(σ(B.v > 30)) filtered on A.v > prev.v — Previous
            // over an event-aligned (selected base) input.
            let plan = PhysPlan::new(
                compose(
                    base("A", span),
                    previous(select(base("B", span), Expr::Col(1).gt(Expr::lit(30.0)), span), span),
                    Some(Expr::Col(1).gt(Expr::Col(3))),
                    span,
                ),
                span,
            );
            assert_matches_batch(&catalog, &plan, &["A", "B"]);
            // And an aggregate probed through the compose's value_at path.
            let plan2 = PhysPlan::new(
                compose(
                    base("A", span),
                    aggregate(base("B", span), AggFunc::Max, 1, Window::trailing(3), span),
                    Some(Expr::Col(1).gt(Expr::Col(2))),
                    span,
                ),
                span,
            );
            assert_matches_batch(&catalog, &plan2, &["A", "B"]);
        }
    }
}
