//! Windowed-aggregate evaluation — the Figure 5.A contrast.
//!
//! Strategies:
//!
//! - **Cache-Strategy-A** ([`WindowAggCursor`]): stream the input once,
//!   holding the records of the effective scope in a FIFO [`OpCache`] sized
//!   to the window, so "the Sum operator at every position needs to access
//!   the input sequence only at that position" (§3.5). The aggregate is
//!   recomputed from the cached window, exactly as the paper describes.
//! - **Incremental** ([`SlidingAccumulator`]): a standard refinement of
//!   Cache-A that maintains running sums (Sum/Count/Avg) or a monotonic
//!   deque (Min/Max) so each slide costs O(1) amortized instead of O(w).
//! - **Naive** ([`NaiveAggCursor`] / [`AggProbe`]): for every output
//!   position, probe the input at each window position — w probes per
//!   output, the repeated-retrieval cost caching eliminates.
//!
//! Cumulative and whole-span windows get dedicated cursors
//! ([`CumulativeAggCursor`], [`WholeSpanAggCursor`]).

use std::collections::VecDeque;

use seq_core::{Record, RecordBatch, Result, SeqError, Span, Value};
use seq_ops::{AggFunc, Window};

use crate::batch::BatchCursor;
use crate::cache::OpCache;
use crate::cursor::{Cursor, PointAccess};
use crate::stats::ExecStats;

/// O(1)-amortized sliding-window aggregate state.
///
/// Entries must be pushed in increasing position order and removed in the
/// same order (`evict_below`), matching how a sequential window slides.
#[derive(Debug)]
pub struct SlidingAccumulator {
    func: AggFunc,
    count: i64,
    int_count: i64,
    sum_i: i64,
    sum_f: f64,
    /// For Min/Max: positions+values in monotonically best-first order.
    mono: VecDeque<(i64, Value)>,
    /// All live positions (needed to know what `evict_below` removes).
    live: VecDeque<(i64, Value)>,
}

impl SlidingAccumulator {
    /// Empty state for the given aggregate function.
    pub fn new(func: AggFunc) -> SlidingAccumulator {
        SlidingAccumulator {
            func,
            count: 0,
            int_count: 0,
            sum_i: 0,
            sum_f: 0.0,
            mono: VecDeque::new(),
            live: VecDeque::new(),
        }
    }

    /// Live entries in the window.
    pub fn len(&self) -> usize {
        self.count as usize
    }

    /// Whether the window holds no entries.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Add the value at `pos` (positions strictly increasing).
    pub fn push(&mut self, pos: i64, v: &Value) -> Result<()> {
        debug_assert!(self.live.back().map(|(p, _)| *p < pos).unwrap_or(true));
        self.count += 1;
        match self.func {
            AggFunc::Count => {}
            AggFunc::Sum | AggFunc::Avg => match v {
                Value::Int(i) => {
                    self.int_count += 1;
                    self.sum_i = self.sum_i.wrapping_add(*i);
                    self.sum_f += *i as f64;
                }
                Value::Float(f) => self.sum_f += f,
                other => {
                    return Err(SeqError::Type(format!(
                        "{} requires numeric values, found {}",
                        self.func,
                        other.attr_type()
                    )))
                }
            },
            AggFunc::Min | AggFunc::Max => {
                // Pop dominated entries from the back of the monotonic deque.
                while let Some((_, back)) = self.mono.back() {
                    let ord = v.total_cmp(back)?;
                    let dominated =
                        if self.func == AggFunc::Min { ord.is_le() } else { ord.is_ge() };
                    if dominated {
                        self.mono.pop_back();
                    } else {
                        break;
                    }
                }
                self.mono.push_back((pos, v.clone()));
            }
        }
        self.live.push_back((pos, v.clone()));
        Ok(())
    }

    /// Add a run of entries that all hold the same value `v` (strict
    /// same-variant equality, as produced by decoding an RLE run), at the
    /// strictly increasing `positions`.
    ///
    /// Bit-identical to pushing each entry individually, but the run folds
    /// into the running state in O(1) comparisons: counts add in one step,
    /// integer sums multiply, and a Min/Max run collapses to a single
    /// monotonic-deque entry at the run's last position (each equal-value
    /// push would dominate its predecessor anyway). Float accumulation is
    /// order-sensitive, so `sum_f` still repeats the adds element by
    /// element.
    pub fn push_run(&mut self, positions: &[i64], v: &Value) -> Result<()> {
        let Some(&last) = positions.last() else { return Ok(()) };
        debug_assert!(positions.windows(2).all(|w| w[0] < w[1]));
        debug_assert!(self.live.back().map(|(p, _)| *p < positions[0]).unwrap_or(true));
        let n = positions.len() as i64;
        self.count += n;
        match self.func {
            AggFunc::Count => {}
            AggFunc::Sum | AggFunc::Avg => match v {
                Value::Int(i) => {
                    self.int_count += n;
                    self.sum_i = self.sum_i.wrapping_add(i.wrapping_mul(n));
                    for _ in 0..n {
                        self.sum_f += *i as f64;
                    }
                }
                Value::Float(f) => {
                    for _ in 0..n {
                        self.sum_f += f;
                    }
                }
                other => {
                    return Err(SeqError::Type(format!(
                        "{} requires numeric values, found {}",
                        self.func,
                        other.attr_type()
                    )))
                }
            },
            AggFunc::Min | AggFunc::Max => {
                while let Some((_, back)) = self.mono.back() {
                    let ord = v.total_cmp(back)?;
                    let dominated =
                        if self.func == AggFunc::Min { ord.is_le() } else { ord.is_ge() };
                    if dominated {
                        self.mono.pop_back();
                    } else {
                        break;
                    }
                }
                self.mono.push_back((last, v.clone()));
            }
        }
        for &p in positions {
            self.live.push_back((p, v.clone()));
        }
        Ok(())
    }

    /// Remove entries at positions strictly below `pos`.
    pub fn evict_below(&mut self, pos: i64) {
        while self.live.front().map(|(p, _)| *p < pos).unwrap_or(false) {
            let (p, v) = self.live.pop_front().expect("checked front");
            self.count -= 1;
            match self.func {
                AggFunc::Count | AggFunc::Min | AggFunc::Max => {}
                AggFunc::Sum | AggFunc::Avg => match v {
                    Value::Int(i) => {
                        self.int_count -= 1;
                        self.sum_i = self.sum_i.wrapping_sub(i);
                        self.sum_f -= i as f64;
                    }
                    Value::Float(f) => self.sum_f -= f,
                    _ => unreachable!("push rejected non-numeric values"),
                },
            }
            if let Some((mp, _)) = self.mono.front() {
                if *mp == p {
                    self.mono.pop_front();
                }
            }
        }
    }

    /// The current aggregate, or `None` when the window is empty.
    pub fn current(&self) -> Option<Value> {
        if self.count == 0 {
            return None;
        }
        Some(match self.func {
            AggFunc::Count => Value::Int(self.count),
            AggFunc::Avg => Value::Float(self.sum_f / self.count as f64),
            AggFunc::Sum => {
                if self.int_count == self.count {
                    Value::Int(self.sum_i)
                } else {
                    Value::Float(self.sum_f)
                }
            }
            AggFunc::Min | AggFunc::Max => {
                self.mono.front().map(|(_, v)| v.clone()).expect("non-empty window")
            }
        })
    }
}

/// Cache-Strategy-A over a sliding window `[i+lo, i+hi]`.
pub struct WindowAggCursor {
    input: Box<dyn Cursor>,
    func: AggFunc,
    attr_index: usize,
    lo: i64,
    hi: i64,
    cache: OpCache,
    /// Incremental accumulator (kept in lock-step with the cache) when the
    /// strategy asks for O(1) slides; otherwise the aggregate is recomputed
    /// from the cache window on every emit, which is bit-for-bit identical
    /// to the reference semantics.
    accumulator: Option<SlidingAccumulator>,
    pending: Option<(i64, Record)>,
    input_done: bool,
    cur: i64,
    span: Span,
}

impl WindowAggCursor {
    /// Cache-Strategy-A over a sliding window; `incremental` switches the
    /// per-emit recompute to O(1) accumulators.
    pub fn new(
        input: Box<dyn Cursor>,
        func: AggFunc,
        attr_index: usize,
        window: Window,
        span: Span,
        incremental: bool,
        stats: ExecStats,
    ) -> Result<WindowAggCursor> {
        let Window::Sliding { lo, hi } = window else {
            return Err(SeqError::Unsupported(
                "WindowAggCursor handles sliding windows; use the cumulative/whole-span cursors"
                    .into(),
            ));
        };
        if !span.is_empty() && !span.is_bounded() {
            return Err(SeqError::Unsupported(
                "stream evaluation of an aggregate needs a bounded output span".into(),
            ));
        }
        let capacity = (hi - lo).unsigned_abs() as usize + 1;
        let (span, cur) = crate::cursor::span_cursor_start(span);
        Ok(WindowAggCursor {
            input,
            func,
            attr_index,
            lo,
            hi,
            cache: OpCache::new(capacity, stats),
            accumulator: incremental.then(|| SlidingAccumulator::new(func)),
            pending: None,
            input_done: false,
            cur,
            span,
        })
    }

    fn pull_input(&mut self) -> Result<Option<(i64, Record)>> {
        if let Some(item) = self.pending.take() {
            return Ok(Some(item));
        }
        if self.input_done {
            return Ok(None);
        }
        match self.input.next()? {
            Some(item) => Ok(Some(item)),
            None => {
                self.input_done = true;
                Ok(None)
            }
        }
    }
}

impl Cursor for WindowAggCursor {
    fn next(&mut self) -> Result<Option<(i64, Record)>> {
        loop {
            if self.span.is_empty() || self.cur > self.span.end() {
                return Ok(None);
            }
            let o = self.cur;
            // Fold every input record visible at o (pos <= o + hi).
            loop {
                match self.pull_input()? {
                    Some((p, r)) if p <= o.saturating_add(self.hi) => {
                        if let Some(acc) = &mut self.accumulator {
                            acc.push(p, r.value(self.attr_index)?)?;
                        }
                        self.cache.push(p, r);
                    }
                    Some(item) => {
                        self.pending = Some(item);
                        break;
                    }
                    None => break,
                }
            }
            // Slide the window: drop records below o + lo.
            self.cache.evict_below(o.saturating_add(self.lo));
            if let Some(acc) = &mut self.accumulator {
                acc.evict_below(o.saturating_add(self.lo));
            }
            self.cur += 1;

            if !self.cache.is_empty() {
                let value = match &self.accumulator {
                    Some(acc) => acc.current(),
                    None => {
                        let values: Vec<Value> = self
                            .cache
                            .range(o.saturating_add(self.lo), o.saturating_add(self.hi))
                            .map(|(_, r)| r.value(self.attr_index).cloned())
                            .collect::<Result<_>>()?;
                        self.func.apply(values.iter())?
                    }
                };
                if let Some(v) = value {
                    return Ok(Some((o, Record::new(vec![v]))));
                }
            }
            // Empty window: skip ahead to the first position whose window can
            // contain the pending input record, instead of walking the gap.
            match (&self.pending, self.input_done) {
                (Some((q, _)), _) => {
                    self.cur = self.cur.max(q - self.hi);
                }
                (None, true) => return Ok(None),
                (None, false) => {
                    // Force a pull on the next iteration.
                }
            }
        }
    }

    fn next_from(&mut self, lower: i64) -> Result<Option<(i64, Record)>> {
        if lower > self.cur {
            self.cur = lower;
            // An input record at p only reaches windows up to o = p - lo, so
            // records below cur + lo can no longer contribute. Delegate the
            // skip to the input instead of draining (and counting) each one.
            let bound = self.cur.saturating_add(self.lo);
            let pending_stale = match &self.pending {
                Some((p, _)) => *p < bound,
                None => true,
            };
            if pending_stale && !self.input_done {
                self.pending = None;
                match self.input.next_from(bound)? {
                    Some(item) => self.pending = Some(item),
                    None => self.input_done = true,
                }
            }
        }
        self.next()
    }
}

/// Cumulative aggregate: the running value over all inputs up to `i`.
/// Incremental by construction (only additions), which is the
/// Cache-Strategy-B analogue for cumulative windows.
pub struct CumulativeAggCursor {
    input: Box<dyn Cursor>,
    attr_index: usize,
    acc: SlidingAccumulator,
    pending: Option<(i64, Record)>,
    input_done: bool,
    cur: i64,
    span: Span,
}

impl CumulativeAggCursor {
    /// Running aggregate from the input's start.
    pub fn new(
        input: Box<dyn Cursor>,
        func: AggFunc,
        attr_index: usize,
        span: Span,
    ) -> Result<CumulativeAggCursor> {
        if !span.is_empty() && !span.is_bounded() {
            return Err(SeqError::Unsupported(
                "stream evaluation of a cumulative aggregate needs a bounded output span".into(),
            ));
        }
        let (span, cur) = crate::cursor::span_cursor_start(span);
        Ok(CumulativeAggCursor {
            input,
            attr_index,
            acc: SlidingAccumulator::new(func),
            pending: None,
            input_done: false,
            cur,
            span,
        })
    }
}

impl Cursor for CumulativeAggCursor {
    fn next(&mut self) -> Result<Option<(i64, Record)>> {
        loop {
            if self.span.is_empty() || self.cur > self.span.end() {
                return Ok(None);
            }
            let o = self.cur;
            loop {
                let item = match self.pending.take() {
                    Some(item) => Some(item),
                    None if self.input_done => None,
                    None => {
                        let nxt = self.input.next()?;
                        if nxt.is_none() {
                            self.input_done = true;
                        }
                        nxt
                    }
                };
                match item {
                    Some((p, r)) if p <= o => self.acc.push(p, r.value(self.attr_index)?)?,
                    Some(item) => {
                        self.pending = Some(item);
                        break;
                    }
                    None => break,
                }
            }
            self.cur += 1;
            if let Some(v) = self.acc.current() {
                return Ok(Some((o, Record::new(vec![v]))));
            }
            // Nothing accumulated yet: jump to the first input position.
            match (&self.pending, self.input_done) {
                (Some((q, _)), _) => self.cur = self.cur.max(*q),
                (None, true) => return Ok(None),
                (None, false) => {}
            }
        }
    }

    fn next_from(&mut self, lower: i64) -> Result<Option<(i64, Record)>> {
        self.cur = self.cur.max(lower);
        self.next()
    }
}

/// Whole-span aggregate: one value, emitted at every position of the output
/// span. The entire input is drained on the first pull.
pub struct WholeSpanAggCursor {
    input: Option<Box<dyn Cursor>>,
    func: AggFunc,
    attr_index: usize,
    value: Option<Value>,
    cur: i64,
    span: Span,
}

impl WholeSpanAggCursor {
    /// One aggregate over the whole input, replicated across the span.
    pub fn new(
        input: Box<dyn Cursor>,
        func: AggFunc,
        attr_index: usize,
        span: Span,
    ) -> Result<WholeSpanAggCursor> {
        if !span.is_empty() && !span.is_bounded() {
            return Err(SeqError::Unsupported(
                "stream evaluation of a whole-span aggregate needs a bounded output span".into(),
            ));
        }
        let (span, cur) = crate::cursor::span_cursor_start(span);
        Ok(WholeSpanAggCursor {
            // Drop the input of an empty-span aggregate outright: the cursor
            // must yield nothing without touching it.
            input: (!span.is_empty()).then_some(input),
            func,
            attr_index,
            value: None,
            cur,
            span,
        })
    }

    fn ensure_value(&mut self) -> Result<()> {
        if let Some(mut input) = self.input.take() {
            let mut values = Vec::new();
            while let Some((_, r)) = input.next()? {
                values.push(r.value(self.attr_index)?.clone());
            }
            self.value = self.func.apply(values.iter())?;
        }
        Ok(())
    }
}

impl Cursor for WholeSpanAggCursor {
    fn next(&mut self) -> Result<Option<(i64, Record)>> {
        self.ensure_value()?;
        let Some(v) = &self.value else { return Ok(None) };
        if self.span.is_empty() || self.cur > self.span.end() {
            return Ok(None);
        }
        let o = self.cur;
        self.cur += 1;
        Ok(Some((o, Record::new(vec![v.clone()]))))
    }

    fn next_from(&mut self, lower: i64) -> Result<Option<(i64, Record)>> {
        self.cur = self.cur.max(lower);
        self.next()
    }
}

/// Vectorized cumulative aggregate: [`CumulativeAggCursor`] batch-at-a-time.
/// The [`SlidingAccumulator`] running state carries across batch boundaries;
/// input values are folded straight out of the buffered batch's column.
pub struct CumulativeAggBatchCursor {
    input: Box<dyn BatchCursor>,
    attr_index: usize,
    acc: SlidingAccumulator,
    in_batch: Option<RecordBatch>,
    in_row: usize,
    input_done: bool,
    cur: i64,
    span: Span,
    batch_size: usize,
}

impl CumulativeAggBatchCursor {
    /// Batched running aggregate from the input's start.
    pub fn new(
        input: Box<dyn BatchCursor>,
        func: AggFunc,
        attr_index: usize,
        span: Span,
        batch_size: usize,
    ) -> Result<CumulativeAggBatchCursor> {
        if !span.is_empty() && !span.is_bounded() {
            return Err(SeqError::Unsupported(
                "stream evaluation of a cumulative aggregate needs a bounded output span".into(),
            ));
        }
        let (span, cur) = crate::cursor::span_cursor_start(span);
        Ok(CumulativeAggBatchCursor {
            input,
            attr_index,
            acc: SlidingAccumulator::new(func),
            in_batch: None,
            in_row: 0,
            input_done: false,
            cur,
            span,
            batch_size,
        })
    }

    /// Position of the next unconsumed input record, pulling a fresh batch
    /// when the buffered one is spent.
    fn peek_pos(&mut self) -> Result<Option<i64>> {
        loop {
            if let Some(b) = &self.in_batch {
                if self.in_row < b.len() {
                    return Ok(Some(b.positions()[self.in_row]));
                }
                self.in_batch = None;
                self.in_row = 0;
            }
            if self.input_done {
                return Ok(None);
            }
            match self.input.next_batch()? {
                Some(b) => {
                    debug_assert!(!b.is_empty());
                    self.in_batch = Some(b);
                    self.in_row = 0;
                }
                None => {
                    self.input_done = true;
                    return Ok(None);
                }
            }
        }
    }

    /// One output value, mirroring [`CumulativeAggCursor::next`].
    fn emit(&mut self) -> Result<Option<(i64, Value)>> {
        loop {
            if self.span.is_empty() || self.cur > self.span.end() {
                return Ok(None);
            }
            let o = self.cur;
            while self.peek_pos()?.is_some_and(|p| p <= o) {
                // Fold a whole strict-equality run (e.g. a decoded RLE run)
                // in one accumulator call instead of per-row pushes.
                let b = self.in_batch.as_ref().expect("peeked");
                let positions = b.positions();
                let col = b.column(self.attr_index)?;
                let i = self.in_row;
                let mut j = i + 1;
                while j < positions.len()
                    && positions[j] <= o
                    && seq_storage::strict_eq(&col[j], &col[i])
                {
                    j += 1;
                }
                self.acc.push_run(&positions[i..j], &col[i])?;
                self.in_row = j;
            }
            self.cur += 1;
            if let Some(v) = self.acc.current() {
                return Ok(Some((o, v)));
            }
            // Nothing accumulated yet: jump to the first input position.
            match self.peek_pos()? {
                Some(q) => self.cur = self.cur.max(q),
                None => return Ok(None),
            }
        }
    }
}

impl BatchCursor for CumulativeAggBatchCursor {
    fn next_batch(&mut self) -> Result<Option<RecordBatch>> {
        let mut out: Option<RecordBatch> = None;
        while out.as_ref().map_or(0, |b| b.len()) < self.batch_size {
            let Some((o, v)) = self.emit()? else { break };
            let dst = out.get_or_insert_with(|| RecordBatch::with_capacity(1, self.batch_size));
            dst.push_single(o, v)?;
        }
        Ok(out)
    }

    fn next_batch_from(&mut self, lower: i64) -> Result<Option<RecordBatch>> {
        // Jump the output position; skipped input still folds into the
        // running state, exactly as the record path's `next_from` does.
        self.cur = self.cur.max(lower);
        self.next_batch()
    }
}

/// Vectorized whole-span aggregate: [`WholeSpanAggCursor`] batch-at-a-time.
/// The input is drained once on the first pull (in the record path's fold
/// order, so float results stay bit-identical) and the single value is
/// replicated across the span in batches.
pub struct WholeSpanAggBatchCursor {
    input: Option<Box<dyn BatchCursor>>,
    func: AggFunc,
    attr_index: usize,
    value: Option<Value>,
    cur: i64,
    span: Span,
    batch_size: usize,
}

impl WholeSpanAggBatchCursor {
    /// Batched whole-span aggregate, replicated across the span.
    pub fn new(
        input: Box<dyn BatchCursor>,
        func: AggFunc,
        attr_index: usize,
        span: Span,
        batch_size: usize,
    ) -> Result<WholeSpanAggBatchCursor> {
        if !span.is_empty() && !span.is_bounded() {
            return Err(SeqError::Unsupported(
                "stream evaluation of a whole-span aggregate needs a bounded output span".into(),
            ));
        }
        let (span, cur) = crate::cursor::span_cursor_start(span);
        Ok(WholeSpanAggBatchCursor {
            // Drop the input of an empty-span aggregate outright: the cursor
            // must yield nothing without touching it.
            input: (!span.is_empty()).then_some(input),
            func,
            attr_index,
            value: None,
            cur,
            span,
            batch_size,
        })
    }

    fn ensure_value(&mut self) -> Result<()> {
        if let Some(mut input) = self.input.take() {
            let mut values = Vec::new();
            while let Some(b) = input.next_batch()? {
                values.extend_from_slice(b.column(self.attr_index)?);
            }
            self.value = self.func.apply(values.iter())?;
        }
        Ok(())
    }
}

impl BatchCursor for WholeSpanAggBatchCursor {
    fn next_batch(&mut self) -> Result<Option<RecordBatch>> {
        self.ensure_value()?;
        let Some(v) = &self.value else { return Ok(None) };
        if self.span.is_empty() || self.cur > self.span.end() {
            return Ok(None);
        }
        let end = self.span.end().min(self.cur.saturating_add(self.batch_size as i64 - 1));
        let mut out = RecordBatch::with_capacity(1, (end - self.cur + 1) as usize);
        for o in self.cur..=end {
            out.push_single(o, v.clone())?;
        }
        self.cur = end + 1;
        Ok(Some(out))
    }

    fn next_batch_from(&mut self, lower: i64) -> Result<Option<RecordBatch>> {
        self.cur = self.cur.max(lower);
        self.next_batch()
    }
}

/// Probed access to an aggregate: compute the window at `pos` by probing the
/// input position by position (the naive algorithm; §4.1.2 prices this as
/// the probed input cost times the scope size).
pub struct AggProbe {
    input: Box<dyn PointAccess>,
    func: AggFunc,
    attr_index: usize,
    window: Window,
    input_span: Span,
    span: Span,
    stats: ExecStats,
}

impl AggProbe {
    /// Probed aggregate: per-position window probing (§4.1.2's naive cost).
    pub fn new(
        input: Box<dyn PointAccess>,
        func: AggFunc,
        attr_index: usize,
        window: Window,
        input_span: Span,
        span: Span,
        stats: ExecStats,
    ) -> AggProbe {
        AggProbe { input, func, attr_index, window, input_span, span, stats }
    }
}

impl PointAccess for AggProbe {
    fn get(&mut self, pos: i64) -> Result<Option<Record>> {
        if !self.span.contains(pos) {
            return Ok(None);
        }
        let probe_span = match self.window {
            Window::Sliding { lo, hi } => Span::new(pos.saturating_add(lo), pos.saturating_add(hi))
                .intersect(&self.input_span),
            Window::Cumulative => {
                Span::new(self.input_span.start(), pos).intersect(&self.input_span)
            }
            Window::WholeSpan => self.input_span,
        };
        if !probe_span.is_empty() && !probe_span.is_bounded() {
            return Err(SeqError::Unsupported("probed aggregate over an unbounded window".into()));
        }
        let mut values = Vec::new();
        for p in probe_span.positions() {
            self.stats.record_naive_walk_step();
            if let Some(r) = self.input.get(p)? {
                values.push(r.value(self.attr_index)?.clone());
            }
        }
        Ok(self.func.apply(values.iter())?.map(|v| Record::new(vec![v])))
    }
}

/// The naive algorithm as a stream: per-output-position probing.
pub struct NaiveAggCursor {
    probe: AggProbe,
    cur: i64,
    span: Span,
}

impl NaiveAggCursor {
    /// Naive per-output-position window probing as a stream.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        input: Box<dyn PointAccess>,
        func: AggFunc,
        attr_index: usize,
        window: Window,
        input_span: Span,
        span: Span,
        stats: ExecStats,
    ) -> Result<NaiveAggCursor> {
        if !span.is_empty() && !span.is_bounded() {
            return Err(SeqError::Unsupported(
                "naive evaluation of an aggregate needs a bounded output span".into(),
            ));
        }
        let (span, cur) = crate::cursor::span_cursor_start(span);
        Ok(NaiveAggCursor {
            probe: AggProbe::new(input, func, attr_index, window, input_span, span, stats),
            cur,
            span,
        })
    }
}

impl Cursor for NaiveAggCursor {
    fn next(&mut self) -> Result<Option<(i64, Record)>> {
        while !self.span.is_empty() && self.cur <= self.span.end() {
            let o = self.cur;
            self.cur += 1;
            if let Some(rec) = self.probe.get(o)? {
                return Ok(Some((o, rec)));
            }
        }
        Ok(None)
    }

    fn next_from(&mut self, lower: i64) -> Result<Option<(i64, Record)>> {
        self.cur = self.cur.max(lower);
        self.next()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cursor::{BaseProbe, BaseStreamCursor};
    use seq_core::{record, schema, AttrType, BaseSequence};
    use seq_storage::Catalog;

    fn catalog(entries: &[(i64, f64)]) -> Catalog {
        let mut c = Catalog::new();
        c.set_page_capacity(4);
        let base = BaseSequence::from_entries(
            schema(&[("time", AttrType::Int), ("close", AttrType::Float)]),
            entries.iter().map(|&(p, v)| (p, record![p, v])).collect(),
        )
        .unwrap();
        c.register("S", &base);
        c
    }

    fn collect(mut cur: impl Cursor) -> Vec<(i64, Value)> {
        let mut out = Vec::new();
        while let Some((p, r)) = cur.next().unwrap() {
            out.push((p, r.value(0).unwrap().clone()));
        }
        out
    }

    #[test]
    fn accumulator_sum_and_count() {
        let mut acc = SlidingAccumulator::new(AggFunc::Sum);
        acc.push(1, &Value::Float(1.0)).unwrap();
        acc.push(2, &Value::Float(2.0)).unwrap();
        acc.push(3, &Value::Float(4.0)).unwrap();
        assert_eq!(acc.current(), Some(Value::Float(7.0)));
        acc.evict_below(2);
        assert_eq!(acc.current(), Some(Value::Float(6.0)));
        acc.evict_below(10);
        assert_eq!(acc.current(), None);
        assert!(acc.is_empty());
    }

    #[test]
    fn accumulator_int_sum_stays_int() {
        let mut acc = SlidingAccumulator::new(AggFunc::Sum);
        acc.push(1, &Value::Int(2)).unwrap();
        acc.push(2, &Value::Int(3)).unwrap();
        assert_eq!(acc.current(), Some(Value::Int(5)));
        acc.push(3, &Value::Float(0.5)).unwrap();
        assert_eq!(acc.current(), Some(Value::Float(5.5)));
        acc.evict_below(3);
        assert_eq!(acc.current(), Some(Value::Float(0.5)));
    }

    #[test]
    fn accumulator_monotonic_min_max() {
        let mut mn = SlidingAccumulator::new(AggFunc::Min);
        let mut mx = SlidingAccumulator::new(AggFunc::Max);
        for (p, v) in [(1, 3.0), (2, 1.0), (3, 2.0), (4, 5.0)] {
            mn.push(p, &Value::Float(v)).unwrap();
            mx.push(p, &Value::Float(v)).unwrap();
        }
        assert_eq!(mn.current(), Some(Value::Float(1.0)));
        assert_eq!(mx.current(), Some(Value::Float(5.0)));
        mn.evict_below(3);
        mx.evict_below(3);
        assert_eq!(mn.current(), Some(Value::Float(2.0)));
        assert_eq!(mx.current(), Some(Value::Float(5.0)));
    }

    #[test]
    fn push_run_matches_individual_pushes() {
        // Runs of strictly-equal values (as decoded from RLE) folded in one
        // call must leave the accumulator in exactly the state n individual
        // pushes would, through partial evictions cutting runs in half.
        let runs: Vec<(Vec<i64>, Value)> = vec![
            (vec![1, 2, 3], Value::Int(7)),
            (vec![4], Value::Float(0.125)),
            (vec![5, 6], Value::Float(0.125)),
            (vec![7, 8, 9, 10], Value::Int(-2)),
            (vec![12, 13], Value::Int(7)),
        ];
        for func in [AggFunc::Sum, AggFunc::Avg, AggFunc::Count, AggFunc::Min, AggFunc::Max] {
            let mut one = SlidingAccumulator::new(func);
            let mut folded = SlidingAccumulator::new(func);
            for (positions, v) in &runs {
                for &p in positions {
                    one.push(p, v).unwrap();
                }
                folded.push_run(positions, v).unwrap();
                assert_eq!(one.current(), folded.current(), "{func} after run at {positions:?}");
                assert_eq!(one.len(), folded.len(), "{func}");
            }
            // Evict through the middle of the first run, then past a whole
            // Min/Max-collapsed run, comparing at every step.
            for below in [2, 5, 9, 14] {
                one.evict_below(below);
                folded.evict_below(below);
                assert_eq!(one.current(), folded.current(), "{func} evicted below {below}");
                assert_eq!(one.len(), folded.len(), "{func}");
            }
            assert!(folded.is_empty());
        }
        // Non-numeric runs fail for Sum/Avg exactly as single pushes do.
        let mut acc = SlidingAccumulator::new(AggFunc::Sum);
        assert!(acc.push_run(&[1, 2], &Value::str("x")).is_err());
        // Count accepts any variant; an empty run is a no-op.
        let mut cnt = SlidingAccumulator::new(AggFunc::Count);
        cnt.push_run(&[1, 2], &Value::str("x")).unwrap();
        cnt.push_run(&[], &Value::Int(0)).unwrap();
        assert_eq!(cnt.current(), Some(Value::Int(2)));
    }

    #[test]
    fn accumulator_rejects_non_numeric_sum() {
        let mut acc = SlidingAccumulator::new(AggFunc::Avg);
        assert!(acc.push(1, &Value::str("x")).is_err());
    }

    #[test]
    fn window_sum_matches_hand_computation() {
        // Figure 5.A shape: moving sum over a trailing window of 3.
        let c = catalog(&[(1, 1.0), (2, 2.0), (4, 4.0)]);
        let store = c.get("S").unwrap();
        let cur = WindowAggCursor::new(
            Box::new(BaseStreamCursor::new(&store, Span::new(1, 4))),
            AggFunc::Sum,
            1,
            Window::trailing(3),
            Span::new(1, 6),
            false,
            ExecStats::new(),
        )
        .unwrap();
        let out = collect(cur);
        let expect = vec![
            (1, Value::Float(1.0)),
            (2, Value::Float(3.0)),
            (3, Value::Float(3.0)),
            (4, Value::Float(6.0)),
            (5, Value::Float(4.0)),
            (6, Value::Float(4.0)),
        ];
        assert_eq!(out, expect);
    }

    #[test]
    fn incremental_matches_recompute() {
        let data: Vec<(i64, f64)> =
            (1..=60).filter(|p| p % 3 != 0).map(|p| (p, (p as f64) * 0.25)).collect();
        let c = catalog(&data);
        let store = c.get("S").unwrap();
        for func in [AggFunc::Sum, AggFunc::Avg, AggFunc::Count, AggFunc::Min, AggFunc::Max] {
            let mk = |incremental: bool| {
                WindowAggCursor::new(
                    Box::new(BaseStreamCursor::new(&store, Span::new(1, 60))),
                    func,
                    1,
                    Window::Sliding { lo: -4, hi: 0 },
                    Span::new(1, 70),
                    incremental,
                    ExecStats::new(),
                )
                .unwrap()
            };
            let plain = collect(mk(false));
            let inc = collect(mk(true));
            assert_eq!(plain.len(), inc.len(), "{func}");
            for ((p1, v1), (p2, v2)) in plain.iter().zip(inc.iter()) {
                assert_eq!(p1, p2, "{func}");
                let a = v1.as_f64().unwrap();
                let b = v2.as_f64().unwrap();
                assert!((a - b).abs() < 1e-9, "{func} at {p1}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn leading_window_lookahead() {
        let c = catalog(&[(1, 1.0), (2, 2.0), (3, 3.0)]);
        let store = c.get("S").unwrap();
        let cur = WindowAggCursor::new(
            Box::new(BaseStreamCursor::new(&store, Span::new(1, 3))),
            AggFunc::Sum,
            1,
            Window::Sliding { lo: 0, hi: 1 },
            Span::new(0, 3),
            false,
            ExecStats::new(),
        )
        .unwrap();
        let out = collect(cur);
        let expect = vec![
            (0, Value::Float(1.0)),
            (1, Value::Float(3.0)),
            (2, Value::Float(5.0)),
            (3, Value::Float(3.0)),
        ];
        assert_eq!(out, expect);
    }

    #[test]
    fn cumulative_running_sum() {
        let c = catalog(&[(2, 1.0), (4, 2.0), (6, 4.0)]);
        let store = c.get("S").unwrap();
        let cur = CumulativeAggCursor::new(
            Box::new(BaseStreamCursor::new(&store, Span::new(2, 6))),
            AggFunc::Sum,
            1,
            Span::new(1, 8),
        )
        .unwrap();
        let out = collect(cur);
        let expect = vec![
            (2, Value::Float(1.0)),
            (3, Value::Float(1.0)),
            (4, Value::Float(3.0)),
            (5, Value::Float(3.0)),
            (6, Value::Float(7.0)),
            (7, Value::Float(7.0)),
            (8, Value::Float(7.0)),
        ];
        assert_eq!(out, expect);
    }

    #[test]
    fn whole_span_constant_output() {
        let c = catalog(&[(1, 1.0), (2, 9.0), (3, 4.0)]);
        let store = c.get("S").unwrap();
        let cur = WholeSpanAggCursor::new(
            Box::new(BaseStreamCursor::new(&store, Span::new(1, 3))),
            AggFunc::Max,
            1,
            Span::new(1, 3),
        )
        .unwrap();
        let out = collect(cur);
        assert_eq!(
            out,
            vec![(1, Value::Float(9.0)), (2, Value::Float(9.0)), (3, Value::Float(9.0))]
        );
    }

    #[test]
    fn naive_matches_cache_a() {
        let data: Vec<(i64, f64)> =
            (1..=40).filter(|p| p % 4 != 0).map(|p| (p, p as f64)).collect();
        let c = catalog(&data);
        let store = c.get("S").unwrap();
        let span = Span::new(1, 45);
        let input_span = Span::new(1, 39);

        let cache_a = WindowAggCursor::new(
            Box::new(BaseStreamCursor::new(&store, input_span)),
            AggFunc::Sum,
            1,
            Window::trailing(6),
            span,
            false,
            ExecStats::new(),
        )
        .unwrap();
        let naive_stats = ExecStats::new();
        let naive = NaiveAggCursor::new(
            Box::new(BaseProbe::new(store.clone(), input_span)),
            AggFunc::Sum,
            1,
            Window::trailing(6),
            input_span,
            span,
            naive_stats.clone(),
        )
        .unwrap();
        assert_eq!(collect(cache_a), collect(naive));
        // Naive probes ~6 positions per output; Cache-A touches each input
        // record once.
        assert!(naive_stats.snapshot().naive_walk_steps > 6 * 30);
    }

    #[test]
    fn agg_probe_point_lookup() {
        let c = catalog(&[(1, 1.0), (2, 2.0), (3, 3.0)]);
        let store = c.get("S").unwrap();
        let mut probe = AggProbe::new(
            Box::new(BaseProbe::new(store, Span::new(1, 3))),
            AggFunc::Avg,
            1,
            Window::trailing(2),
            Span::new(1, 3),
            Span::new(1, 4),
            ExecStats::new(),
        );
        let r = probe.get(2).unwrap().unwrap();
        assert_eq!(r.value(0).unwrap(), &Value::Float(1.5));
        let r = probe.get(4).unwrap().unwrap();
        assert_eq!(r.value(0).unwrap(), &Value::Float(3.0));
        assert!(probe.get(9).unwrap().is_none());
    }

    #[test]
    fn sparse_input_skips_empty_stretches() {
        // Two clusters far apart: the cursor must not walk the whole gap.
        let c = catalog(&[(1, 1.0), (1_000_000, 5.0)]);
        let store = c.get("S").unwrap();
        let cur = WindowAggCursor::new(
            Box::new(BaseStreamCursor::new(&store, Span::new(1, 1_000_000))),
            AggFunc::Sum,
            1,
            Window::trailing(2),
            Span::new(1, 1_000_001),
            false,
            ExecStats::new(),
        )
        .unwrap();
        let out = collect(cur);
        // Outputs: positions 1,2 (window sees record at 1), then 1e6, 1e6+1.
        assert_eq!(out.len(), 4);
        assert_eq!(out[2].0, 1_000_000);
    }

    fn collect_batches(mut cur: impl BatchCursor) -> Vec<(i64, Value)> {
        let mut out = Vec::new();
        while let Some(b) = cur.next_batch().unwrap() {
            assert!(!b.is_empty());
            for row in b.rows() {
                out.push((row.position(), row.value(0).unwrap().clone()));
            }
        }
        out
    }

    fn batch_input(c: &Catalog, span: Span, batch_size: usize) -> Box<dyn BatchCursor> {
        let store = c.get("S").unwrap();
        Box::new(crate::batch::BaseBatchCursor::new(
            &store,
            span,
            batch_size,
            seq_storage::ColumnSet::All,
        ))
    }

    #[test]
    fn batched_cumulative_matches_record_path() {
        let c = catalog(&[(2, 1.0), (4, 2.0), (6, 4.0)]);
        let store = c.get("S").unwrap();
        let expect = collect(
            CumulativeAggCursor::new(
                Box::new(BaseStreamCursor::new(&store, Span::new(2, 6))),
                AggFunc::Sum,
                1,
                Span::new(1, 8),
            )
            .unwrap(),
        );
        for bs in [1, 2, 64] {
            let cur = CumulativeAggBatchCursor::new(
                batch_input(&c, Span::new(2, 6), bs),
                AggFunc::Sum,
                1,
                Span::new(1, 8),
                bs,
            )
            .unwrap();
            assert_eq!(collect_batches(cur), expect, "batch_size {bs}");
        }
        // Mid-stream skip mirrors the record path's next_from.
        let mut cur = CumulativeAggBatchCursor::new(
            batch_input(&c, Span::new(2, 6), 2),
            AggFunc::Sum,
            1,
            Span::new(1, 8),
            2,
        )
        .unwrap();
        let b = cur.next_batch_from(5).unwrap().unwrap();
        assert_eq!(b.first_pos(), Some(5));
        assert_eq!(b.rows().next().unwrap().value(0).unwrap(), &Value::Float(3.0));
    }

    #[test]
    fn batched_whole_span_matches_record_path() {
        let c = catalog(&[(1, 1.0), (2, 9.0), (3, 4.0)]);
        let store = c.get("S").unwrap();
        let expect = collect(
            WholeSpanAggCursor::new(
                Box::new(BaseStreamCursor::new(&store, Span::new(1, 3))),
                AggFunc::Max,
                1,
                Span::new(1, 3),
            )
            .unwrap(),
        );
        for bs in [1, 2, 64] {
            let cur = WholeSpanAggBatchCursor::new(
                batch_input(&c, Span::new(1, 3), bs),
                AggFunc::Max,
                1,
                Span::new(1, 3),
                bs,
            )
            .unwrap();
            assert_eq!(collect_batches(cur), expect, "batch_size {bs}");
        }
        let mut cur = WholeSpanAggBatchCursor::new(
            batch_input(&c, Span::new(1, 3), 4),
            AggFunc::Max,
            1,
            Span::new(1, 3),
            4,
        )
        .unwrap();
        let b = cur.next_batch_from(2).unwrap().unwrap();
        assert_eq!(b.positions(), &[2, 3]);
    }
}
