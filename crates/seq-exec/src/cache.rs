//! Operator caches (§3.4–3.5).
//!
//! "Our model of a sequence query evaluation associates a cache (a randomly
//! accessible buffer) with each basic operator. Caches operate on a FIFO
//! basis and can store records for efficient subsequent retrieval. Some
//! mechanism is provided for accessing the cached records associatively by
//! position." (§3.4)
//!
//! [`OpCache`] is that buffer: a bounded FIFO of `(position, record)` pairs
//! in increasing position order, with associative lookup by position. A query
//! evaluation is *cache-finite* when every operator's cache capacity is a
//! constant independent of the data (Definition 3.2); the capacity here is
//! fixed at construction, so using `OpCache` everywhere makes an evaluation
//! cache-finite by construction.

use std::collections::VecDeque;

use seq_core::Record;

use crate::stats::ExecStats;

/// A bounded FIFO record cache with associative positional lookup.
#[derive(Debug)]
pub struct OpCache {
    entries: VecDeque<(i64, Record)>,
    capacity: usize,
    stats: ExecStats,
}

impl OpCache {
    /// A cache holding at most `capacity` records (Cache-Strategy-A sizes
    /// this as the operator's effective scope; Cache-Strategy-B as the value
    /// offset magnitude).
    pub fn new(capacity: usize, stats: ExecStats) -> OpCache {
        assert!(capacity > 0, "operator caches hold at least one record");
        OpCache { entries: VecDeque::with_capacity(capacity), capacity, stats }
    }

    /// Maximum records the cache holds.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Records currently cached.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the cache holds no records.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert a record at a position greater than any cached position,
    /// evicting FIFO-style when full.
    pub fn push(&mut self, pos: i64, rec: Record) {
        debug_assert!(
            self.entries.back().map(|(p, _)| *p < pos).unwrap_or(true),
            "cache pushes must be in increasing position order"
        );
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
        }
        self.entries.push_back((pos, rec));
        self.stats.record_cache_store();
    }

    /// Evict cached entries at positions strictly below `pos` (the window
    /// slid past them).
    pub fn evict_below(&mut self, pos: i64) {
        while self.entries.front().map(|(p, _)| *p < pos).unwrap_or(false) {
            self.entries.pop_front();
        }
    }

    /// Associative lookup by exact position.
    pub fn get(&self, pos: i64) -> Option<&Record> {
        self.stats.record_cache_probe();
        // Entries are position-sorted: binary search.
        self.entries.binary_search_by_key(&pos, |(p, _)| *p).ok().map(|i| &self.entries[i].1)
    }

    /// Oldest cached entry.
    pub fn front(&self) -> Option<(i64, &Record)> {
        self.entries.front().map(|(p, r)| (*p, r))
    }

    /// Newest cached entry.
    pub fn back(&self) -> Option<(i64, &Record)> {
        self.entries.back().map(|(p, r)| (*p, r))
    }

    /// The `n`-th newest entry (0 = newest). Cache-Strategy-B retrieves the
    /// |offset|-th most recent input this way.
    pub fn from_back(&self, n: usize) -> Option<(i64, &Record)> {
        let len = self.entries.len();
        if n >= len {
            return None;
        }
        self.entries.get(len - 1 - n).map(|(p, r)| (*p, r))
    }

    /// Iterate cached entries whose positions fall within `[lo, hi]`, in
    /// increasing position order (Cache-Strategy-A's window read).
    pub fn range(&self, lo: i64, hi: i64) -> impl Iterator<Item = (i64, &Record)> {
        self.stats.record_cache_probe();
        self.entries
            .iter()
            .skip_while(move |(p, _)| *p < lo)
            .take_while(move |(p, _)| *p <= hi)
            .map(|(p, r)| (*p, r))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seq_core::record;

    fn cache(cap: usize) -> OpCache {
        OpCache::new(cap, ExecStats::new())
    }

    #[test]
    fn fifo_eviction() {
        let mut c = cache(3);
        for p in 1..=5 {
            c.push(p, record![p]);
        }
        assert_eq!(c.len(), 3);
        assert!(c.get(2).is_none()); // evicted
        assert!(c.get(3).is_some());
        assert_eq!(c.front().unwrap().0, 3);
        assert_eq!(c.back().unwrap().0, 5);
    }

    #[test]
    fn associative_lookup() {
        let mut c = cache(8);
        c.push(10, record![10i64]);
        c.push(20, record![20i64]);
        assert!(c.get(10).is_some());
        assert!(c.get(15).is_none());
        assert_eq!(c.get(20).unwrap().value(0).unwrap().as_i64().unwrap(), 20);
    }

    #[test]
    fn from_back_indexes_recency() {
        let mut c = cache(4);
        c.push(1, record![1i64]);
        c.push(2, record![2i64]);
        c.push(3, record![3i64]);
        assert_eq!(c.from_back(0).unwrap().0, 3);
        assert_eq!(c.from_back(2).unwrap().0, 1);
        assert!(c.from_back(3).is_none());
    }

    #[test]
    fn evict_below_slides_window() {
        let mut c = cache(10);
        for p in 1..=6 {
            c.push(p, record![p]);
        }
        c.evict_below(4);
        assert_eq!(c.len(), 3);
        assert_eq!(c.front().unwrap().0, 4);
    }

    #[test]
    fn range_reads_window() {
        let mut c = cache(10);
        for p in [1, 3, 5, 7, 9] {
            c.push(p, record![p]);
        }
        let got: Vec<i64> = c.range(3, 7).map(|(p, _)| p).collect();
        assert_eq!(got, vec![3, 5, 7]);
        assert_eq!(c.range(10, 20).count(), 0);
    }

    #[test]
    fn stats_count_stores_and_probes() {
        let stats = ExecStats::new();
        let mut c = OpCache::new(4, stats.clone());
        c.push(1, record![1i64]);
        c.push(2, record![2i64]);
        c.get(1);
        let snap = stats.snapshot();
        assert_eq!(snap.cache_stores, 2);
        assert_eq!(snap.cache_probes, 1);
    }
}
