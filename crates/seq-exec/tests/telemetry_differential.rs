//! The always-on telemetry registry must agree with itself across
//! execution paths: running the same plan down the tuple, batch, and
//! morsel-parallel entry points (each into its own fresh registry) must
//! fold *identical* values for every mode-invariant counter — rows_out,
//! page accesses, pages_skipped, probes, predicate_evals — because the
//! registry records counter *deltas* of the shared executor/storage
//! atomics, which the equivalence suites already hold to exactness.
//! (`stream_records` and `bytes_decoded` are deliberately exempt, like in
//! the mixed-mode suite: the batch lock-step join seeks across gaps, and
//! morsel workers re-decode overhang pages.)
//!
//! Also covered here: telemetry is on by default and detachable, shared
//! registries accumulate across queries and paths, failed queries tally
//! without folding counters, and both export formats stay valid.

use std::sync::Arc;

use seq_core::{record, schema, AttrType, BaseSequence, Span};
use seq_exec::{
    execute, execute_batched_with, execute_parallel_with, AggStrategy, ExecContext,
    MetricsSnapshot, ParallelConfig, PhysNode, PhysPlan, QueryPath, SessionMetrics,
};
use seq_ops::{AggFunc, Expr, Window};
use seq_storage::Catalog;
use seq_workload::Rng;

/// A dense 600-position sequence at 16 records per page: every page covers
/// exactly 16 positions, so page-multiple morsels align with page
/// boundaries and no two workers share a boundary page (a split page would
/// be read once per adjacent worker, making page folds worker-dependent —
/// real behavior, but not the exactness this suite asserts).
fn catalog(seed: u64) -> Catalog {
    let mut rng = Rng::seed_from_u64(seed);
    let mut c = Catalog::new();
    c.set_page_capacity(16);
    let sch = schema(&[("time", AttrType::Int), ("close", AttrType::Float)]);
    let entries =
        (1i64..=600).map(|p| (p, record![p, rng.gen_range(0.0..100.0)])).collect::<Vec<_>>();
    let base = BaseSequence::from_entries(sch, entries).unwrap();
    c.register("D", &base);
    c
}

/// select(close > 35) → project: selective and position-partitionable with
/// zero operator overhang, so *every* fold — pages, predicates, rows — must
/// be identical across the tuple, batch, and parallel paths. (Windowed
/// plans widen each morsel's input by the window overhang, legitimately
/// re-reading boundary pages per worker; the equivalence suites cover those
/// under their own taxonomy.)
fn plan() -> PhysPlan {
    let span = Span::new(1, 600);
    let sch = schema(&[("time", AttrType::Int), ("close", AttrType::Float)]);
    let node = PhysNode::Project {
        input: Box::new(PhysNode::Select {
            input: Box::new(PhysNode::Base { name: "D".into(), span }),
            predicate: Expr::attr("close").gt(Expr::lit(35.0)).bind(&sch).unwrap(),
            span,
        }),
        indices: vec![1],
        span,
    };
    PhysPlan::new(node, span)
}

/// The same shape with a 9-wide trailing average on top: morsel overhang
/// makes page/predicate folds worker-dependent, but rows and query counts
/// stay invariant — used by the accumulation tests.
fn windowed_plan() -> PhysPlan {
    let span = Span::new(1, 600);
    let inner = plan().root;
    let node = PhysNode::Aggregate {
        input: Box::new(inner),
        func: AggFunc::Avg,
        attr_index: 0,
        window: Window::trailing(9),
        strategy: AggStrategy::CacheA,
        span,
    };
    PhysPlan::new(node, span)
}

/// The counters the paths must agree on exactly (the mixed-mode taxonomy).
/// Multiple workers over morsels of 160 positions (exactly ten 16-position
/// pages): genuinely multi-morsel on the 600-position span (default morsel
/// sizing would degenerate to one morsel and the batch path), and
/// page-aligned per the catalog's layout so page folds stay exact.
fn par_config(workers: usize) -> ParallelConfig {
    ParallelConfig { workers, batch_size: 32, morsel_positions: 160 }
}

fn invariant(snap: &MetricsSnapshot) -> [(&'static str, u64); 6] {
    [
        ("queries", snap.queries),
        ("rows_out", snap.rows_out),
        ("page_accesses", snap.page_reads + snap.page_hits),
        ("pages_skipped", snap.pages_skipped),
        ("probes", snap.probes),
        ("predicate_evals", snap.predicate_evals),
    ]
}

#[test]
fn paths_fold_identical_mode_invariant_counters() {
    let catalog = catalog(0x7e1e);
    let plan = plan();

    let run = |path: QueryPath| -> (Vec<(i64, seq_core::Record)>, MetricsSnapshot) {
        let metrics = Arc::new(SessionMetrics::new());
        let mut ctx = ExecContext::new(&catalog);
        ctx.share_telemetry(&metrics);
        let rows = match path {
            QueryPath::Tuple => execute(&plan, &ctx).unwrap(),
            QueryPath::Batch => execute_batched_with(&plan, &ctx, 64).unwrap(),
            QueryPath::Parallel => execute_parallel_with(&plan, &ctx, par_config(4)).unwrap(),
            QueryPath::Probe => unreachable!(),
        };
        (rows, metrics.snapshot())
    };

    let (tuple_rows, tuple) = run(QueryPath::Tuple);
    let (batch_rows, batch) = run(QueryPath::Batch);
    let (par_rows, parallel) = run(QueryPath::Parallel);

    assert_eq!(tuple_rows, batch_rows);
    assert_eq!(tuple_rows, par_rows);
    assert!(!tuple_rows.is_empty());

    assert_eq!(invariant(&tuple), invariant(&batch), "tuple vs batch folds diverged");
    assert_eq!(invariant(&tuple), invariant(&parallel), "tuple vs parallel folds diverged");

    // Each registry attributed its one query to the right path...
    assert_eq!(tuple.path_counts, [1, 0, 0, 0]);
    assert_eq!(batch.path_counts, [0, 1, 0, 0]);
    assert_eq!(parallel.path_counts, [0, 0, 1, 0]);
    // ...with exactly one execute-latency sample each, and per-worker morsel
    // tees only on the genuinely parallel run.
    assert_eq!(tuple.execute.count, 1);
    assert_eq!(parallel.execute.count, 1);
    assert_eq!(tuple.morsels, 0);
    assert!(parallel.morsels > 1, "multi-morsel run must tee per-morsel samples");
    assert_eq!(parallel.morsel.count, parallel.morsels);
}

#[test]
fn telemetry_is_on_by_default_and_detachable() {
    let catalog = catalog(0xdefa);
    let plan = plan();

    let ctx = ExecContext::new(&catalog);
    let metrics = ctx.telemetry.clone().expect("telemetry must be on by default");
    let rows = execute(&plan, &ctx).unwrap();
    let snap = metrics.snapshot();
    assert_eq!(snap.queries, 1);
    assert_eq!(snap.rows_out, rows.len() as u64);

    let mut ctx = ExecContext::new(&catalog);
    ctx.telemetry = None;
    let detached = execute(&plan, &ctx).unwrap();
    assert_eq!(rows, detached, "detaching telemetry must not change results");
}

#[test]
fn shared_registry_accumulates_across_paths_and_queries() {
    let catalog = catalog(0x5a5a);
    let plan = windowed_plan();
    let metrics = Arc::new(SessionMetrics::new());

    let mut ctx = ExecContext::new(&catalog);
    ctx.share_telemetry(&metrics);
    let rows = execute(&plan, &ctx).unwrap();
    let mut ctx = ExecContext::new(&catalog);
    ctx.share_telemetry(&metrics);
    execute_batched_with(&plan, &ctx, 64).unwrap();
    let mut ctx = ExecContext::new(&catalog);
    ctx.share_telemetry(&metrics);
    execute_parallel_with(&plan, &ctx, par_config(4)).unwrap();

    let snap = metrics.snapshot();
    assert_eq!(snap.queries, 3);
    assert_eq!(snap.path_counts, [1, 1, 1, 0]);
    assert_eq!(snap.rows_out, 3 * rows.len() as u64);
    assert_eq!(snap.execute.count, 3);
    assert!(snap.trace_recorded >= 3, "each query records a trace span");

    // A failing query (unknown base sequence) tallies the failure but folds
    // no counter deltas.
    let span = Span::new(1, 600);
    let missing = PhysPlan::new(PhysNode::Base { name: "NOPE".into(), span }, span);
    let mut ctx = ExecContext::new(&catalog);
    ctx.share_telemetry(&metrics);
    assert!(execute(&missing, &ctx).is_err());
    let snap = metrics.snapshot();
    assert_eq!(snap.queries, 4);
    assert_eq!(snap.queries_failed, 1);
    assert_eq!(snap.rows_out, 3 * rows.len() as u64, "failed query must not fold rows");
}

#[test]
fn exports_remain_valid_after_mixed_traffic() {
    let catalog = catalog(0xe4b0);
    let plan = plan();
    let metrics = Arc::new(SessionMetrics::new());
    for workers in [1usize, 4] {
        let mut ctx = ExecContext::new(&catalog);
        ctx.share_telemetry(&metrics);
        execute_parallel_with(&plan, &ctx, par_config(workers)).unwrap();
    }
    let trace = metrics.trace_to_chrome_json();
    assert!(trace.contains("\"traceEvents\""));
    assert!(trace.contains("\"ph\": \"X\""));
    assert_eq!(trace.matches('{').count(), trace.matches('}').count());
    let json = metrics.to_json(None);
    assert!(json.contains("\"metrics_version\": 1"));
    assert_eq!(json.matches('{').count(), json.matches('}').count());
    // Degenerate parallel (workers=1) records through the batch entry; the
    // 4-worker run records as parallel — never both for one query.
    let snap = metrics.snapshot();
    assert_eq!(snap.queries, 2);
    assert_eq!(snap.path_counts, [0, 1, 1, 0]);
}
