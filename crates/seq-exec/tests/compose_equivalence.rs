//! Differential property suite for the non-unit-scope batch kernels.
//!
//! Random plans built from Compose (all three join strategies, with and
//! without residual predicates), Cache-B value offsets, and
//! cumulative/whole-span aggregates — nested to several levels over
//! catalogs of varying density — are executed on the record-at-a-time
//! path, the vectorized path (batch sizes from 1 to far-larger-than-the-
//! input), and the morsel-parallel path where the plan partitions. Every
//! path must produce bit-identical rows, and the operator-level counters
//! (predicate evaluations, cache traffic, probes, output records) must be
//! *exactly* equal — the batch path changes update granularity, never what
//! is charged. Stream-side storage traffic is held to the documented
//! read-ahead slack, except under lock-step merges of poorly correlated
//! inputs where batch-granular merging amplifies reads (see
//! `batch_equivalence.rs` for the rationale).

use seq_core::{record, schema, AttrType, BaseSequence, Span};
use seq_exec::{
    execute, execute_batched_with, execute_parallel_with, AggStrategy, ExecContext, JoinStrategy,
    ParallelConfig, PhysNode, PhysPlan, ValueOffsetStrategy,
};
use seq_ops::{AggFunc, Expr, Window};
use seq_storage::Catalog;
use seq_workload::Rng;

const PAGE_CAPACITY: u64 = 16;

fn span() -> Span {
    Span::new(1, 400)
}

/// Six sequences: four spanning the density spectrum, so lock-step
/// frontiers range from always-aligned to rarely-aligned and probe hit
/// rates from near-1 to near-0, plus two shaped so their value columns
/// land on encoded pages (`R` holds 24-position constant runs → RLE, `D`
/// draws from six fixed levels → dictionary). Any batch kernel that takes
/// the in-place path over those encodings must still agree bit-for-bit
/// with the record path.
fn catalog(seed: u64) -> Catalog {
    let mut rng = Rng::seed_from_u64(seed);
    let mut c = Catalog::new();
    c.set_page_capacity(PAGE_CAPACITY as usize);
    let sch = schema(&[("time", AttrType::Int), ("close", AttrType::Float)]);
    for (name, density) in
        [("H", 0.95), ("M", 0.55), ("L", 0.20), ("T", 0.06), ("R", 0.90), ("D", 0.60)]
    {
        let mut entries = Vec::new();
        for p in 1i64..=400 {
            if rng.gen_bool(density) {
                let v = match name {
                    "R" => (p / 24) as f64 * 4.0 - 30.0,
                    "D" => rng.gen_range(0..6u32) as f64 * 17.5 - 35.0,
                    _ => rng.gen_range(-50.0..100.0),
                };
                entries.push((p, record![p, v]));
            }
        }
        let seq = BaseSequence::from_entries(sch.clone(), entries).unwrap();
        c.register(name, &seq);
    }
    c
}

fn base(rng: &mut Rng) -> (PhysNode, usize) {
    let name = ["H", "M", "L", "T", "R", "D"][rng.gen_range(0..6u32) as usize];
    (PhysNode::Base { name: name.into(), span: span() }, 2)
}

/// The shaped sequences must actually encode, or the trials above never
/// leave the plain decode path.
#[test]
fn shaped_sequences_hold_encoded_value_columns() {
    let c = catalog(0);
    for (name, encoding) in [("R", "rle"), ("D", "dict")] {
        let stored = c.get(name).unwrap();
        assert_eq!(
            stored.compression().columns[1].dominant(),
            encoding,
            "{name}: close column encoding"
        );
    }
}

/// A predicate bound to column `idx` (which must hold floats at runtime):
/// binding goes through a synthetic schema whose `idx`-th attribute is the
/// referenced one.
fn pred_at(idx: usize, threshold: f64) -> Expr {
    let names: Vec<String> = (0..=idx).map(|k| format!("c{k}")).collect();
    let mut fields: Vec<(&str, AttrType)> =
        names.iter().map(|n| (n.as_str(), AttrType::Int)).collect();
    fields[idx].1 = AttrType::Float;
    Expr::attr(names[idx].clone()).gt(Expr::lit(threshold)).bind(&schema(&fields)).unwrap()
}

/// Index of a random float-valued column. Base sequences carry floats at
/// odd indices; composition concatenates, offsets and selects preserve, and
/// aggregates emit a single float — so every generated node has one.
fn float_col(rng: &mut Rng, floats: &[bool]) -> usize {
    let candidates: Vec<usize> =
        floats.iter().enumerate().filter(|(_, f)| **f).map(|(i, _)| i).collect();
    candidates[rng.gen_range(0..candidates.len() as u32) as usize]
}

/// Random plan over the non-unit-scope operators; returns the node and the
/// per-column float flags (needed to place predicates and aggregates).
fn gen_node(rng: &mut Rng, depth: usize) -> (PhysNode, Vec<bool>) {
    if depth == 0 {
        let (node, _) = base(rng);
        return (node, vec![false, true]);
    }
    match rng.gen_range(0..6u32) {
        // Lock-step compose: both children arbitrary.
        0 => {
            let (left, lf) = gen_node(rng, depth - 1);
            let (right, rf) = gen_node(rng, depth - 1);
            let floats: Vec<bool> = lf.iter().chain(rf.iter()).copied().collect();
            let predicate = rng
                .gen_bool(0.4)
                .then(|| pred_at(float_col(rng, &floats), rng.gen_range(-20.0..40.0)));
            let node = PhysNode::Compose {
                left: Box::new(left),
                right: Box::new(right),
                predicate,
                strategy: JoinStrategy::LockStep,
                span: span(),
            };
            (node, floats)
        }
        // Strategy-A compose: the probed side must be point-accessible, so
        // it stays a base leaf; the streamed side is arbitrary.
        1 => {
            let left_streams = rng.gen_bool(0.5);
            let (outer, of) = gen_node(rng, depth - 1);
            let (inner, _) = base(rng);
            let inner_floats = vec![false, true];
            let (left, right, lf, rf, strategy) = if left_streams {
                (outer, inner, of, inner_floats, JoinStrategy::StreamLeftProbeRight)
            } else {
                (inner, outer, inner_floats, of, JoinStrategy::StreamRightProbeLeft)
            };
            let floats: Vec<bool> = lf.iter().chain(rf.iter()).copied().collect();
            let predicate = rng
                .gen_bool(0.4)
                .then(|| pred_at(float_col(rng, &floats), rng.gen_range(-20.0..40.0)));
            let node = PhysNode::Compose {
                left: Box::new(left),
                right: Box::new(right),
                predicate,
                strategy,
                span: span(),
            };
            (node, floats)
        }
        // Cache-B value offset (backward and forward).
        2 => {
            let (input, floats) = gen_node(rng, depth - 1);
            let offset = [-3i64, -1, 1, 2][rng.gen_range(0..4u32) as usize];
            let node = PhysNode::ValueOffset {
                input: Box::new(input),
                offset,
                strategy: ValueOffsetStrategy::IncrementalCacheB,
                span: span(),
            };
            (node, floats)
        }
        // Cumulative aggregate over a float column.
        3 => {
            let (input, floats) = gen_node(rng, depth - 1);
            let node = PhysNode::Aggregate {
                input: Box::new(input),
                func: if rng.gen_bool(0.5) { AggFunc::Avg } else { AggFunc::Sum },
                attr_index: float_col(rng, &floats),
                window: Window::Cumulative,
                strategy: AggStrategy::CacheA,
                span: span(),
            };
            (node, vec![true])
        }
        // Whole-span aggregate over a float column.
        4 => {
            let (input, floats) = gen_node(rng, depth - 1);
            let node = PhysNode::Aggregate {
                input: Box::new(input),
                func: if rng.gen_bool(0.5) { AggFunc::Avg } else { AggFunc::Sum },
                attr_index: float_col(rng, &floats),
                window: Window::WholeSpan,
                strategy: AggStrategy::CacheA,
                span: span(),
            };
            (node, vec![true])
        }
        // Select glue, so joins and offsets see filtered inputs too.
        _ => {
            let (input, floats) = gen_node(rng, depth - 1);
            let predicate = pred_at(float_col(rng, &floats), rng.gen_range(-20.0..40.0));
            (PhysNode::Select { input: Box::new(input), predicate, span: span() }, floats)
        }
    }
}

fn count_nodes(n: &PhysNode) -> u64 {
    match n {
        PhysNode::Select { input, .. }
        | PhysNode::Project { input, .. }
        | PhysNode::PosOffset { input, .. }
        | PhysNode::Aggregate { input, .. }
        | PhysNode::ValueOffset { input, .. } => 1 + count_nodes(input),
        PhysNode::Compose { left, right, .. } => 1 + count_nodes(left) + count_nodes(right),
        _ => 1,
    }
}

fn contains_lockstep(n: &PhysNode) -> bool {
    match n {
        PhysNode::Compose { left, right, strategy, .. } => {
            *strategy == JoinStrategy::LockStep
                || contains_lockstep(left)
                || contains_lockstep(right)
        }
        PhysNode::Select { input, .. }
        | PhysNode::Project { input, .. }
        | PhysNode::PosOffset { input, .. }
        | PhysNode::Aggregate { input, .. }
        | PhysNode::ValueOffset { input, .. } => contains_lockstep(input),
        _ => false,
    }
}

/// A lock-step join drives its children with data-dependent skip hints, and
/// the record path additionally advances both sides eagerly on a match
/// while the batch path advances buffer indices lazily. Over base scans
/// that only moves *storage* counters (handled by the slack/exemption
/// below), but when a counting operator — a probing join, a predicate, a
/// cache — sits underneath, the amount of work it materializes becomes
/// path-dependent too. Such plans guarantee bit-identical rows, not exact
/// interior counters.
fn lockstep_over_operators(n: &PhysNode) -> bool {
    let is_base = |m: &PhysNode| matches!(m, PhysNode::Base { .. } | PhysNode::FusedScan { .. });
    match n {
        PhysNode::Compose { left, right, strategy, .. } => {
            (*strategy == JoinStrategy::LockStep && (!is_base(left) || !is_base(right)))
                || lockstep_over_operators(left)
                || lockstep_over_operators(right)
        }
        PhysNode::Select { input, .. }
        | PhysNode::Project { input, .. }
        | PhysNode::PosOffset { input, .. }
        | PhysNode::Aggregate { input, .. }
        | PhysNode::ValueOffset { input, .. } => lockstep_over_operators(input),
        _ => false,
    }
}

#[test]
fn random_plans_agree_across_all_three_paths() {
    for plan_seed in 0..24u64 {
        let mut rng = Rng::seed_from_u64(0xC0_5E ^ (plan_seed.wrapping_mul(0x9E37_79B9)));
        let (node, _) = gen_node(&mut rng, 3);
        let plan = PhysPlan::new(node.clone(), span());
        let ops = count_nodes(&node);
        let strict = !lockstep_over_operators(&node);
        let label = format!("plan_seed {plan_seed}: {node:?}");

        let c1 = catalog(plan_seed);
        let ctx1 = ExecContext::new(&c1);
        let reference = execute(&plan, &ctx1).unwrap();
        let access1 = c1.stats().snapshot();
        let exec1 = ctx1.stats.snapshot();

        for batch_size in [1usize, 7, 64, 512] {
            let c2 = catalog(plan_seed);
            let ctx2 = ExecContext::new(&c2);
            let batched = execute_batched_with(&plan, &ctx2, batch_size).unwrap();
            let access2 = c2.stats().snapshot();
            let exec2 = ctx2.stats.snapshot();

            // Bit-identical rows: every float fold happens in record order
            // on both paths, so not even last-ulp slack is needed.
            assert_eq!(reference, batched, "{label}: rows diverged at batch_size {batch_size}");

            // Operator-level counters are exact unless a lock-step join
            // drives counting operators underneath it.
            if strict {
                assert_eq!(
                    exec1.predicate_evals, exec2.predicate_evals,
                    "{label}: predicate accounting diverged at batch_size {batch_size}"
                );
                assert_eq!(
                    exec1.cache_stores, exec2.cache_stores,
                    "{label}: cache-store accounting diverged at batch_size {batch_size}"
                );
                assert_eq!(
                    exec1.cache_probes, exec2.cache_probes,
                    "{label}: cache-probe accounting diverged at batch_size {batch_size}"
                );
                assert_eq!(
                    exec1.output_records, exec2.output_records,
                    "{label}: output accounting diverged at batch_size {batch_size}"
                );
                assert_eq!(
                    access1.probes, access2.probes,
                    "{label}: probe accounting diverged at batch_size {batch_size}"
                );
            }

            // Storage traffic: bounded read-ahead per buffering operator,
            // except under lock-step merges (batch-granular merging reads
            // whole batches the record path's skip hints avoid).
            if !contains_lockstep(&node) {
                let bs = batch_size as u64;
                let stream_diff = access2.stream_records.abs_diff(access1.stream_records);
                assert!(
                    stream_diff <= ops * bs,
                    "{label}: stream records diverged beyond read-ahead at batch_size \
                     {batch_size} ({} record vs {} batched)",
                    access1.stream_records,
                    access2.stream_records
                );
                let page_diff = access2.page_accesses().abs_diff(access1.page_accesses());
                assert!(
                    page_diff <= ops * (bs.div_ceil(PAGE_CAPACITY) + 1),
                    "{label}: page accesses diverged beyond read-ahead at batch_size \
                     {batch_size} ({} record vs {} batched)",
                    access1.page_accesses(),
                    access2.page_accesses()
                );
            }
        }

        // The morsel-parallel path, where the plan partitions: generated
        // partitionable plans hold no aggregates or value offsets, so rows
        // are bit-identical and the same counters stay exact.
        if node.is_position_partitionable() {
            for workers in [2usize, 4] {
                let config = ParallelConfig { workers, batch_size: 64, morsel_positions: 0 };
                let c3 = catalog(plan_seed);
                let ctx3 = ExecContext::new(&c3);
                let parallel = execute_parallel_with(&plan, &ctx3, config).unwrap();
                let access3 = c3.stats().snapshot();
                let exec3 = ctx3.stats.snapshot();
                assert_eq!(reference, parallel, "{label}: rows diverged at workers {workers}");
                if strict {
                    assert_eq!(
                        exec1.predicate_evals, exec3.predicate_evals,
                        "{label}: predicate accounting diverged at workers {workers}"
                    );
                    assert_eq!(
                        exec1.output_records, exec3.output_records,
                        "{label}: output accounting diverged at workers {workers}"
                    );
                    assert_eq!(
                        access1.probes, access3.probes,
                        "{label}: probe accounting diverged at workers {workers}"
                    );
                }
            }
        }
    }
}

/// Deterministic plans where even the stream-side storage counters are
/// *exactly* equal across paths: the input is consumed in full on both,
/// so there is no terminal read-ahead and (for the joins) the frontiers
/// never diverge enough for skip hints to matter.
#[test]
fn fully_consumed_plans_have_exact_access_stats() {
    let h = || Box::new(PhysNode::Base { name: "H".into(), span: span() });
    let plans: Vec<(&str, PhysNode)> = vec![
        (
            "lockstep-self-join",
            PhysNode::Compose {
                left: h(),
                right: h(),
                predicate: None,
                strategy: JoinStrategy::LockStep,
                span: span(),
            },
        ),
        (
            "lockstep-self-join-predicate",
            PhysNode::Compose {
                left: h(),
                right: h(),
                predicate: Some(pred_at(1, 20.0)),
                strategy: JoinStrategy::LockStep,
                span: span(),
            },
        ),
        (
            "streamprobe-self-join",
            PhysNode::Compose {
                left: h(),
                right: h(),
                predicate: None,
                strategy: JoinStrategy::StreamLeftProbeRight,
                span: span(),
            },
        ),
        (
            "cumulative-avg",
            PhysNode::Aggregate {
                input: h(),
                func: AggFunc::Avg,
                attr_index: 1,
                window: Window::Cumulative,
                strategy: AggStrategy::CacheA,
                span: span(),
            },
        ),
        (
            "whole-span-avg",
            PhysNode::Aggregate {
                input: h(),
                func: AggFunc::Avg,
                attr_index: 1,
                window: Window::WholeSpan,
                strategy: AggStrategy::CacheA,
                span: span(),
            },
        ),
        (
            "value-offset-back",
            PhysNode::ValueOffset {
                input: h(),
                offset: -2,
                strategy: ValueOffsetStrategy::IncrementalCacheB,
                span: span(),
            },
        ),
    ];
    for (name, node) in plans {
        let plan = PhysPlan::new(node, span());

        let c1 = catalog(99);
        let ctx1 = ExecContext::new(&c1);
        let reference = execute(&plan, &ctx1).unwrap();
        let access1 = c1.stats().snapshot();
        let exec1 = ctx1.stats.snapshot();

        for batch_size in [1usize, 64] {
            let c2 = catalog(99);
            let ctx2 = ExecContext::new(&c2);
            let batched = execute_batched_with(&plan, &ctx2, batch_size).unwrap();
            let access2 = c2.stats().snapshot();
            let exec2 = ctx2.stats.snapshot();

            assert_eq!(reference, batched, "{name}: rows diverged at batch_size {batch_size}");
            assert_eq!(
                access1.stream_records, access2.stream_records,
                "{name}: stream records diverged at batch_size {batch_size}"
            );
            assert_eq!(
                access1.page_accesses(),
                access2.page_accesses(),
                "{name}: page accesses diverged at batch_size {batch_size}"
            );
            assert_eq!(
                access1.probes, access2.probes,
                "{name}: probes diverged at batch_size {batch_size}"
            );
            assert_eq!(
                exec1.predicate_evals, exec2.predicate_evals,
                "{name}: predicate evals diverged at batch_size {batch_size}"
            );
            assert_eq!(
                exec1.cache_stores, exec2.cache_stores,
                "{name}: cache stores diverged at batch_size {batch_size}"
            );
            assert_eq!(
                exec1.cache_probes, exec2.cache_probes,
                "{name}: cache probes diverged at batch_size {batch_size}"
            );
            assert_eq!(
                exec1.output_records, exec2.output_records,
                "{name}: output records diverged at batch_size {batch_size}"
            );
        }
    }
}
