//! The vectorized path must be bit-identical to the record-at-a-time path —
//! same records, same order, same access accounting (pages touched, records
//! streamed, predicates applied) — across every batch-capable operator, the
//! adapter fallbacks, and a sweep of batch sizes that exercises page and
//! batch boundary interactions.

use seq_core::{record, schema, AttrType, BaseSequence, Span};
use seq_exec::{
    execute, execute_batched_with, AggStrategy, ExecContext, JoinStrategy, PhysNode, PhysPlan,
    ValueOffsetStrategy,
};
use seq_ops::{AggFunc, Expr, Window};
use seq_storage::Catalog;
use seq_workload::Rng;

fn catalog(seed: u64) -> Catalog {
    let mut rng = Rng::seed_from_u64(seed);
    let mut c = Catalog::new();
    c.set_page_capacity(16);
    let sch = schema(&[("time", AttrType::Int), ("close", AttrType::Float)]);
    // A dense-ish sequence with random gaps and a sparse one.
    let mut dense_entries = Vec::new();
    let mut sparse_entries = Vec::new();
    for p in 1i64..=500 {
        if rng.gen_bool(0.8) {
            dense_entries.push((p, record![p, rng.gen_range(0.0..100.0)]));
        }
        if rng.gen_bool(0.15) {
            sparse_entries.push((p, record![p, rng.gen_range(-50.0..50.0)]));
        }
    }
    let dense = BaseSequence::from_entries(sch.clone(), dense_entries).unwrap();
    let sparse = BaseSequence::from_entries(sch, sparse_entries).unwrap();
    c.register("D", &dense);
    c.register("S", &sparse);
    c
}

fn base(name: &str) -> Box<PhysNode> {
    Box::new(PhysNode::Base { name: name.into(), span: Span::new(1, 500) })
}

fn pred(threshold: f64) -> Expr {
    let sch = schema(&[("time", AttrType::Int), ("close", AttrType::Float)]);
    Expr::attr("close").gt(Expr::lit(threshold)).bind(&sch).unwrap()
}

/// Plans covering every batch kernel plus both fallback classes.
fn plans() -> Vec<(&'static str, PhysNode)> {
    let span = Span::new(1, 500);
    let select =
        |input: Box<PhysNode>, t: f64| PhysNode::Select { input, predicate: pred(t), span };
    let agg = |input: Box<PhysNode>, strategy: AggStrategy, w: Window| PhysNode::Aggregate {
        input,
        func: AggFunc::Avg,
        attr_index: 1,
        window: w,
        strategy,
        span,
    };
    vec![
        ("base", *base("D")),
        ("select", select(base("D"), 40.0)),
        ("select-all-filtered", select(base("D"), 1000.0)),
        ("project", PhysNode::Project { input: base("D"), indices: vec![1], span }),
        (
            "project-dup-reorder",
            PhysNode::Project { input: base("D"), indices: vec![1, 0, 1], span },
        ),
        ("pos-offset-back", PhysNode::PosOffset { input: base("D"), offset: -7, span }),
        ("pos-offset-fwd", PhysNode::PosOffset { input: base("D"), offset: 13, span }),
        ("window-avg-cachea", agg(base("D"), AggStrategy::CacheA, Window::trailing(9))),
        (
            "window-avg-incremental",
            agg(base("D"), AggStrategy::CacheAIncremental, Window::trailing(9)),
        ),
        (
            "window-sparse-gaps",
            agg(base("S"), AggStrategy::CacheAIncremental, Window::Sliding { lo: -3, hi: 3 }),
        ),
        (
            "stacked-unit-scope",
            PhysNode::Project {
                input: Box::new(select(
                    Box::new(PhysNode::PosOffset { input: base("D"), offset: -2, span }),
                    30.0,
                )),
                indices: vec![1],
                span,
            },
        ),
        (
            "agg-over-select",
            agg(
                Box::new(select(base("D"), 20.0)),
                AggStrategy::CacheAIncremental,
                Window::Sliding { lo: -4, hi: 2 },
            ),
        ),
        (
            "value-offset-batched",
            PhysNode::ValueOffset {
                input: base("D"),
                offset: -2,
                strategy: ValueOffsetStrategy::IncrementalCacheB,
                span,
            },
        ),
        (
            "value-offset-naive-fallback",
            PhysNode::ValueOffset {
                input: base("D"),
                offset: -2,
                strategy: ValueOffsetStrategy::NaiveProbe,
                span,
            },
        ),
        (
            "compose-lockstep-sparse",
            select(
                Box::new(PhysNode::Compose {
                    left: base("D"),
                    right: base("S"),
                    predicate: None,
                    strategy: JoinStrategy::LockStep,
                    span,
                }),
                25.0,
            ),
        ),
        (
            "select-over-compose-lockstep-dense",
            select(
                Box::new(PhysNode::Compose {
                    left: base("D"),
                    right: base("D"),
                    predicate: None,
                    strategy: JoinStrategy::LockStep,
                    span,
                }),
                25.0,
            ),
        ),
        (
            "compose-streamprobe-left",
            PhysNode::Compose {
                left: base("D"),
                right: base("S"),
                predicate: None,
                strategy: JoinStrategy::StreamLeftProbeRight,
                span,
            },
        ),
        (
            "compose-streamprobe-right",
            PhysNode::Compose {
                left: base("S"),
                right: base("D"),
                predicate: None,
                strategy: JoinStrategy::StreamRightProbeLeft,
                span,
            },
        ),
        ("cumulative-avg-batched", agg(base("D"), AggStrategy::CacheA, Window::Cumulative)),
        ("whole-span-avg-batched", agg(base("S"), AggStrategy::CacheA, Window::WholeSpan)),
    ]
}

#[test]
fn batched_execution_is_bit_identical_to_record_execution() {
    for (name, node) in plans() {
        for batch_size in [1usize, 3, 16, 64, 1024] {
            let plan = PhysPlan::new(node.clone(), Span::new(1, 500));

            let c1 = catalog(42);
            let ctx1 = ExecContext::new(&c1);
            let record_path = execute(&plan, &ctx1).unwrap();

            let c2 = catalog(42);
            let ctx2 = ExecContext::new(&c2);
            let batch_path = execute_batched_with(&plan, &ctx2, batch_size).unwrap();

            assert_eq!(
                record_path, batch_path,
                "plan {name:?} diverged at batch_size {batch_size}"
            );
        }
    }
}

#[test]
fn batched_execution_preserves_access_accounting() {
    // The batch path changes counter update granularity, not what is
    // charged: predicate and output counts are exact, and storage traffic
    // may differ only by the bounded read-ahead of one batch (an operator
    // that terminates at its span end — e.g. a positional offset — notices
    // only after the batch that crosses the boundary was materialized).
    let batch_size: u64 = 64;
    let page_capacity: u64 = 16;
    // A lock-step merge over poorly correlated inputs is the one place where
    // batch read-ahead is not bounded by a single batch: the record path
    // skips stretch-by-stretch via per-record `next_from` hints, while a
    // batch merge must materialize whole position-contiguous batches and
    // discard the non-matching rows inside them (the classic vectorization
    // read-amplification trade-off). Operator-level counters (predicates,
    // probes, outputs, caches) stay exact even there.
    let stream_slack_exempt = ["compose-lockstep-sparse"];
    for (name, node) in plans() {
        let plan = PhysPlan::new(node.clone(), Span::new(1, 500));

        let c1 = catalog(7);
        let ctx1 = ExecContext::new(&c1);
        execute(&plan, &ctx1).unwrap();
        let access1 = c1.stats().snapshot();
        let exec1 = ctx1.stats.snapshot();

        let c2 = catalog(7);
        let ctx2 = ExecContext::new(&c2);
        execute_batched_with(&plan, &ctx2, batch_size as usize).unwrap();
        let access2 = c2.stats().snapshot();
        let exec2 = ctx2.stats.snapshot();

        if !stream_slack_exempt.contains(&name) {
            let page_slack = batch_size.div_ceil(page_capacity) + 1;
            let page_diff = access2.page_accesses().abs_diff(access1.page_accesses());
            assert!(
                page_diff <= page_slack,
                "plan {name:?}: page accesses diverged beyond read-ahead \
                 ({} record vs {} batched)",
                access1.page_accesses(),
                access2.page_accesses()
            );
            let stream_diff = access2.stream_records.abs_diff(access1.stream_records);
            assert!(
                stream_diff <= batch_size,
                "plan {name:?}: stream records diverged beyond one batch \
                 ({} record vs {} batched)",
                access1.stream_records,
                access2.stream_records
            );
        }
        assert_eq!(access1.probes, access2.probes, "plan {name:?}: probe accounting diverged");
        assert_eq!(
            exec1.predicate_evals, exec2.predicate_evals,
            "plan {name:?}: predicate accounting diverged"
        );
        // Sliding-window aggregates are exempt from cache-counter equality:
        // the PR-1 batch kernel keeps its window in a plain column buffer
        // rather than the record path's instrumented FIFO `OpCache` (same
        // results, different bookkeeping). Cache-B value offsets share the
        // `OpCache` across both paths, so their traffic is exact.
        if !name.starts_with("window-") && name != "agg-over-select" {
            assert_eq!(
                exec1.cache_stores, exec2.cache_stores,
                "plan {name:?}: cache-store accounting diverged"
            );
            assert_eq!(
                exec1.cache_probes, exec2.cache_probes,
                "plan {name:?}: cache-probe accounting diverged"
            );
        }
        assert_eq!(
            exec1.output_records, exec2.output_records,
            "plan {name:?}: output accounting diverged"
        );
    }
}

#[test]
fn batched_stats_fold_per_batch_not_per_record() {
    let span = Span::new(1, 500);
    let node = PhysNode::Select { input: base("D"), predicate: pred(10.0), span };
    let plan = PhysPlan::new(node, span);

    // Record path: zero folds, every record charged individually.
    let c1 = catalog(3);
    let ctx1 = ExecContext::new(&c1);
    let out = execute(&plan, &ctx1).unwrap();
    assert_eq!(ctx1.stats.snapshot().stat_folds, 0);
    assert_eq!(c1.stats().snapshot().stat_folds, 0);

    // Batch path: the same totals arrive in O(records / batch_size) folds.
    let batch_size = 64;
    let c2 = catalog(3);
    let ctx2 = ExecContext::new(&c2);
    let out2 = execute_batched_with(&plan, &ctx2, batch_size).unwrap();
    assert_eq!(out, out2);

    let access = c2.stats().snapshot();
    let exec = ctx2.stats.snapshot();
    let streamed = access.stream_records;
    assert!(streamed > 0);
    let max_batches = streamed.div_ceil(batch_size as u64);
    // Scan folds once per batch; select and output fold once per batch each.
    assert!(
        access.stat_folds <= max_batches + 1,
        "scan folded {} times for {} records",
        access.stat_folds,
        streamed
    );
    assert!(
        exec.stat_folds <= 2 * (max_batches + 1),
        "executor folded {} times for {} records",
        exec.stat_folds,
        streamed
    );
    // And the folded counters still total exactly the per-record charges.
    assert_eq!(exec.predicate_evals, ctx1.stats.snapshot().predicate_evals);
    assert_eq!(access.stream_records, c1.stats().snapshot().stream_records);
}

#[test]
fn window_agg_next_from_skips_input_instead_of_draining() {
    // Jumping the output cursor forward must delegate the skip to the input
    // (the storage scan), not drain and count every intervening record.
    let c = catalog(11);
    let span = Span::new(1, 500);
    let node = PhysNode::Aggregate {
        input: base("D"),
        func: AggFunc::Sum,
        attr_index: 1,
        window: Window::trailing(5),
        strategy: AggStrategy::CacheAIncremental,
        span,
    };
    let ctx = ExecContext::new(&c);
    let mut cur = node.open_stream(&ctx).unwrap();
    let item = cur.next_from(450).unwrap().unwrap();
    assert!(item.0 >= 450);
    let streamed = c.stats().snapshot().stream_records;
    // Only the window's worth of input around position 450 may be pulled;
    // the ~360 records below 445 must be skipped, not streamed.
    assert!(streamed <= 16, "window agg drained {streamed} records on next_from");
}

#[test]
fn pos_offset_next_from_survives_long_out_of_span_runs() {
    // A positional offset whose span excludes a long input prefix: next_from
    // must iterate, not recurse, over the out-of-span run.
    let sch = schema(&[("x", AttrType::Int)]);
    let seq = BaseSequence::from_entries(sch, (1i64..=200_000).map(|p| (p, record![p])).collect())
        .unwrap();
    let mut c = Catalog::new();
    c.register("L", &seq);
    let node = PhysNode::PosOffset {
        input: Box::new(PhysNode::Base { name: "L".into(), span: Span::all() }),
        offset: -5,
        span: Span::new(199_000, 210_000),
    };
    let ctx = ExecContext::new(&c);
    let mut cur = node.open_stream(&ctx).unwrap();
    // Requesting from below the span forces the cursor past ~199k
    // out-of-span records in one call; the old recursive implementation
    // overflowed the stack here.
    let item = cur.next_from(1).unwrap().unwrap();
    assert_eq!(item.0, 199_000);
}
