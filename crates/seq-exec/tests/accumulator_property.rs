//! Property test: the O(1)-amortized [`SlidingAccumulator`] must agree with
//! a naive O(w) recomputation (`AggFunc::apply` over the window contents)
//! for every aggregate function, over randomized sparse value streams and
//! randomized window shapes. Seeded loop generation; failures reproduce.

use seq_core::Value;
use seq_exec::aggregate::SlidingAccumulator;
use seq_ops::AggFunc;
use seq_workload::Rng;

const FUNCS: [AggFunc; 5] =
    [AggFunc::Count, AggFunc::Sum, AggFunc::Avg, AggFunc::Min, AggFunc::Max];

/// A sparse stream: positions with ~40% occupancy, values a mix of ints and
/// floats (Sum must stay integral iff every window value is integral).
fn arb_stream(rng: &mut Rng, len: i64) -> Vec<(i64, Value)> {
    let mut out = Vec::new();
    for p in 1..=len {
        if !rng.gen_bool(0.4) {
            continue;
        }
        let v = if rng.gen_bool(0.5) {
            Value::Int(rng.gen_range(-100i64..100))
        } else {
            Value::Float(rng.gen_range(-100.0..100.0))
        };
        out.push((p, v));
    }
    out
}

fn values_equal(fast: &Value, slow: &Value) -> bool {
    match (fast, slow) {
        (Value::Int(a), Value::Int(b)) => a == b,
        (Value::Float(a), Value::Float(b)) => {
            // Sum/Avg accumulate left-to-right in both paths, but the
            // incremental path also *subtracts* on eviction, so floating
            // error can differ by a few ulps.
            let scale = a.abs().max(b.abs()).max(1.0);
            (a - b).abs() <= 1e-9 * scale
        }
        _ => false,
    }
}

#[test]
fn sliding_accumulator_matches_naive_recomputation() {
    let mut rng = Rng::seed_from_u64(0xacc);
    for case in 0..64 {
        let stream = arb_stream(&mut rng, 200);
        let lo = rng.gen_range(-8i64..=0);
        let hi = rng.gen_range(0i64..=8).max(lo);
        for func in FUNCS {
            let mut acc = SlidingAccumulator::new(func);
            let mut next_in = 0usize; // next stream record not yet pushed
            let mut window: Vec<(i64, Value)> = Vec::new();
            for o in 1..=200i64 {
                while next_in < stream.len() && stream[next_in].0 <= o + hi {
                    let (p, v) = &stream[next_in];
                    acc.push(*p, v).unwrap();
                    window.push((*p, v.clone()));
                    next_in += 1;
                }
                acc.evict_below(o + lo);
                window.retain(|(p, _)| *p >= o + lo);

                let naive = func.apply(window.iter().map(|(_, v)| v)).unwrap();
                let fast = acc.current();
                match (&fast, &naive) {
                    (None, None) => {}
                    (Some(f), Some(n)) => assert!(
                        values_equal(f, n),
                        "case {case} {func:?} window [{lo},{hi}] at o={o}: \
                         incremental {f:?} != naive {n:?}"
                    ),
                    _ => panic!(
                        "case {case} {func:?} window [{lo},{hi}] at o={o}: \
                         presence diverged ({fast:?} vs {naive:?})"
                    ),
                }
                assert_eq!(acc.len(), window.len(), "case {case} {func:?} length drift");
            }
        }
    }
}

#[test]
fn sliding_accumulator_handles_all_int_and_all_float_windows() {
    // Sum's Int/Float promotion rule: integral iff every value in the window
    // is integral. Mixed streams above cover the transitions; these two
    // pin the pure cases.
    for (mk, want_int) in [(Value::Int(3), true), (Value::Float(3.0), false)] {
        let mut acc = SlidingAccumulator::new(AggFunc::Sum);
        for p in 1..=4i64 {
            acc.push(p, &mk).unwrap();
        }
        match acc.current().unwrap() {
            Value::Int(v) => {
                assert!(want_int, "expected float sum");
                assert_eq!(v, 12);
            }
            Value::Float(v) => {
                assert!(!want_int, "expected int sum");
                assert!((v - 12.0).abs() < 1e-12);
            }
            other => panic!("unexpected sum {other:?}"),
        }
    }
}
