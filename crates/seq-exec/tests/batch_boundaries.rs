//! Batch-boundary contract audit.
//!
//! Three families of regression tests for the batched stream path:
//!
//! 1. a **model-based differential audit** of `next_batch_from`: every
//!    batch cursor (including the trait's default implementation) is driven
//!    with randomized interleavings of `next_batch` / `next_batch_from`
//!    where the lower bound falls before, inside, and past the current
//!    batch, and every returned batch must be the exact consecutive run of
//!    the record-path reference output;
//! 2. **positional arithmetic at the span sentinels**: positional offsets
//!    over inputs adjacent to `i64::MIN` / `i64::MAX` must drop
//!    unrepresentable outputs instead of saturating onto the infinity
//!    sentinels (which collapses distinct positions) or overflowing;
//! 3. **empty-span construction**: a cursor built over the canonical empty
//!    span must yield nothing without ever touching its input.

use seq_core::{record, schema, AttrType, BaseSequence, Record, RecordBatch, Result, Span, Value};
use seq_exec::aggregate::{CumulativeAggBatchCursor, WholeSpanAggBatchCursor, WholeSpanAggCursor};
use seq_exec::batch::{PosOffsetBatchCursor, WindowAggBatchCursor};
use seq_exec::cursor::PosOffsetCursor;
use seq_exec::offset::{IncrementalValueOffsetCursor, ValueOffsetBatchCursor};
use seq_exec::{
    AggStrategy, BatchCursor, Cursor, ExecContext, ExecStats, JoinStrategy, PhysNode,
    ValueOffsetStrategy,
};
use seq_ops::{AggFunc, Expr, Window};
use seq_storage::Catalog;
use seq_workload::Rng;

fn catalog(seed: u64) -> Catalog {
    let mut rng = Rng::seed_from_u64(seed);
    let mut c = Catalog::new();
    c.set_page_capacity(16);
    let sch = schema(&[("time", AttrType::Int), ("close", AttrType::Float)]);
    let mut dense_entries = Vec::new();
    let mut sparse_entries = Vec::new();
    for p in 1i64..=500 {
        if rng.gen_bool(0.8) {
            dense_entries.push((p, record![p, rng.gen_range(0.0..100.0)]));
        }
        if rng.gen_bool(0.15) {
            sparse_entries.push((p, record![p, rng.gen_range(-50.0..50.0)]));
        }
    }
    let dense = BaseSequence::from_entries(sch.clone(), dense_entries).unwrap();
    let sparse = BaseSequence::from_entries(sch, sparse_entries).unwrap();
    c.register("D", &dense);
    c.register("S", &sparse);
    c
}

fn base(name: &str) -> Box<PhysNode> {
    Box::new(PhysNode::Base { name: name.into(), span: Span::new(1, 500) })
}

fn pred(threshold: f64) -> Expr {
    let sch = schema(&[("time", AttrType::Int), ("close", AttrType::Float)]);
    Expr::attr("close").gt(Expr::lit(threshold)).bind(&sch).unwrap()
}

/// σ fused into the base scan: same predicate both as zone-map pushdown
/// terms and as the residual row filter.
fn fused(name: &str, predicate: Expr) -> PhysNode {
    let terms = predicate.as_conjunctive_col_cmp_lits().expect("pushdown-eligible predicate");
    PhysNode::FusedScan { name: name.into(), predicate, terms, span: Span::new(1, 500) }
}

/// Plans covering every batch kernel plus the adapter fallbacks.
fn plans() -> Vec<(&'static str, PhysNode)> {
    let span = Span::new(1, 500);
    let select =
        |input: Box<PhysNode>, t: f64| PhysNode::Select { input, predicate: pred(t), span };
    let agg = |input: Box<PhysNode>, strategy: AggStrategy, w: Window| PhysNode::Aggregate {
        input,
        func: AggFunc::Avg,
        attr_index: 1,
        window: w,
        strategy,
        span,
    };
    vec![
        ("base", *base("D")),
        ("base-sparse", *base("S")),
        ("select", select(base("D"), 40.0)),
        ("select-all-filtered", select(base("D"), 1000.0)),
        ("fused-scan", fused("D", pred(40.0))),
        ("fused-scan-sparse", fused("S", pred(0.0))),
        ("fused-scan-all-filtered", fused("D", pred(1000.0))),
        ("fused-scan-conjunction", fused("D", pred(25.0).and(pred(75.0)))),
        (
            "window-over-fused-scan",
            agg(
                Box::new(fused("D", pred(40.0))),
                AggStrategy::CacheAIncremental,
                Window::trailing(9),
            ),
        ),
        ("project", PhysNode::Project { input: base("D"), indices: vec![1], span }),
        ("pos-offset-back", PhysNode::PosOffset { input: base("D"), offset: -7, span }),
        ("pos-offset-fwd", PhysNode::PosOffset { input: base("D"), offset: 13, span }),
        ("window-avg-cachea", agg(base("D"), AggStrategy::CacheA, Window::trailing(9))),
        (
            "window-avg-incremental",
            agg(base("D"), AggStrategy::CacheAIncremental, Window::trailing(9)),
        ),
        (
            "window-sparse-gaps",
            agg(base("S"), AggStrategy::CacheAIncremental, Window::Sliding { lo: -3, hi: 3 }),
        ),
        (
            "stacked-unit-scope",
            PhysNode::Project {
                input: Box::new(select(
                    Box::new(PhysNode::PosOffset { input: base("D"), offset: -2, span }),
                    30.0,
                )),
                indices: vec![1],
                span,
            },
        ),
        (
            "value-offset-batched",
            PhysNode::ValueOffset {
                input: base("D"),
                offset: -2,
                strategy: ValueOffsetStrategy::IncrementalCacheB,
                span,
            },
        ),
        (
            "value-offset-fwd-batched",
            PhysNode::ValueOffset {
                input: base("D"),
                offset: 3,
                strategy: ValueOffsetStrategy::IncrementalCacheB,
                span,
            },
        ),
        (
            "value-offset-naive-fallback",
            PhysNode::ValueOffset {
                input: base("D"),
                offset: -2,
                strategy: ValueOffsetStrategy::NaiveProbe,
                span,
            },
        ),
        (
            "select-over-compose-lockstep",
            select(
                Box::new(PhysNode::Compose {
                    left: base("D"),
                    right: base("S"),
                    predicate: None,
                    strategy: JoinStrategy::LockStep,
                    span,
                }),
                25.0,
            ),
        ),
        (
            "compose-lockstep-predicate",
            PhysNode::Compose {
                left: base("D"),
                right: base("S"),
                predicate: Some(pred(25.0)),
                strategy: JoinStrategy::LockStep,
                span,
            },
        ),
        (
            "compose-streamprobe-left",
            PhysNode::Compose {
                left: base("D"),
                right: base("S"),
                predicate: None,
                strategy: JoinStrategy::StreamLeftProbeRight,
                span,
            },
        ),
        (
            "compose-streamprobe-right",
            PhysNode::Compose {
                left: base("S"),
                right: base("D"),
                predicate: None,
                strategy: JoinStrategy::StreamRightProbeLeft,
                span,
            },
        ),
        ("cumulative-avg", agg(base("D"), AggStrategy::CacheA, Window::Cumulative)),
        ("whole-span-avg", agg(base("S"), AggStrategy::CacheA, Window::WholeSpan)),
        // Selection-vector stacking: each shape keeps the carried selection
        // alive across at least one operator hand-off.
        ("select-over-select", select(Box::new(select(base("D"), 25.0)), 60.0)),
        (
            "project-over-select",
            PhysNode::Project {
                input: Box::new(select(base("D"), 40.0)),
                indices: vec![1, 0],
                span,
            },
        ),
        ("select-over-fused", select(Box::new(fused("D", pred(20.0))), 60.0)),
        (
            "posoffset-over-select",
            PhysNode::PosOffset { input: Box::new(select(base("D"), 35.0)), offset: -3, span },
        ),
        (
            "agg-over-select-compacts",
            agg(
                Box::new(select(base("D"), 30.0)),
                AggStrategy::CacheAIncremental,
                Window::trailing(5),
            ),
        ),
        (
            // Compose + value offset + cumulative aggregate with no block
            // boundary anywhere: the full-native stack the lowering is
            // expected to keep adapter-free.
            "stacked-full-native",
            agg(
                Box::new(PhysNode::ValueOffset {
                    input: Box::new(PhysNode::Compose {
                        left: base("D"),
                        right: base("S"),
                        predicate: None,
                        strategy: JoinStrategy::LockStep,
                        span,
                    }),
                    offset: -2,
                    strategy: ValueOffsetStrategy::IncrementalCacheB,
                    span,
                }),
                AggStrategy::CacheA,
                Window::Cumulative,
            ),
        ),
    ]
}

/// Wrapper that hides an implementation's `next_batch_from` override so the
/// trait's *default* implementation is the one under audit.
struct DefaultFromOnly(Box<dyn BatchCursor>);

impl BatchCursor for DefaultFromOnly {
    fn next_batch(&mut self) -> Result<Option<RecordBatch>> {
        self.0.next_batch()
    }
}

/// The record-path output of `node`, fully drained — the reference model.
fn reference_output(node: &PhysNode) -> Vec<(i64, Record)> {
    let cat = catalog(42);
    let ctx = ExecContext::new(&cat);
    let mut cursor = node.open_stream(&ctx).unwrap();
    let mut out = Vec::new();
    while let Some(row) = cursor.next().unwrap() {
        out.push(row);
    }
    out
}

/// Pick a lower bound that lands before, at, inside, or past the current
/// model frontier, so every `next_batch_from` branch gets exercised.
fn choose_lower(rng: &mut Rng, reference: &[(i64, Record)], idx: usize) -> i64 {
    match rng.gen_range(0..6u32) {
        // Behind the frontier: must be a no-op (streams never rewind).
        0 if idx > 0 => reference[idx - 1].0 - rng.gen_range(0..3i64),
        // Exactly the next row.
        1 if idx < reference.len() => reference[idx].0,
        // Just past the next row (inside the would-be batch).
        2 if idx < reference.len() => reference[idx].0 + 1,
        // A jump ahead.
        3 if idx < reference.len() => {
            let target = (idx + rng.gen_range(0..40usize)).min(reference.len() - 1);
            reference[target].0 + rng.gen_range(0..2i64)
        }
        // Past the end of the stream.
        4 => reference.last().map_or(501, |(p, _)| *p) + 1,
        // Anywhere in (or around) the domain.
        _ => rng.gen_range(-5..520i64),
    }
}

/// Row equality with last-ulp slack on floats: a skip makes an incremental
/// sliding accumulator rebuild its window sum from scratch, which is
/// bit-different (but numerically equivalent) to having slid into the same
/// window one position at a time. Positions and every non-float attribute
/// must still match exactly.
fn assert_rows_match(got: &[(i64, Record)], want: &[(i64, Record)], label: &str) {
    assert_eq!(got.len(), want.len(), "{label}: row count");
    for ((gp, gr), (wp, wr)) in got.iter().zip(want) {
        assert_eq!(gp, wp, "{label}: position");
        assert_eq!(gr.arity(), wr.arity(), "{label}: arity at {gp}");
        for (gv, wv) in gr.values().iter().zip(wr.values()) {
            match (gv, wv) {
                (Value::Float(g), Value::Float(w)) => {
                    let tol = 1e-9 * w.abs().max(1.0);
                    assert!((g - w).abs() <= tol, "{label}: {g} vs {w} at position {gp}");
                }
                _ => assert_eq!(gv, wv, "{label}: value at position {gp}"),
            }
        }
    }
}

/// Drive `cursor` with a randomized op sequence and check every batch
/// against the reference: each returned batch must be exactly
/// `reference[idx..idx + len]`, and `None` is allowed only once the
/// frontier (as advanced by the requested lower bounds) is exhausted.
fn audit_against_model(
    name: &str,
    mut cursor: Box<dyn BatchCursor>,
    reference: &[(i64, Record)],
    rng: &mut Rng,
    ops: usize,
) {
    let mut idx = 0usize;
    for step in 0..ops {
        let (expect_idx, got) = if rng.gen_bool(0.5) {
            (idx, cursor.next_batch().unwrap())
        } else {
            let lower = choose_lower(rng, reference, idx);
            let skip_to = reference.partition_point(|(p, _)| *p < lower);
            (idx.max(skip_to), cursor.next_batch_from(lower).unwrap())
        };
        match got {
            Some(batch) => {
                let rows = batch.to_records();
                assert!(!rows.is_empty(), "{name}: step {step} returned an empty batch");
                let end = expect_idx + rows.len();
                assert!(
                    end <= reference.len(),
                    "{name}: step {step} returned {} rows past the reference end",
                    end - reference.len()
                );
                assert_rows_match(
                    &rows,
                    &reference[expect_idx..end],
                    &format!("{name}: step {step}"),
                );
                idx = end;
            }
            None => {
                assert_eq!(
                    expect_idx,
                    reference.len(),
                    "{name}: step {step} returned None with rows still pending"
                );
                idx = reference.len();
            }
        }
    }
}

#[test]
fn next_batch_from_matches_reference_model() {
    for (name, node) in plans() {
        let reference = reference_output(&node);
        for batch_size in [1usize, 3, 7, 64] {
            for op_seed in [11u64, 97] {
                let cat = catalog(42);
                let ctx = ExecContext::new(&cat);
                let cursor = node.open_batch(&ctx, batch_size).unwrap();
                let mut rng = Rng::seed_from_u64(op_seed ^ batch_size as u64);
                let label = format!("{name} (bs={batch_size}, seed={op_seed})");
                audit_against_model(&label, cursor, &reference, &mut rng, 120);
            }
        }
    }
}

#[test]
fn default_next_batch_from_matches_reference_model() {
    // Same audit, but through a wrapper that strips every override so the
    // trait's default `next_batch_from` does the skipping.
    for (name, node) in plans() {
        let reference = reference_output(&node);
        for batch_size in [1usize, 7, 64] {
            let cat = catalog(42);
            let ctx = ExecContext::new(&cat);
            let cursor = Box::new(DefaultFromOnly(node.open_batch(&ctx, batch_size).unwrap()));
            let mut rng = Rng::seed_from_u64(0xdef0 ^ batch_size as u64);
            let label = format!("default-from {name} (bs={batch_size})");
            audit_against_model(&label, cursor, &reference, &mut rng, 120);
        }
    }
}

// ---------------------------------------------------------------------------
// Positional arithmetic at the span sentinels (i64 extremes).
// ---------------------------------------------------------------------------

/// In-memory batch stream over fixed rows; only `next_batch` is implemented,
/// so skipping goes through the default implementation.
struct VecBatchCursor {
    rows: Vec<(i64, Record)>,
    idx: usize,
    batch_size: usize,
}

impl VecBatchCursor {
    fn new(rows: Vec<(i64, Record)>, batch_size: usize) -> VecBatchCursor {
        VecBatchCursor { rows, idx: 0, batch_size }
    }
}

impl BatchCursor for VecBatchCursor {
    fn next_batch(&mut self) -> Result<Option<RecordBatch>> {
        if self.idx >= self.rows.len() {
            return Ok(None);
        }
        let end = (self.idx + self.batch_size).min(self.rows.len());
        let mut batch = RecordBatch::with_capacity(self.rows[self.idx].1.arity(), end - self.idx);
        for (p, r) in &self.rows[self.idx..end] {
            batch.push_record(*p, r)?;
        }
        self.idx = end;
        Ok(Some(batch))
    }
}

/// Record-at-a-time stream over the same fixed rows.
struct VecCursor {
    rows: Vec<(i64, Record)>,
    idx: usize,
}

impl Cursor for VecCursor {
    fn next(&mut self) -> Result<Option<(i64, Record)>> {
        let row = self.rows.get(self.idx).cloned();
        self.idx += 1;
        Ok(row)
    }
}

fn extreme_rows(positions: &[i64]) -> Vec<(i64, Record)> {
    positions.iter().enumerate().map(|(i, &p)| (p, record![i as i64])).collect()
}

fn drain_batches(mut c: Box<dyn BatchCursor>) -> Vec<(i64, Record)> {
    let mut out = Vec::new();
    while let Some(b) = c.next_batch().unwrap() {
        let rows = b.to_records();
        assert!(!rows.is_empty(), "cursors must not return empty batches");
        out.extend(rows);
    }
    out
}

fn drain_records(mut c: Box<dyn Cursor>) -> Vec<(i64, Record)> {
    let mut out = Vec::new();
    while let Some(row) = c.next().unwrap() {
        out.push(row);
    }
    out
}

#[test]
fn pos_offset_drops_outputs_past_pos_inf() {
    // Out(i) = In(i + offset) with offset = -5 shifts positions up by 5;
    // inputs within 5 of the sentinel have no representable output position
    // and must fall off the end — not saturate onto POS_INF (collapsing
    // distinct rows onto one sentinel position).
    let top = i64::MAX; // POS_INF sentinel
    let positions: Vec<i64> = (1..=10).map(|k| top - 11 + k).collect(); // MAX-10 ..= MAX-1
    let rows = extreme_rows(&positions);
    let expected: Vec<(i64, Record)> = rows
        .iter()
        .filter(|(p, _)| *p <= top - 6) // p + 5 <= MAX - 1
        .map(|(p, r)| (p + 5, r.clone()))
        .collect();
    assert_eq!(expected.len(), 5);

    for batch_size in [1usize, 3, 64] {
        let batched = Box::new(PosOffsetBatchCursor::new(
            Box::new(VecBatchCursor::new(rows.clone(), batch_size)),
            -5,
            Span::all(),
        ));
        assert_eq!(drain_batches(batched), expected, "batched (bs={batch_size})");
    }
    let record_path = Box::new(PosOffsetCursor::new(
        Box::new(VecCursor { rows: rows.clone(), idx: 0 }),
        -5,
        Span::all(),
    ));
    assert_eq!(drain_records(record_path), expected, "record path");
}

#[test]
fn pos_offset_skips_outputs_below_neg_inf() {
    // offset = +5 shifts positions down by 5; a prefix of inputs lands below
    // NEG_INF + 1 and must be skipped (not wrapped or saturated), while the
    // rest stream normally.
    let bottom = i64::MIN; // NEG_INF sentinel
    let positions: Vec<i64> = (1..=10).map(|k| bottom + k).collect(); // MIN+1 ..= MIN+10
    let rows = extreme_rows(&positions);
    let expected: Vec<(i64, Record)> = rows
        .iter()
        .filter(|(p, _)| *p >= bottom + 6) // p - 5 >= MIN + 1
        .map(|(p, r)| (p - 5, r.clone()))
        .collect();
    assert_eq!(expected.len(), 5);

    for batch_size in [1usize, 3, 64] {
        let batched = Box::new(PosOffsetBatchCursor::new(
            Box::new(VecBatchCursor::new(rows.clone(), batch_size)),
            5,
            Span::all(),
        ));
        assert_eq!(drain_batches(batched), expected, "batched (bs={batch_size})");
    }
    let record_path = Box::new(PosOffsetCursor::new(
        Box::new(VecCursor { rows: rows.clone(), idx: 0 }),
        5,
        Span::all(),
    ));
    assert_eq!(drain_records(record_path), expected, "record path");
}

#[test]
fn pos_offset_extreme_offsets_and_lowers() {
    // offset = i64::MIN shifts positions up by 2^63; only inputs at the very
    // bottom of the range survive, and the two-step exact shift must not
    // saturate. Rows: MIN+1 ..= MIN+4 shift to MAX-2^0.. — compute exactly.
    let rows = extreme_rows(&[i64::MIN + 1, i64::MIN + 2, i64::MIN + 3]);
    // Out = p - i64::MIN = p + 2^63; MIN+1 -> 1 + MAX - MAX = ... do it in i128.
    let expected: Vec<(i64, Record)> = rows
        .iter()
        .filter_map(|(p, r)| {
            let out = *p as i128 - i64::MIN as i128;
            (out < i64::MAX as i128).then(|| (out as i64, r.clone()))
        })
        .collect();
    let batched = Box::new(PosOffsetBatchCursor::new(
        Box::new(VecBatchCursor::new(rows.clone(), 2)),
        i64::MIN,
        Span::all(),
    ));
    assert_eq!(drain_batches(batched), expected);

    // Skip requests whose lower + offset overflows: a positive offset means
    // the input is exhausted (None), a negative offset means everything
    // remaining qualifies.
    let mut fwd = PosOffsetBatchCursor::new(
        Box::new(VecBatchCursor::new(extreme_rows(&[10, 20]), 8)),
        7,
        Span::all(),
    );
    assert!(fwd.next_batch_from(i64::MAX).unwrap().is_none());
    assert!(fwd.next_batch().unwrap().is_none(), "stream is over after an overflowed skip");

    let mut back = PosOffsetBatchCursor::new(
        Box::new(VecBatchCursor::new(extreme_rows(&[10, 20]), 8)),
        -7,
        Span::all(),
    );
    let got = back.next_batch_from(i64::MIN).unwrap().unwrap();
    assert_eq!(got.positions(), &[17, 27]);
}

// ---------------------------------------------------------------------------
// Empty-span construction: yield nothing, touch nothing.
// ---------------------------------------------------------------------------

/// Inputs that fail the test if an empty-span cursor ever touches them.
struct PanicBatchCursor;

impl BatchCursor for PanicBatchCursor {
    fn next_batch(&mut self) -> Result<Option<RecordBatch>> {
        panic!("empty-span cursor touched its batched input");
    }
}

struct PanicCursor;

impl Cursor for PanicCursor {
    fn next(&mut self) -> Result<Option<(i64, Record)>> {
        panic!("empty-span cursor touched its input");
    }
}

#[test]
fn empty_span_cursors_yield_nothing_without_touching_input() {
    for incremental in [false, true] {
        let mut agg = WindowAggBatchCursor::new(
            Box::new(PanicBatchCursor),
            AggFunc::Avg,
            0,
            Window::trailing(4),
            Span::empty(),
            incremental,
            16,
        )
        .unwrap();
        assert!(agg.next_batch().unwrap().is_none());
        assert!(agg.next_batch_from(5).unwrap().is_none());
        assert!(agg.next_batch_from(i64::MIN).unwrap().is_none());
    }

    let mut shift = PosOffsetBatchCursor::new(Box::new(PanicBatchCursor), 3, Span::empty());
    assert!(shift.next_batch().unwrap().is_none());
    assert!(shift.next_batch_from(0).unwrap().is_none());

    let mut voff = IncrementalValueOffsetCursor::new(
        Box::new(PanicCursor),
        -2,
        Span::empty(),
        ExecStats::new(),
    )
    .unwrap();
    assert!(voff.next().unwrap().is_none());
    assert!(voff.next_from(7).unwrap().is_none());

    let mut whole =
        WholeSpanAggCursor::new(Box::new(PanicCursor), AggFunc::Sum, 0, Span::empty()).unwrap();
    assert!(whole.next().unwrap().is_none());
    assert!(whole.next_from(0).unwrap().is_none());

    // The batched counterparts carry the same empty-span contract. (The
    // batch joins hold no span of their own — their children are the
    // span-restricted side — so they have no equivalent obligation.)
    let mut voff_b = ValueOffsetBatchCursor::new(
        Box::new(PanicBatchCursor),
        -2,
        Span::empty(),
        ExecStats::new(),
        16,
    )
    .unwrap();
    assert!(voff_b.next_batch().unwrap().is_none());
    assert!(voff_b.next_batch_from(7).unwrap().is_none());

    let mut cum_b = CumulativeAggBatchCursor::new(
        Box::new(PanicBatchCursor),
        AggFunc::Sum,
        0,
        Span::empty(),
        16,
    )
    .unwrap();
    assert!(cum_b.next_batch().unwrap().is_none());
    assert!(cum_b.next_batch_from(0).unwrap().is_none());

    let mut whole_b = WholeSpanAggBatchCursor::new(
        Box::new(PanicBatchCursor),
        AggFunc::Sum,
        0,
        Span::empty(),
        16,
    )
    .unwrap();
    assert!(whole_b.next_batch().unwrap().is_none());
    assert!(whole_b.next_batch_from(0).unwrap().is_none());
}

#[test]
fn carried_selections_expose_consistent_logical_views() {
    // Every batch any plan hands downstream — dense or selection-carrying —
    // must present one coherent logical view: logical length, per-row
    // accessors, `to_records`, `lower_bound`, and a forced `compact()` all
    // agree; selections are strictly increasing physical indices; pruned
    // column slots stay empty rather than half-materialized.
    for (name, node) in plans() {
        let cat = catalog(42);
        let ctx = ExecContext::new(&cat);
        let mut cursor = node.open_batch(&ctx, 48).unwrap();
        let mut saw_selection = false;
        while let Some(batch) = cursor.next_batch().unwrap() {
            let n = batch.len();
            assert!(n > 0, "{name}: empty batch escaped");
            assert!(n <= batch.physical_len(), "{name}: logical exceeds physical");
            if let Some(sel) = batch.selection() {
                saw_selection = true;
                assert_eq!(sel.len(), n, "{name}: selection length");
                assert!(
                    sel.windows(2).all(|w| w[0] < w[1]),
                    "{name}: selection not strictly increasing: {sel:?}"
                );
                assert!(
                    sel.iter().all(|&i| (i as usize) < batch.physical_len()),
                    "{name}: selection indexes out of the physical batch"
                );
            }
            let rows = batch.to_records();
            assert_eq!(rows.len(), n, "{name}: to_records length");
            for (i, row) in rows.iter().enumerate() {
                assert_eq!(row.0, batch.position_at(i), "{name}: position accessor");
                let (pos, rec) = batch.record(i);
                assert_eq!((pos, rec), *row, "{name}: record accessor at {i}");
                // lower_bound is a logical partition point.
                let lb = batch.lower_bound(row.0);
                assert!(lb <= i && batch.position_at(lb) == row.0, "{name}: lower_bound");
            }
            // Densifying must be an observational no-op.
            let mut dense = batch.clone();
            let copied = dense.compact();
            assert!(dense.selection().is_none(), "{name}: compact left a selection");
            assert_eq!(dense.to_records(), rows, "{name}: compact changed contents");
            if copied > 0 {
                assert_eq!(copied, n, "{name}: compact copied a partial batch");
            }
        }
        // The shapes added for selection stacking must actually carry one.
        if matches!(name, "select-over-select" | "project-over-select" | "posoffset-over-select") {
            assert!(saw_selection, "{name}: expected at least one carried selection");
        }
    }
}
