//! Profiling must be a pure observer: enabling a [`seq_exec::QueryProfile`]
//! may not change results or the globally charged counters on any execution
//! path, and the per-operator attribution must reconcile exactly with the
//! global totals it tees into.
//!
//! Invariants checked here, on the tuple, batch, and morsel-parallel paths:
//!
//! 1. profiled results == unprofiled results (bit-identical);
//! 2. profiled global `ExecStats`/`AccessStats` == unprofiled (tee, not
//!    divert);
//! 3. the plan root's `rows_out` == `ExecStats::output_records` (the Start
//!    operator's clamp is uncounted from the root slot);
//! 4. per-operator storage counters sum to the catalog's global counters;
//! 5. per-worker morsel counts sum to the number of planned morsels, and
//!    per-worker rows sum to the root's `rows_out`.

use seq_core::{record, schema, AttrType, BaseSequence, Span};
use seq_exec::{
    execute, execute_batched_with, execute_parallel_with, plan_morsels, AggStrategy, ExecContext,
    ParallelConfig, PhysNode, PhysPlan,
};
use seq_ops::{AggFunc, Expr, Window};
use seq_storage::Catalog;
use seq_workload::Rng;

const N: i64 = 3_000;

fn span() -> Span {
    Span::new(1, N)
}

fn catalog(seed: u64) -> Catalog {
    let mut rng = Rng::seed_from_u64(seed);
    let mut c = Catalog::new();
    c.set_page_capacity(32);
    let sch = schema(&[("time", AttrType::Int), ("close", AttrType::Float)]);
    let mut entries = Vec::new();
    for p in 1..=N {
        if rng.gen_bool(0.9) {
            entries.push((p, record![p, rng.gen_range(0.0..100.0)]));
        }
    }
    c.register("T", &BaseSequence::from_entries(sch, entries).unwrap());
    c
}

fn pred(threshold: f64) -> Expr {
    let sch = schema(&[("time", AttrType::Int), ("close", AttrType::Float)]);
    Expr::attr("close").gt(Expr::lit(threshold)).bind(&sch).unwrap()
}

/// Select over a trailing average over a base scan — three operators, all
/// position-partitionable, exercising predicate, cache, and page counters.
fn plan() -> PhysPlan {
    let agg = PhysNode::Aggregate {
        input: Box::new(PhysNode::Base { name: "T".into(), span: span() }),
        func: AggFunc::Avg,
        attr_index: 1,
        window: Window::trailing(8),
        strategy: AggStrategy::CacheA,
        span: span(),
    };
    let sch = schema(&[("avg_close", AttrType::Float)]);
    let predicate = Expr::attr("avg_close").gt(Expr::lit(45.0)).bind(&sch).unwrap();
    PhysPlan::new(PhysNode::Select { input: Box::new(agg), predicate, span: span() }, span())
}

#[test]
fn profiling_is_invisible_on_the_tuple_path() {
    let plan = plan();
    let c_plain = catalog(11);
    let ctx_plain = ExecContext::new(&c_plain);
    let plain = execute(&plan, &ctx_plain).unwrap();

    let c_prof = catalog(11);
    let mut ctx_prof = ExecContext::new(&c_prof);
    let profile = ctx_prof.enable_profiling(&plan);
    let profiled = execute(&plan, &ctx_prof).unwrap();

    assert_eq!(plain, profiled);
    assert_eq!(ctx_plain.stats.snapshot(), ctx_prof.stats.snapshot());
    assert_eq!(c_plain.stats().snapshot(), c_prof.stats().snapshot());
    assert_eq!(profile.root_rows_out(), ctx_prof.stats.snapshot().output_records);
    assert_eq!(profile.root_rows_out(), profiled.len() as u64);
    assert_eq!(profile.total_storage(), c_prof.stats().snapshot());
}

#[test]
fn profiling_is_invisible_on_the_batch_path() {
    let plan = plan();
    let c_plain = catalog(11);
    let ctx_plain = ExecContext::new(&c_plain);
    let plain = execute_batched_with(&plan, &ctx_plain, 64).unwrap();

    let c_prof = catalog(11);
    let mut ctx_prof = ExecContext::new(&c_prof);
    let profile = ctx_prof.enable_profiling(&plan);
    let profiled = execute_batched_with(&plan, &ctx_prof, 64).unwrap();

    assert_eq!(plain, profiled);
    assert_eq!(ctx_plain.stats.snapshot(), ctx_prof.stats.snapshot());
    assert_eq!(c_plain.stats().snapshot(), c_prof.stats().snapshot());
    assert_eq!(profile.root_rows_out(), ctx_prof.stats.snapshot().output_records);
    assert_eq!(profile.total_storage(), c_prof.stats().snapshot());
}

#[test]
fn profiling_is_invisible_on_the_parallel_path() {
    let plan = plan();
    let config = ParallelConfig { workers: 3, batch_size: 64, morsel_positions: 0 };

    let c_plain = catalog(11);
    let ctx_plain = ExecContext::new(&c_plain);
    let plain = execute_parallel_with(&plan, &ctx_plain, config).unwrap();

    let c_prof = catalog(11);
    let mut ctx_prof = ExecContext::new(&c_prof);
    let profile = ctx_prof.enable_profiling(&plan);
    let profiled = execute_parallel_with(&plan, &ctx_prof, config).unwrap();

    assert_eq!(plain, profiled);
    // Parallel counter totals are deterministic even though interleaving is
    // not: every morsel charges the same work regardless of which worker
    // runs it.
    assert_eq!(ctx_plain.stats.snapshot(), ctx_prof.stats.snapshot());
    assert_eq!(c_plain.stats().snapshot(), c_prof.stats().snapshot());
    assert_eq!(profile.root_rows_out(), ctx_prof.stats.snapshot().output_records);
    assert_eq!(profile.total_storage(), c_prof.stats().snapshot());

    // Worker accounting reconciles with the morsel plan and the root.
    let range = plan.range.intersect(&plan.root.span());
    let planned = plan_morsels(range, config.batch_size, config.workers, config.morsel_positions);
    assert_eq!(profile.morsels_planned(), planned.len() as u64);
    let workers = profile.worker_reports();
    assert_eq!(workers.len(), config.workers);
    let claimed: u64 = workers.iter().map(|w| w.morsels).sum();
    assert_eq!(claimed, planned.len() as u64);
    let worker_rows: u64 = workers.iter().map(|w| w.rows).sum();
    assert_eq!(worker_rows, profile.root_rows_out());
}

#[test]
fn root_rows_out_matches_output_records_across_paths() {
    // A filtering root makes the invariant non-trivial: the driver
    // over-fetches past the range end and the profile must uncount exactly
    // the clamped rows on every path.
    let node = PhysNode::Select {
        input: Box::new(PhysNode::Base { name: "T".into(), span: span() }),
        predicate: pred(30.0),
        span: span(),
    };
    // An off-alignment range so batch and morsel boundaries do not coincide
    // with the range end.
    let plan = PhysPlan::new(node, Span::new(5, 2_801));

    let c = catalog(23);
    let mut ctx = ExecContext::new(&c);
    let p_tuple = ctx.enable_profiling(&plan);
    let rows_tuple = execute(&plan, &ctx).unwrap();
    assert_eq!(p_tuple.root_rows_out(), rows_tuple.len() as u64);
    assert_eq!(p_tuple.root_rows_out(), ctx.stats.snapshot().output_records);

    let c = catalog(23);
    let mut ctx = ExecContext::new(&c);
    let p_batch = ctx.enable_profiling(&plan);
    let rows_batch = execute_batched_with(&plan, &ctx, 64).unwrap();
    assert_eq!(p_batch.root_rows_out(), rows_batch.len() as u64);
    assert_eq!(p_batch.root_rows_out(), ctx.stats.snapshot().output_records);

    let c = catalog(23);
    let mut ctx = ExecContext::new(&c);
    let p_par = ctx.enable_profiling(&plan);
    let config = ParallelConfig { workers: 4, batch_size: 64, morsel_positions: 97 };
    let rows_par = execute_parallel_with(&plan, &ctx, config).unwrap();
    assert_eq!(p_par.root_rows_out(), rows_par.len() as u64);
    assert_eq!(p_par.root_rows_out(), ctx.stats.snapshot().output_records);

    assert_eq!(rows_tuple, rows_batch);
    assert_eq!(rows_tuple, rows_par);
}

#[test]
fn parallel_worker_morsels_sum_to_sequential_morsel_count() {
    let plan = plan();
    let range = plan.range.intersect(&plan.root.span());
    for workers in [2usize, 4] {
        let config = ParallelConfig { workers, batch_size: 64, morsel_positions: 128 };
        let planned = plan_morsels(range, config.batch_size, workers, config.morsel_positions);

        let c = catalog(11);
        let mut ctx = ExecContext::new(&c);
        let profile = ctx.enable_profiling(&plan);
        execute_parallel_with(&plan, &ctx, config).unwrap();

        let claimed: u64 = profile.worker_reports().iter().map(|w| w.morsels).sum();
        assert_eq!(claimed, planned.len() as u64, "workers={workers}");
        assert_eq!(profile.morsels_planned(), planned.len() as u64, "workers={workers}");
    }
}

#[test]
fn per_operator_exec_counters_sum_to_global_totals() {
    let plan = plan();
    let c = catalog(11);
    let mut ctx = ExecContext::new(&c);
    let profile = ctx.enable_profiling(&plan);
    execute_batched_with(&plan, &ctx, 64).unwrap();

    let total = profile.total_exec();
    let global = ctx.stats.snapshot();
    assert_eq!(total.predicate_evals, global.predicate_evals);
    assert_eq!(total.cache_stores, global.cache_stores);
    assert_eq!(total.cache_probes, global.cache_probes);
    assert_eq!(total.naive_walk_steps, global.naive_walk_steps);

    // Attribution is exclusive: the predicate work sits on the Select slot
    // alone, the page traffic on the base scan alone.
    let reports = profile.op_reports();
    assert_eq!(reports.len(), 3);
    assert_eq!(reports[0].exec.predicate_evals, global.predicate_evals);
    assert_eq!(reports[1].exec.predicate_evals, 0);
    assert_eq!(reports[2].exec.predicate_evals, 0);
    assert!(!reports[0].touches_storage);
    assert!(reports[2].touches_storage);
    assert_eq!(reports[2].storage.page_reads, c.stats().snapshot().page_reads);
}
