//! Differential audit of selection-vector execution.
//!
//! Every plan in a randomized family runs five ways — record-at-a-time,
//! structurally-lowered batch (selections carried by default), carry-forced,
//! compact-forced, and parallel — and the paths must agree:
//!
//! - **rows bit-identical** across all five executions;
//! - **path-independent counters exact**: `page_reads`, `pages_skipped`,
//!   `probes`, and `predicate_evals` do not depend on how survivors are
//!   represented between operators;
//! - **path-dependent counters follow the documented taxonomy**:
//!   `selections_carried` is non-zero exactly when a partially-filtering
//!   select hands survivors on under the carry policy, `slots_compacted`
//!   counts the rows copied when a selection is densified (at the filter
//!   under the compact policy, at a physical consumer's boundary under
//!   carry), and `bytes_decoded` / `columns_pruned` show the late-
//!   materialization savings the batch path exists for.

use seq_core::{record, schema, AttrType, BaseSequence, Span};
use seq_exec::{
    execute, execute_batched_assigned, execute_batched_with, execute_parallel, AggStrategy,
    ExecContext, PhysNode, PhysPlan,
};
use seq_ops::{AggFunc, Expr, Window};
use seq_storage::Catalog;
use seq_workload::Rng;

fn span() -> Span {
    Span::new(1, 600)
}

fn catalog(seed: u64) -> Catalog {
    let mut rng = Rng::seed_from_u64(seed);
    let mut c = Catalog::new();
    c.set_page_capacity(16);
    let sch = schema(&[
        ("time", AttrType::Int),
        ("close", AttrType::Float),
        ("vol", AttrType::Float),
        ("size", AttrType::Int),
    ]);
    let mut entries = Vec::new();
    for p in 1i64..=600 {
        if rng.gen_bool(0.85) {
            entries.push((
                p,
                record![
                    p,
                    rng.gen_range(0.0..100.0),
                    rng.gen_range(0.0..10_000.0),
                    rng.gen_range(0..500i64)
                ],
            ));
        }
    }
    let seq = BaseSequence::from_entries(sch, entries).unwrap();
    c.register("T", &seq);
    c
}

fn sch() -> seq_core::Schema {
    schema(&[
        ("time", AttrType::Int),
        ("close", AttrType::Float),
        ("vol", AttrType::Float),
        ("size", AttrType::Int),
    ])
}

fn base() -> Box<PhysNode> {
    Box::new(PhysNode::Base { name: "T".into(), span: span() })
}

fn pred_close(t: f64) -> Expr {
    Expr::attr("close").gt(Expr::lit(t)).bind(&sch()).unwrap()
}

fn pred_conj(lo: f64, hi: f64) -> Expr {
    let a = Expr::attr("close").gt(Expr::lit(lo));
    let b = Expr::attr("vol").lt(Expr::lit(hi));
    a.and(b).bind(&sch()).unwrap()
}

fn select(input: Box<PhysNode>, predicate: Expr) -> PhysNode {
    PhysNode::Select { input, predicate, span: span() }
}

fn fused(predicate: Expr) -> PhysNode {
    let terms = predicate.as_conjunctive_col_cmp_lits().expect("pushdown-eligible");
    PhysNode::FusedScan { name: "T".into(), predicate, terms, span: span() }
}

/// A plan plus what the taxonomy says its counters must show.
struct Case {
    name: &'static str,
    node: PhysNode,
    /// The plan filters partially: survivors exist and so do casualties, so
    /// the carry run must record carried selections and the compact run must
    /// record copied slots.
    partial_filter: bool,
    /// The batch path decodes strictly less than the record path (scan-level
    /// column pruning or fused survivor-only materialization).
    late_mat_wins: bool,
}

fn cases() -> Vec<Case> {
    let mut cases = vec![
        Case {
            name: "select-mid",
            node: select(base(), pred_close(40.0)),
            partial_filter: true,
            late_mat_wins: false,
        },
        Case {
            name: "select-all-filtered",
            node: select(base(), pred_close(1000.0)),
            partial_filter: false,
            late_mat_wins: false,
        },
        Case {
            name: "stacked-selects",
            node: select(Box::new(select(base(), pred_close(25.0))), pred_conj(40.0, 7000.0)),
            partial_filter: true,
            late_mat_wins: false,
        },
        Case {
            // Project narrows the referenced set to {close}; the predicate
            // column is already in it, so `vol`/`size`/`time` are never
            // decoded on the batch path while the record path pays for all.
            name: "project-over-select-prunes",
            node: PhysNode::Project {
                input: Box::new(select(base(), pred_close(35.0))),
                indices: vec![1],
                span: span(),
            },
            partial_filter: true,
            late_mat_wins: true,
        },
        Case {
            // The fused kernel evaluates the conjunction over the encoded
            // page and materializes survivors only — low selectivity means
            // most slots are never decoded.
            name: "fused-low-selectivity",
            node: fused(pred_conj(80.0, 2000.0)),
            partial_filter: false, // fused filters in the scan, not a Select
            late_mat_wins: true,
        },
        Case {
            name: "project-over-fused",
            node: PhysNode::Project {
                input: Box::new(fused(pred_close(75.0))),
                indices: vec![1, 3],
                span: span(),
            },
            partial_filter: false,
            late_mat_wins: true,
        },
        Case {
            // A dense consumer above the filter: under carry the boundary
            // compacts, under compact the filter does — both must agree.
            name: "agg-over-select-boundary",
            node: PhysNode::Aggregate {
                input: Box::new(select(base(), pred_close(30.0))),
                func: AggFunc::Avg,
                attr_index: 1,
                window: Window::trailing(7),
                strategy: AggStrategy::CacheAIncremental,
                span: span(),
            },
            partial_filter: true,
            late_mat_wins: false,
        },
        Case {
            name: "posoffset-over-select",
            node: PhysNode::PosOffset {
                input: Box::new(select(base(), pred_close(45.0))),
                offset: -3,
                span: span(),
            },
            partial_filter: true,
            late_mat_wins: false,
        },
    ];
    // Randomized select stacks: thresholds and depth vary, the contract
    // does not.
    for seed in 0..6u64 {
        let mut rng = Rng::seed_from_u64(0xB00 + seed);
        let mut node =
            if rng.gen_bool(0.5) { *base() } else { fused(pred_close(rng.gen_range(10.0..40.0))) };
        for _ in 0..rng.gen_range(1..=3u32) {
            let p = if rng.gen_bool(0.5) {
                pred_close(rng.gen_range(20.0..80.0))
            } else {
                pred_conj(rng.gen_range(10.0..60.0), rng.gen_range(3000.0..9000.0))
            };
            node = select(Box::new(node), p);
        }
        cases.push(Case {
            name: Box::leak(format!("random-stack-{seed}").into_boxed_str()),
            node,
            partial_filter: false, // unknown a priori; carried/compacted checked relationally
            late_mat_wins: false,
        });
    }
    cases
}

/// The structural labels with every native select forced to `label`.
fn forced_labels(node: &PhysNode, label: &'static str) -> Vec<&'static str> {
    node.exec_mode_labels(true)
        .into_iter()
        .map(|l| if l == "batch+sel" || l == "batch+compact" { label } else { l })
        .collect()
}

struct Run {
    rows: Vec<(i64, seq_core::Record)>,
    storage: seq_storage::StatsSnapshot,
    exec: seq_exec::ExecSnapshot,
}

fn run(node: &PhysNode, mode: &str, batch_size: usize) -> Run {
    let plan = PhysPlan::new(node.clone(), span());
    let cat = catalog(17);
    let ctx = ExecContext::new(&cat);
    let rows = match mode {
        "tuple" => execute(&plan, &ctx).unwrap(),
        "batch" => execute_batched_with(&plan, &ctx, batch_size).unwrap(),
        "carry" => {
            let labels = forced_labels(node, "batch+sel");
            execute_batched_assigned(&plan, &ctx, batch_size, &labels).unwrap()
        }
        "compact" => {
            let labels = forced_labels(node, "batch+compact");
            execute_batched_assigned(&plan, &ctx, batch_size, &labels).unwrap()
        }
        "parallel" => execute_parallel(&plan, &ctx, 3).unwrap(),
        other => unreachable!("unknown mode {other}"),
    };
    Run { rows, storage: cat.stats().snapshot(), exec: ctx.stats.snapshot() }
}

#[test]
fn all_paths_agree_on_rows_and_shared_counters() {
    for case in cases() {
        for batch_size in [7usize, 64, 512] {
            let tuple = run(&case.node, "tuple", batch_size);
            let batch = run(&case.node, "batch", batch_size);
            let carry = run(&case.node, "carry", batch_size);
            let compact = run(&case.node, "compact", batch_size);

            let name = case.name;
            assert_eq!(tuple.rows, batch.rows, "{name}/bs={batch_size}: batch rows");
            assert_eq!(tuple.rows, carry.rows, "{name}/bs={batch_size}: carry rows");
            assert_eq!(tuple.rows, compact.rows, "{name}/bs={batch_size}: compact rows");

            // Path-independent counters: exact across every representation.
            for (label, r) in [("batch", &batch), ("carry", &carry), ("compact", &compact)] {
                assert_eq!(
                    tuple.storage.page_reads, r.storage.page_reads,
                    "{name}/bs={batch_size}: {label} page_reads"
                );
                assert_eq!(
                    tuple.storage.pages_skipped, r.storage.pages_skipped,
                    "{name}/bs={batch_size}: {label} pages_skipped"
                );
                assert_eq!(
                    tuple.storage.probes, r.storage.probes,
                    "{name}/bs={batch_size}: {label} probes"
                );
                assert_eq!(
                    tuple.exec.predicate_evals, r.exec.predicate_evals,
                    "{name}/bs={batch_size}: {label} predicate_evals"
                );
            }

            // Carry and compact differ only in survivor representation:
            // identical storage traffic, identical decode, identical pruning.
            assert_eq!(
                carry.storage, compact.storage,
                "{name}/bs={batch_size}: storage snapshots must match across policies"
            );
            // The structural default is carry, so the unassigned batch run
            // must be the carry run.
            assert_eq!(
                batch.exec.selections_carried, carry.exec.selections_carried,
                "{name}/bs={batch_size}: structural default is not carry"
            );

            // The documented taxonomy.
            assert_eq!(
                compact.exec.selections_carried, 0,
                "{name}/bs={batch_size}: compact-forced run carried a selection"
            );
            if case.partial_filter {
                assert!(
                    carry.exec.selections_carried > 0,
                    "{name}/bs={batch_size}: partial filter must carry selections"
                );
                assert!(
                    compact.exec.slots_compacted > 0,
                    "{name}/bs={batch_size}: compact-forced partial filter must copy rows"
                );
            }
            // Wherever the carry run compacted (a dense boundary), the
            // compact run compacted at least as many rows at the filter,
            // plus whatever its own boundaries added.
            assert!(
                carry.exec.slots_compacted <= compact.exec.slots_compacted,
                "{name}/bs={batch_size}: carrying must not copy more than compacting"
            );

            // Late materialization: the batch pipeline never decodes more
            // than the record path, and strictly less where pruning or
            // fused survivor-decode applies.
            assert!(
                carry.storage.bytes_decoded <= tuple.storage.bytes_decoded,
                "{name}/bs={batch_size}: batch decoded more than tuple \
                 ({} vs {})",
                carry.storage.bytes_decoded,
                tuple.storage.bytes_decoded
            );
            if case.late_mat_wins {
                assert!(
                    carry.storage.bytes_decoded < tuple.storage.bytes_decoded,
                    "{name}/bs={batch_size}: expected a decode win, got {} vs {}",
                    carry.storage.bytes_decoded,
                    tuple.storage.bytes_decoded
                );
            }
        }
    }
}

#[test]
fn parallel_path_agrees_where_partitionable() {
    for case in cases() {
        if !case.node.is_position_partitionable() {
            continue;
        }
        let tuple = run(&case.node, "tuple", 64);
        let parallel = run(&case.node, "parallel", 64);
        let name = case.name;
        assert_eq!(tuple.rows, parallel.rows, "{name}: parallel rows");
        assert_eq!(
            tuple.exec.predicate_evals, parallel.exec.predicate_evals,
            "{name}: parallel predicate_evals"
        );
        assert_eq!(tuple.storage.probes, parallel.storage.probes, "{name}: parallel probes");
        // Page traffic: every page in the span is either read or skipped
        // exactly once per morsel covering it; with page-aligned morsels the
        // totals are exact.
        assert_eq!(
            tuple.storage.page_reads + tuple.storage.pages_skipped,
            parallel.storage.page_reads + parallel.storage.pages_skipped,
            "{name}: parallel read+skip accounting"
        );
    }
}

#[test]
fn costed_lowering_labels_execute_identically() {
    // The executor must accept whatever label mix the costed lowering
    // produces — including "batch+compact" under dense consumers — and
    // produce the same rows as the structural default.
    for case in cases() {
        let labels = forced_labels(&case.node, "batch+compact");
        let plan = PhysPlan::new(case.node.clone(), span());
        let cat = catalog(17);
        let ctx = ExecContext::new(&cat);
        let via_labels = execute_batched_assigned(&plan, &ctx, 64, &labels).unwrap();
        let cat2 = catalog(17);
        let via_default = execute_batched_with(&plan, &ExecContext::new(&cat2), 64).unwrap();
        assert_eq!(via_labels, via_default, "{}", case.name);
    }
}
