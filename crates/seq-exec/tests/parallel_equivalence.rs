//! Morsel-driven parallel execution must be indistinguishable from the
//! sequential batch path: same records in the same order, across worker
//! counts, awkward morsel sizes, selective plans, and sparse inputs.
//!
//! The single carve-out is float-valued *incremental* sliding aggregates: a
//! worker entering a morsel rebuilds its window sum from scratch, while the
//! sequential accumulator slid into the same window one position at a time —
//! numerically equivalent, bit-different in the last ulp. Those plans are
//! compared with last-ulp slack; integer aggregates and everything else must
//! be bit-identical.

use seq_core::{record, schema, AttrType, BaseSequence, Record, Span, Value};
use seq_exec::{
    execute, execute_batched_with, execute_parallel, execute_parallel_with, AggStrategy,
    BatchToRecordCursor, ExecContext, JoinStrategy, ParallelConfig, PhysNode, PhysPlan,
    RecordToBatchCursor, ValueOffsetStrategy,
};
use seq_ops::{AggFunc, Expr, Window};
use seq_storage::Catalog;
use seq_workload::Rng;

fn catalog(seed: u64) -> Catalog {
    let mut rng = Rng::seed_from_u64(seed);
    let mut c = Catalog::new();
    c.set_page_capacity(16);
    let sch = schema(&[("time", AttrType::Int), ("close", AttrType::Float)]);
    let mut dense_entries = Vec::new();
    let mut sparse_entries = Vec::new();
    for p in 1i64..=500 {
        if rng.gen_bool(0.8) {
            dense_entries.push((p, record![p, rng.gen_range(0.0..100.0)]));
        }
        if rng.gen_bool(0.15) {
            sparse_entries.push((p, record![p, rng.gen_range(-50.0..50.0)]));
        }
    }
    let dense = BaseSequence::from_entries(sch.clone(), dense_entries).unwrap();
    let sparse = BaseSequence::from_entries(sch, sparse_entries).unwrap();
    c.register("D", &dense);
    c.register("S", &sparse);
    c
}

fn base(name: &str) -> Box<PhysNode> {
    Box::new(PhysNode::Base { name: name.into(), span: Span::new(1, 500) })
}

fn pred(threshold: f64) -> Expr {
    let sch = schema(&[("time", AttrType::Int), ("close", AttrType::Float)]);
    Expr::attr("close").gt(Expr::lit(threshold)).bind(&sch).unwrap()
}

/// Position-partitionable plans; the bool marks float-incremental
/// aggregation (compared with last-ulp slack instead of bit equality).
fn partitionable_plans() -> Vec<(&'static str, PhysNode, bool)> {
    let span = Span::new(1, 500);
    let select =
        |input: Box<PhysNode>, t: f64| PhysNode::Select { input, predicate: pred(t), span };
    let agg =
        |input: Box<PhysNode>, attr: usize, strategy: AggStrategy, w: Window| PhysNode::Aggregate {
            input,
            func: AggFunc::Avg,
            attr_index: attr,
            window: w,
            strategy,
            span,
        };
    vec![
        ("base", *base("D"), false),
        ("base-sparse", *base("S"), false),
        ("select", select(base("D"), 40.0), false),
        ("select-all-filtered", select(base("D"), 1000.0), false),
        ("project", PhysNode::Project { input: base("D"), indices: vec![1, 0], span }, false),
        ("pos-offset-back", PhysNode::PosOffset { input: base("D"), offset: -7, span }, false),
        ("pos-offset-fwd", PhysNode::PosOffset { input: base("D"), offset: 13, span }, false),
        ("window-avg-cachea", agg(base("D"), 1, AggStrategy::CacheA, Window::trailing(9)), false),
        (
            "window-avg-incremental-float",
            agg(base("D"), 1, AggStrategy::CacheAIncremental, Window::trailing(9)),
            true,
        ),
        (
            "window-avg-incremental-int",
            agg(base("D"), 0, AggStrategy::CacheAIncremental, Window::trailing(9)),
            false,
        ),
        (
            "window-sparse-gaps",
            agg(base("S"), 1, AggStrategy::CacheAIncremental, Window::Sliding { lo: -3, hi: 3 }),
            true,
        ),
        (
            "stacked-unit-scope",
            PhysNode::Project {
                input: Box::new(select(
                    Box::new(PhysNode::PosOffset { input: base("D"), offset: -2, span }),
                    30.0,
                )),
                indices: vec![1],
                span,
            },
            false,
        ),
        (
            "agg-over-select",
            agg(
                Box::new(select(base("D"), 20.0)),
                1,
                AggStrategy::CacheAIncremental,
                Window::Sliding { lo: -4, hi: 2 },
            ),
            true,
        ),
        // A lock-step join of two bases is positionally unit-scope, so it
        // partitions — through the record-path adapter fallback.
        (
            "select-over-compose-fallback",
            select(
                Box::new(PhysNode::Compose {
                    left: base("D"),
                    right: base("S"),
                    predicate: None,
                    strategy: JoinStrategy::LockStep,
                    span,
                }),
                25.0,
            ),
            false,
        ),
    ]
}

fn assert_rows_match(got: &[(i64, Record)], want: &[(i64, Record)], ulp_slack: bool, label: &str) {
    if !ulp_slack {
        assert_eq!(got, want, "{label}");
        return;
    }
    assert_eq!(got.len(), want.len(), "{label}: row count");
    for ((gp, gr), (wp, wr)) in got.iter().zip(want) {
        assert_eq!(gp, wp, "{label}: position");
        for (gv, wv) in gr.values().iter().zip(wr.values()) {
            match (gv, wv) {
                (Value::Float(g), Value::Float(w)) => {
                    let tol = 1e-9 * w.abs().max(1.0);
                    assert!((g - w).abs() <= tol, "{label}: {g} vs {w} at position {gp}");
                }
                _ => assert_eq!(gv, wv, "{label}: value at position {gp}"),
            }
        }
    }
}

#[test]
fn parallel_is_identical_to_sequential_batched() {
    for (name, node, ulp_slack) in partitionable_plans() {
        let plan = PhysPlan::new(node, Span::new(1, 500));

        let c_seq = catalog(42);
        let ctx_seq = ExecContext::new(&c_seq);
        let sequential = execute_batched_with(&plan, &ctx_seq, 64).unwrap();

        // Record path agrees with the batch path (anchor for the chain).
        let c_rec = catalog(42);
        let recorded = execute(&plan, &ExecContext::new(&c_rec)).unwrap();
        assert_eq!(recorded, sequential, "{name}: batch path diverged from record path");

        for workers in [2usize, 4, 8] {
            for morsel_positions in [0u64, 97] {
                let config = ParallelConfig { workers, batch_size: 64, morsel_positions };
                let c_par = catalog(42);
                let ctx_par = ExecContext::new(&c_par);
                let parallel = execute_parallel_with(&plan, &ctx_par, config).unwrap();
                let label = format!("{name} (workers={workers}, morsel={morsel_positions})");
                assert_rows_match(&parallel, &sequential, ulp_slack, &label);
            }
        }
    }
}

#[test]
fn awkward_morsel_and_batch_sizes() {
    // Morsels far smaller than a batch, mutually prime with the page size,
    // and not dividing the range must still merge back in exact order.
    let plan = PhysPlan::new(
        PhysNode::Select { input: base("D"), predicate: pred(35.0), span: Span::new(1, 500) },
        Span::new(3, 497),
    );
    let c_seq = catalog(7);
    let sequential = execute_batched_with(&plan, &ExecContext::new(&c_seq), 16).unwrap();
    for morsel_positions in [1u64, 3, 7, 97] {
        for batch_size in [1usize, 16] {
            let config = ParallelConfig { workers: 8, batch_size, morsel_positions };
            let c_par = catalog(7);
            let parallel = execute_parallel_with(&plan, &ExecContext::new(&c_par), config).unwrap();
            assert_eq!(
                parallel, sequential,
                "diverged at morsel={morsel_positions}, batch={batch_size}"
            );
        }
    }
}

#[test]
fn degree_one_is_exactly_the_sequential_path() {
    // Workers = 1 must be the sequential batch path to the letter: same
    // rows, same executor counters, same storage traffic — for any plan,
    // partitionable or not.
    let span = Span::new(1, 500);
    let plans = vec![
        PhysNode::Select { input: base("D"), predicate: pred(40.0), span },
        PhysNode::ValueOffset {
            input: base("D"),
            offset: -2,
            strategy: ValueOffsetStrategy::IncrementalCacheB,
            span,
        },
        PhysNode::Compose {
            left: base("D"),
            right: base("S"),
            predicate: None,
            strategy: JoinStrategy::LockStep,
            span,
        },
    ];
    for node in plans {
        let plan = PhysPlan::new(node, span);

        let c_seq = catalog(42);
        let ctx_seq = ExecContext::new(&c_seq);
        let sequential = execute_batched_with(&plan, &ctx_seq, 64).unwrap();

        let c_one = catalog(42);
        let ctx_one = ExecContext::new(&c_one);
        let config = ParallelConfig { workers: 1, batch_size: 64, morsel_positions: 0 };
        let one = execute_parallel_with(&plan, &ctx_one, config).unwrap();

        assert_eq!(one, sequential);
        assert_eq!(ctx_one.stats.snapshot(), ctx_seq.stats.snapshot());
        assert_eq!(c_one.stats().snapshot(), c_seq.stats().snapshot());
    }
}

#[test]
fn non_partitionable_plans_are_rejected() {
    // Value offsets reach arbitrarily far for their scope; cumulative
    // aggregates depend on everything before them. Neither can evaluate a
    // morsel independently, so multi-worker execution must refuse rather
    // than silently produce morsel-local answers.
    let span = Span::new(1, 500);
    let value_offset = PhysNode::ValueOffset {
        input: base("D"),
        offset: -2,
        strategy: ValueOffsetStrategy::IncrementalCacheB,
        span,
    };
    let cumulative = PhysNode::Aggregate {
        input: base("D"),
        func: AggFunc::Sum,
        attr_index: 1,
        window: Window::Cumulative,
        strategy: AggStrategy::CacheA,
        span,
    };
    let nested =
        PhysNode::Select { input: Box::new(value_offset.clone()), predicate: pred(0.0), span };
    for node in [value_offset, cumulative, nested] {
        assert!(!node.is_position_partitionable());
        let plan = PhysPlan::new(node, span);
        let c = catalog(42);
        let err = execute_parallel(&plan, &ExecContext::new(&c), 4).unwrap_err();
        assert!(matches!(err, seq_core::SeqError::Unsupported(_)), "got {err:?}");
    }
}

#[test]
fn degenerate_ranges() {
    let plan = PhysPlan::new(*base("D"), Span::empty());
    let c = catalog(42);
    assert_eq!(execute_parallel(&plan, &ExecContext::new(&c), 4).unwrap(), vec![]);

    let unbounded =
        PhysPlan::new(PhysNode::Base { name: "D".into(), span: Span::all() }, Span::all());
    let c = catalog(42);
    let err = execute_parallel(&unbounded, &ExecContext::new(&c), 4).unwrap_err();
    assert!(matches!(err, seq_core::SeqError::Unsupported(_)));
}

// ---------------------------------------------------------------------------
// Stat folding: identical counters across pure-batch, adapter-sandwiched,
// and parallel drives of the same plan.
// ---------------------------------------------------------------------------

/// A fully dense catalog so batch boundaries align exactly across drives.
fn dense_catalog(n: i64) -> Catalog {
    let mut c = Catalog::new();
    c.set_page_capacity(64);
    let sch = schema(&[("time", AttrType::Int), ("close", AttrType::Float)]);
    let entries = (1..=n).map(|p| (p, record![p, (p % 97) as f64])).collect();
    let dense = BaseSequence::from_entries(sch, entries).unwrap();
    c.register("T", &dense);
    c
}

#[test]
fn stat_folding_is_identical_across_drives() {
    // Aligned parameters: dense input, batch 64, morsels a multiple of the
    // batch size — every drive sees the same batch boundaries, so even the
    // *number* of folded counter updates matches, not just the totals.
    const N: i64 = 4096;
    const B: usize = 64;
    let span = Span::new(1, N);
    let node = PhysNode::Select {
        input: Box::new(PhysNode::Base { name: "T".into(), span }),
        predicate: pred(-1.0), // keeps every row: output batches stay full
        span,
    };
    let plan = PhysPlan::new(node, span);

    // Drive 1: pure batch pipeline.
    let c1 = dense_catalog(N);
    let ctx1 = ExecContext::new(&c1);
    let pure = execute_batched_with(&plan, &ctx1, B).unwrap();

    // Drive 2: the same pipeline sandwiched through both adapters
    // (batch -> record -> batch), drained the way execute_batched drains.
    let c2 = dense_catalog(N);
    let ctx2 = ExecContext::new(&c2);
    let inner = plan.root.open_batch(&ctx2, B).unwrap();
    let mut sandwich = RecordToBatchCursor::new(Box::new(BatchToRecordCursor::new(inner)), B);
    let mut sandwiched = Vec::new();
    {
        use seq_exec::BatchCursor;
        let mut item = sandwich.next_batch_from(span.start()).unwrap();
        while let Some(batch) = item {
            ctx2.stats.record_outputs(batch.len() as u64);
            batch.append_records_into(&mut sandwiched);
            item = sandwich.next_batch().unwrap();
        }
    }

    // Drive 3: parallel, morsels of 512 positions (8 aligned batches each).
    let c3 = dense_catalog(N);
    let ctx3 = ExecContext::new(&c3);
    let config = ParallelConfig { workers: 4, batch_size: B, morsel_positions: 512 };
    let parallel = execute_parallel_with(&plan, &ctx3, config).unwrap();

    assert_eq!(pure, sandwiched);
    assert_eq!(pure, parallel);
    assert_eq!(pure.len(), N as usize);

    let (s1, s2, s3) = (ctx1.stats.snapshot(), ctx2.stats.snapshot(), ctx3.stats.snapshot());
    assert_eq!(s1.output_records, s2.output_records);
    assert_eq!(s1.output_records, s3.output_records);
    assert_eq!(s1.predicate_evals, s2.predicate_evals);
    assert_eq!(s1.predicate_evals, s3.predicate_evals);
    assert_eq!(s1.stat_folds, s2.stat_folds, "sandwich changed fold granularity");
    assert_eq!(s1.stat_folds, s3.stat_folds, "parallel changed fold granularity");

    let (a1, a2, a3) = (c1.stats().snapshot(), c2.stats().snapshot(), c3.stats().snapshot());
    assert_eq!(a1.stream_records, a2.stream_records);
    assert_eq!(a1.stream_records, a3.stream_records);
    assert_eq!(a1.page_reads, a2.page_reads);
    assert_eq!(a1.page_reads, a3.page_reads, "aligned morsels must not re-read pages");
}

#[test]
fn stat_totals_match_on_filtering_plans() {
    // With a selective predicate the fold boundaries shift between drives
    // (re-batching packs survivors differently), but the charged totals —
    // outputs, predicate applications, records streamed — must not.
    const N: i64 = 4096;
    const B: usize = 64;
    let span = Span::new(1, N);
    let node = PhysNode::Select {
        input: Box::new(PhysNode::Base { name: "T".into(), span }),
        predicate: pred(48.0),
        span,
    };
    let plan = PhysPlan::new(node, span);

    let c1 = dense_catalog(N);
    let ctx1 = ExecContext::new(&c1);
    let pure = execute_batched_with(&plan, &ctx1, B).unwrap();

    let c3 = dense_catalog(N);
    let ctx3 = ExecContext::new(&c3);
    let config = ParallelConfig { workers: 8, batch_size: B, morsel_positions: 96 };
    let parallel = execute_parallel_with(&plan, &ctx3, config).unwrap();

    assert_eq!(pure, parallel);
    let (s1, s3) = (ctx1.stats.snapshot(), ctx3.stats.snapshot());
    assert_eq!(s1.output_records, s3.output_records);
    assert_eq!(s1.predicate_evals, s3.predicate_evals);
    let (a1, a3) = (c1.stats().snapshot(), c3.stats().snapshot());
    assert_eq!(a1.stream_records, a3.stream_records);
}
