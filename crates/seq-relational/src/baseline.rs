//! The Example 1.1 baseline plans.
//!
//! The paper's SQL formulation:
//!
//! ```sql
//! SELECT V.name
//! FROM   Volcanos V, Earthquakes E
//! WHERE  E.strength > 7.0 AND
//!        E.time = (SELECT max(E1.time) FROM Earthquakes E1
//!                  WHERE E1.time < V.time)
//! ```
//!
//! and the plan it says a conventional optimizer would produce: "For every
//! Volcano tuple in the outer query, the sub-query would be invoked to find
//! the time of the most recent earthquake. Each such access to the sub-query
//! involves an aggregate over the entire Earthquake relation. The time of
//! the most recent earthquake is used as a join condition to probe the
//! Earthquake relation in the outer query. Finally, the selection condition
//! ... is applied."
//!
//! [`nested_subquery_plan`] executes exactly that (O(|V|·|E|)).
//! [`indexed_nested_plan`] is the stronger relational baseline with a B-tree
//! style index on `Earthquakes.time` (O(|V|·log|E|)); the paper notes that
//! even sortedness knowledge "would not significantly alter the query plan" —
//! the per-volcano subquery remains.

use seq_core::{Record, Result, Value};

use crate::relation::{scalar_max_where, select_int_eq, RelStats, Relation};

/// Run the naive nested-subquery plan; returns `(name, eruption time)` rows.
pub fn nested_subquery_plan(
    volcanos: &Relation,
    quakes: &Relation,
    threshold: f64,
    stats: &RelStats,
) -> Result<Vec<(Record, i64)>> {
    let v_time = volcanos.col("time")?;
    let v_name = volcanos.col("name")?;
    let q_time = quakes.col("time")?;
    let q_strength = quakes.col("strength")?;
    let mut out = Vec::new();

    // Materialize the outer scan first so its accounting is not interleaved
    // confusingly; the cost shape is identical.
    let outer: Vec<Record> = volcanos.scan(stats).cloned().collect();
    for v in outer {
        let vt = v.value(v_time)?.as_i64()?;
        // Correlated scalar subquery: max(E1.time) where E1.time < V.time —
        // a full aggregate scan per volcano.
        stats.count_subquery();
        let most_recent =
            scalar_max_where(quakes, "time", |e| Ok(e.value(q_time)?.as_i64()? < vt), stats)?;
        let Some(et) = most_recent else { continue };
        // Join condition E.time = <subquery>: another scan of Earthquakes.
        for e in select_int_eq(quakes, "time", et, stats)? {
            // Selection E.strength > threshold.
            if e.value(q_strength)?.as_f64()? > threshold {
                out.push((Record::new(vec![v.value(v_name)?.clone()]), vt));
            }
        }
    }
    Ok(out)
}

/// The indexed variant: the correlated subquery and the join probe both go
/// through a sorted index on `Earthquakes.time`.
pub fn indexed_nested_plan(
    volcanos: &Relation,
    quakes: &Relation,
    threshold: f64,
    stats: &RelStats,
) -> Result<Vec<(Record, i64)>> {
    let v_time = volcanos.col("time")?;
    let v_name = volcanos.col("name")?;
    let q_strength = quakes.col("strength")?;
    let index = quakes.build_int_index("time")?;
    let mut out = Vec::new();

    let outer: Vec<Record> = volcanos.scan(stats).cloned().collect();
    for v in outer {
        let vt = v.value(v_time)?.as_i64()?;
        stats.count_subquery();
        let Some((_, tuple_pos)) = index.max_below(vt, stats) else { continue };
        let e = quakes.tuple(tuple_pos);
        if e.value(q_strength)?.as_f64()? > threshold {
            out.push((Record::new(vec![Value::clone(v.value(v_name)?)]), vt));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use seq_core::{record, schema, AttrType};

    fn world() -> (Relation, Relation) {
        let volcanos = Relation::new(
            schema(&[("time", AttrType::Int), ("name", AttrType::Str)]),
            vec![
                record![15i64, "etna"],
                record![25i64, "fuji"],
                record![45i64, "rainier"],
                record![5i64, "early"], // before any earthquake
            ],
        )
        .unwrap();
        let quakes = Relation::new(
            schema(&[("time", AttrType::Int), ("strength", AttrType::Float)]),
            vec![record![10i64, 6.0], record![20i64, 8.0], record![40i64, 5.0]],
        )
        .unwrap();
        (volcanos, quakes)
    }

    #[test]
    fn nested_plan_answers_example_1_1() {
        let (v, q) = world();
        let stats = RelStats::new();
        let out = nested_subquery_plan(&v, &q, 7.0, &stats).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0.value(0).unwrap().as_str().unwrap(), "fuji");
        assert_eq!(out[0].1, 25);
        assert_eq!(stats.subquery_invocations(), 4);
    }

    #[test]
    fn indexed_plan_agrees() {
        let (v, q) = world();
        let s1 = RelStats::new();
        let s2 = RelStats::new();
        let a = nested_subquery_plan(&v, &q, 7.0, &s1).unwrap();
        let b = indexed_nested_plan(&v, &q, 7.0, &s2).unwrap();
        assert_eq!(a, b);
        // The index converts scans into probes.
        assert!(s2.tuples_scanned() < s1.tuples_scanned());
        assert!(s2.index_probes() > 0);
    }

    #[test]
    fn naive_plan_access_shape_is_quadratic() {
        // |V| volcanos each trigger ≥1 full scan of |E| quakes.
        let n_q = 50i64;
        let n_v = 30i64;
        let quakes = Relation::new(
            schema(&[("time", AttrType::Int), ("strength", AttrType::Float)]),
            (0..n_q).map(|i| record![i * 10, 5.0 + (i % 5) as f64]).collect(),
        )
        .unwrap();
        let volcanos = Relation::new(
            schema(&[("time", AttrType::Int), ("name", AttrType::Str)]),
            (0..n_v).map(|i| record![i * 17 + 1, format!("v{i}").as_str()]).collect(),
        )
        .unwrap();
        let stats = RelStats::new();
        nested_subquery_plan(&volcanos, &quakes, 7.0, &stats).unwrap();
        let scans = stats.tuples_scanned();
        assert!(
            scans as i64 >= n_v * n_q,
            "expected ≥ |V|·|E| = {} scanned tuples, got {scans}",
            n_v * n_q
        );
    }

    #[test]
    fn threshold_filters_everything() {
        let (v, q) = world();
        let stats = RelStats::new();
        let out = nested_subquery_plan(&v, &q, 10.0, &stats).unwrap();
        assert!(out.is_empty());
    }

    #[test]
    fn empty_relations() {
        let (v, q) = world();
        let empty_v = Relation::new(v.schema().clone(), vec![]).unwrap();
        let empty_q = Relation::new(q.schema().clone(), vec![]).unwrap();
        let stats = RelStats::new();
        assert!(nested_subquery_plan(&empty_v, &q, 7.0, &stats).unwrap().is_empty());
        assert!(nested_subquery_plan(&v, &empty_q, 7.0, &stats).unwrap().is_empty());
        assert!(indexed_nested_plan(&v, &empty_q, 7.0, &stats).unwrap().is_empty());
    }
}
