//! # seq-relational — the relational baseline engine
//!
//! A deliberately conventional tuple-at-a-time relational engine implementing
//! the plans Example 1.1 of the paper says a relational system would run:
//! the naive correlated nested-subquery plan and its index-assisted variant.
//! All tuple and index accesses are counted so the benchmark harness can
//! report the O(|V|·|E|) vs O(|V|·log|E|) vs O(|V|+|E|) access shapes the
//! paper's motivating example claims.

pub mod baseline;
pub mod relation;

pub use baseline::{indexed_nested_plan, nested_subquery_plan};
pub use relation::{scalar_max_where, select_int_eq, IntIndex, RelStats, Relation};
