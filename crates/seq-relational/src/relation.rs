//! Relations: unordered collections of records, with access accounting.
//!
//! This minimal engine exists to play the role of the "conventional
//! relational query optimizer as described in \[SMALP79\]" that Example 1.1
//! contrasts against. Relations count every tuple they hand out, so the
//! baseline's O(|V|·|E|) access shape is measured, not asserted.

use std::cell::Cell;

use seq_core::{Record, Result, Schema, Value};

/// Access counters for one relational execution.
#[derive(Debug, Default)]
pub struct RelStats {
    tuples_scanned: Cell<u64>,
    index_probes: Cell<u64>,
    subquery_invocations: Cell<u64>,
}

impl RelStats {
    /// Fresh (zeroed) counters.
    pub fn new() -> RelStats {
        RelStats::default()
    }

    /// Tuples handed out by full scans.
    pub fn tuples_scanned(&self) -> u64 {
        self.tuples_scanned.get()
    }

    /// Index lookups performed.
    pub fn index_probes(&self) -> u64 {
        self.index_probes.get()
    }

    /// Correlated-subquery invocations.
    pub fn subquery_invocations(&self) -> u64 {
        self.subquery_invocations.get()
    }

    /// Charge `n` scanned tuples.
    pub fn count_scan(&self, n: u64) {
        self.tuples_scanned.set(self.tuples_scanned.get() + n);
    }

    /// Charge one index probe.
    pub fn count_probe(&self) {
        self.index_probes.set(self.index_probes.get() + 1);
    }

    /// Charge one subquery invocation.
    pub fn count_subquery(&self) {
        self.subquery_invocations.set(self.subquery_invocations.get() + 1);
    }

    /// Zero all counters.
    pub fn reset(&self) {
        self.tuples_scanned.set(0);
        self.index_probes.set(0);
        self.subquery_invocations.set(0);
    }
}

/// An in-memory relation.
#[derive(Debug, Clone)]
pub struct Relation {
    schema: Schema,
    tuples: Vec<Record>,
}

impl Relation {
    /// A relation from schema-checked tuples.
    pub fn new(schema: Schema, tuples: Vec<Record>) -> Result<Relation> {
        for t in &tuples {
            Record::checked(t.values().to_vec(), &schema)?;
        }
        Ok(Relation { schema, tuples })
    }

    /// The tuple schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// Whether the relation has no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Full scan, charging one tuple per record handed out.
    pub fn scan<'a>(&'a self, stats: &'a RelStats) -> impl Iterator<Item = &'a Record> + 'a {
        self.tuples.iter().inspect(move |_| stats.count_scan(1))
    }

    /// Attribute index lookup.
    pub fn col(&self, name: &str) -> Result<usize> {
        self.schema.index_of(name)
    }

    /// Build a sorted unique index on an integer attribute. Probes through
    /// the returned index are charged as index probes, not scans.
    pub fn build_int_index(&self, attr: &str) -> Result<IntIndex> {
        let c = self.col(attr)?;
        let mut keys: Vec<(i64, usize)> = self
            .tuples
            .iter()
            .enumerate()
            .map(|(i, t)| Ok((t.value(c)?.as_i64()?, i)))
            .collect::<Result<_>>()?;
        keys.sort_unstable();
        Ok(IntIndex { keys })
    }

    /// The tuple at physical position `i`.
    pub fn tuple(&self, i: usize) -> &Record {
        &self.tuples[i]
    }
}

/// A sorted integer index over one relation attribute.
#[derive(Debug, Clone)]
pub struct IntIndex {
    /// (key, tuple position), sorted by key.
    keys: Vec<(i64, usize)>,
}

impl IntIndex {
    /// Exact-match probe.
    pub fn probe(&self, key: i64, stats: &RelStats) -> Option<usize> {
        stats.count_probe();
        self.keys.binary_search_by_key(&key, |(k, _)| *k).ok().map(|i| self.keys[i].1)
    }

    /// Largest key strictly below `bound`.
    pub fn max_below(&self, bound: i64, stats: &RelStats) -> Option<(i64, usize)> {
        stats.count_probe();
        let i = self.keys.partition_point(|(k, _)| *k < bound);
        if i == 0 {
            None
        } else {
            Some(self.keys[i - 1])
        }
    }
}

/// Convenience: the scalar MAX of an integer attribute under a predicate,
/// via full scan (what the correlated subquery of Example 1.1 does).
pub fn scalar_max_where(
    rel: &Relation,
    attr: &str,
    pred: impl Fn(&Record) -> Result<bool>,
    stats: &RelStats,
) -> Result<Option<i64>> {
    let c = rel.col(attr)?;
    let mut best: Option<i64> = None;
    for t in rel.scan(stats) {
        if pred(t)? {
            let v = t.value(c)?.as_i64()?;
            best = Some(best.map_or(v, |b| b.max(v)));
        }
    }
    Ok(best)
}

/// Convenience: select tuples where an integer attribute equals `key`, via
/// full scan.
pub fn select_int_eq<'a>(
    rel: &'a Relation,
    attr: &str,
    key: i64,
    stats: &'a RelStats,
) -> Result<Vec<&'a Record>> {
    let c = rel.col(attr)?;
    let mut out = Vec::new();
    for t in rel.scan(stats) {
        if t.value(c)?.sql_eq(&Value::Int(key))? {
            out.push(t);
        }
    }
    Ok(out)
}

impl Relation {
    /// Build a relation from `(position, record)` sequence entries, exposing
    /// the position as the leading `time` attribute if the schema already
    /// starts with it, or as-is otherwise.
    pub fn from_sequence_entries(schema: Schema, entries: &[(i64, Record)]) -> Result<Relation> {
        let tuples = entries.iter().map(|(_, r)| r.clone()).collect();
        Relation::new(schema, tuples)
    }
}

impl std::fmt::Display for Relation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "{} ({} tuples)", self.schema, self.tuples.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use seq_core::{record, schema, AttrType};

    fn quakes() -> Relation {
        Relation::new(
            schema(&[("time", AttrType::Int), ("strength", AttrType::Float)]),
            vec![record![10i64, 6.0], record![20i64, 8.0], record![40i64, 5.0]],
        )
        .unwrap()
    }

    #[test]
    fn schema_checked_construction() {
        let bad = Relation::new(schema(&[("time", AttrType::Int)]), vec![record![1.5]]);
        assert!(bad.is_err());
    }

    #[test]
    fn scan_counts_tuples() {
        let r = quakes();
        let stats = RelStats::new();
        assert_eq!(r.scan(&stats).count(), 3);
        assert_eq!(stats.tuples_scanned(), 3);
        stats.reset();
        assert_eq!(stats.tuples_scanned(), 0);
    }

    #[test]
    fn scalar_max_under_predicate() {
        let r = quakes();
        let stats = RelStats::new();
        let tcol = r.col("time").unwrap();
        let m =
            scalar_max_where(&r, "time", |t| Ok(t.value(tcol)?.as_i64()? < 25), &stats).unwrap();
        assert_eq!(m, Some(20));
        let none =
            scalar_max_where(&r, "time", |t| Ok(t.value(tcol)?.as_i64()? < 5), &stats).unwrap();
        assert_eq!(none, None);
        assert_eq!(stats.tuples_scanned(), 6); // two full scans
    }

    #[test]
    fn select_eq_scans() {
        let r = quakes();
        let stats = RelStats::new();
        let hits = select_int_eq(&r, "time", 20, &stats).unwrap();
        assert_eq!(hits.len(), 1);
        assert_eq!(stats.tuples_scanned(), 3);
    }

    #[test]
    fn int_index_probe_and_max_below() {
        let r = quakes();
        let idx = r.build_int_index("time").unwrap();
        let stats = RelStats::new();
        assert_eq!(idx.probe(20, &stats), Some(1));
        assert_eq!(idx.probe(21, &stats), None);
        assert_eq!(idx.max_below(25, &stats).unwrap().0, 20);
        assert_eq!(idx.max_below(10, &stats), None);
        assert_eq!(stats.index_probes(), 4);
        assert_eq!(stats.tuples_scanned(), 0);
    }
}
