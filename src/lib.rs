//! # seqproc — sequence query processing
//!
//! A from-scratch Rust implementation of *Sequence Query Processing*
//! (Seshadri, Livny, Ramakrishnan — SIGMOD 1994): the sequence data model,
//! the compositional operator algebra with operator *scopes*, the cost-based
//! six-step optimizer (span propagation, query transformations, query
//! blocks, Selinger-style join-order enumeration, access-mode and
//! cache-strategy selection), and a pull-based executor with stream and
//! probed access modes.
//!
//! ## Quick start
//!
//! ```
//! use seqproc::prelude::*;
//!
//! // Store a daily price sequence.
//! let base = BaseSequence::from_entries(
//!     schema(&[("time", AttrType::Int), ("close", AttrType::Float)]),
//!     (1..=30).map(|p| (p, record![p, 100.0 + p as f64])).collect(),
//! ).unwrap();
//! let mut catalog = Catalog::new();
//! catalog.register("ACME", &base);
//!
//! // Declare: the 7-day moving average, where it exceeds 120.
//! let query = SeqQuery::base("ACME")
//!     .aggregate(AggFunc::Avg, "close", Window::trailing(7))
//!     .select(Expr::attr("avg_close").gt(Expr::lit(120.0)))
//!     .build();
//!
//! // Optimize and execute over a position range.
//! let cfg = OptimizerConfig::new(Span::new(1, 30));
//! let optimized = optimize(&query, &CatalogRef(&catalog), &cfg).unwrap();
//! let ctx = ExecContext::new(&catalog);
//! let rows = execute(&optimized.plan, &ctx).unwrap();
//! assert!(!rows.is_empty());
//! ```
//!
//! The layers are available individually: [`seq_core`] (model),
//! [`seq_storage`] (paged store), [`seq_ops`] (algebra + reference
//! semantics), [`seq_exec`] (cursors and strategies), [`seq_opt`]
//! (optimizer), [`seq_relational`] (the Example 1.1 relational baseline),
//! [`seq_workload`] (generators), and [`seq_serve`] (the `seqd` concurrent
//! serving layer: plan cache, snapshot reads, admission control).

pub use seq_core;
pub use seq_exec;
pub use seq_group;
pub use seq_lang;
pub use seq_ops;
pub use seq_opt;
pub use seq_relational;
pub use seq_serve;
pub use seq_storage;
pub use seq_workload;

/// One-stop imports for applications.
pub mod prelude {
    pub use seq_core::{
        record, schema, AttrType, BaseSequence, ConstantSequence, Record, Schema, SeqError,
        SeqMeta, Sequence, Span, Value,
    };
    pub use seq_exec::{
        execute, execute_batched, execute_batched_with, execute_parallel, execute_parallel_with,
        execute_within, probe_positions, AggStrategy, ExecContext, ExecStats, HistogramSnapshot,
        JoinStrategy, LatencyHistogram, MetricsSnapshot, ParallelConfig, Phase, PhysNode, PhysPlan,
        QueryPath, QueryProfile, SessionMetrics, ValueOffsetStrategy,
    };
    pub use seq_ops::{
        AggFunc, BinOp, Expr, QueryGraph, ReferenceEvaluator, SeqOperator, SeqQuery, Window,
    };
    pub use seq_opt::{
        absorb_feedback, explain_analyze, explain_analyze_with, optimize, AnalyzeReport,
        CatalogRef, CostParams, FeedbackStats, Optimized, OptimizerConfig, StatsOverlay,
        WithFeedback,
    };
    pub use seq_storage::Catalog;
}
