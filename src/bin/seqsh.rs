//! seqsh — an interactive shell for sequence queries.
//!
//! ```sh
//! cargo run --release --bin seqsh -- --world table1
//! cargo run --release --bin seqsh -- --world weather \
//!     -e '(select (> strength 7.0) (compose (base Volcanos) (prev (base Quakes))))'
//! ```
//!
//! Queries use the `seq-lang` textual algebra. Shell commands:
//!
//! - `\tables` — list base sequences with meta-data, including the encoded
//!   page footprint as a percentage of the plain layout and each column's
//!   dominant encoding;
//! - `\explain <query>` — show the optimizer pipeline for a query;
//! - `\analyze <query>` — execute under seq-trace instrumentation and show
//!   the plan annotated with each operator's execution mode
//!   (`batch`/`tuple`/`fused`), actual rows, per-operator timings and
//!   counters, and estimated-vs-measured cost (`--profile-out FILE` also
//!   writes the JSON profile export, mode field included);
//! - `\stats` — show session-cumulative executor + storage counters plus the
//!   phase latency histograms; `\stats reset` zeroes counters, histograms,
//!   and the trace ring together and stamps a new measurement window, so the
//!   legacy counters and the telemetry registry can never disagree about
//!   what they measured;
//! - `\metrics` — show the always-on session telemetry (query counts per
//!   execution path, counter folds, p50/p90/p99/max latency histograms for
//!   parse/optimize/execute/morsel, buffer-pool stripe counters when a pool
//!   is attached, trace-ring occupancy); `\metrics reset` is the same
//!   window-stamping reset as `\stats reset` (`--metrics-out FILE` writes
//!   the JSON snapshot on exit, `--trace-out FILE` writes the Chrome
//!   `trace_event` export — load it in `chrome://tracing` or Perfetto);
//! - `\limit N` — cap printed rows (default 20);
//! - `\range LO HI` — set the query template's position range;
//! - `\set parallelism N` — worker threads for morsel-driven parallel
//!   execution of partitionable plans (default 1 = sequential);
//! - `\set pushdown on|off` — fuse eligible selections into base scans so
//!   zone maps can skip refuted pages (default on; `\stats` and `\analyze`
//!   report the resulting `pages_skipped`);
//! - `\set feedback on|off` — fold each `\analyze` run's measured
//!   selectivities, densities, and page-skip fractions back into the
//!   session's catalog statistics, so later plans price with measured
//!   numbers instead of model defaults (default on; `\tables` shows the
//!   refreshed stats, `\feedback clear` discards them);
//! - `\quit` — exit.
//!
//! With `--connect HOST:PORT` the shell runs as a thin client to a `seqd`
//! server instead: lines are forwarded over the wire protocol and the
//! server's payload is printed (session state then lives server-side).

use std::io::{BufRead, Write};
use std::path::PathBuf;

use seqproc::prelude::*;
use seqproc::seq_lang::parse_query;
use seqproc::seq_workload::{table1_catalog, weather_catalog, WeatherSpec};

const COMMANDS: &str =
    "\\tables \\explain \\analyze \\stats \\metrics \\feedback \\limit \\range \\set \\quit";

struct Shell {
    catalog: Catalog,
    range: Span,
    limit: usize,
    parallelism: usize,
    pushdown: bool,
    /// Whether `\analyze` runs refresh the session's statistics overlay and
    /// later plans price with the measured numbers.
    feedback: bool,
    /// Measured per-sequence statistics absorbed from profiled runs.
    overlay: StatsOverlay,
    /// Session-cumulative executor counters (`\stats` shows them; per-query
    /// contexts share these so every query adds to the same totals).
    exec_stats: ExecStats,
    /// Where `\analyze` writes its JSON profile export, if anywhere.
    profile_out: Option<PathBuf>,
    /// The session's always-on telemetry registry: every query context
    /// shares it, so histograms and counter folds span the whole session.
    metrics: std::sync::Arc<SessionMetrics>,
}

enum QueryMode {
    Run,
    Explain,
    Analyze,
}

impl Shell {
    fn run_line(&mut self, line: &str) -> Result<bool, SeqError> {
        let line = line.trim();
        if line.is_empty() || line.starts_with(';') {
            return Ok(true);
        }
        if let Some(rest) = line.strip_prefix('\\') {
            return self.command(rest);
        }
        self.query(line, QueryMode::Run)?;
        Ok(true)
    }

    fn command(&mut self, rest: &str) -> Result<bool, SeqError> {
        let mut parts = rest.split_whitespace();
        match parts.next() {
            Some("quit") | Some("q") => return Ok(false),
            Some("tables") => {
                let mut names: Vec<&str> = self.catalog.names().collect();
                names.sort();
                for name in names {
                    let stored = self.catalog.get(name)?;
                    let comp = stored.compression();
                    let encodings: Vec<String> =
                        comp.columns.iter().map(|m| m.dominant().to_string()).collect();
                    println!(
                        "  {name}: {} ({} records, {} pages, {:.0}% of plain [{}])",
                        self.catalog.meta(name)?,
                        stored.record_count(),
                        stored.page_count(),
                        comp.ratio() * 100.0,
                        encodings.join(",")
                    );
                    if let Some(fb) = self.overlay.get(name) {
                        println!("      measured: {}", describe_feedback(fb));
                    }
                }
            }
            Some("limit") => match parts.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) => {
                    self.limit = n;
                    println!("row limit: {n}");
                }
                None => println!("usage: \\limit N"),
            },
            Some("range") => {
                match (
                    parts.next().and_then(|s| s.parse::<i64>().ok()),
                    parts.next().and_then(|s| s.parse::<i64>().ok()),
                ) {
                    (Some(lo), Some(hi)) => {
                        self.range = Span::new(lo, hi);
                        println!("position range: {}", self.range);
                    }
                    _ => println!("usage: \\range LO HI"),
                }
            }
            Some("set") => match (parts.next(), parts.next()) {
                (Some("parallelism"), Some(v)) => match v.parse::<usize>() {
                    Ok(n) if n >= 1 => {
                        self.parallelism = n;
                        println!("parallelism: {n} worker{}", if n == 1 { "" } else { "s" });
                    }
                    _ => println!("usage: \\set parallelism N  (N >= 1)"),
                },
                (Some("pushdown"), Some(v @ ("on" | "off"))) => {
                    self.pushdown = v == "on";
                    println!("selection pushdown: {v}");
                }
                (Some("feedback"), Some(v @ ("on" | "off"))) => {
                    self.feedback = v == "on";
                    println!("statistics feedback: {v}");
                }
                _ => println!(
                    "usage: \\set parallelism N  |  \\set pushdown on|off  |  \\set feedback on|off"
                ),
            },
            Some("feedback") => match parts.next() {
                Some("clear") => {
                    self.overlay.clear();
                    println!("measured statistics discarded");
                }
                None => {
                    if self.overlay.is_empty() {
                        println!("no measured statistics yet; run \\analyze with feedback on");
                    } else {
                        for (name, fb) in self.overlay.iter_sorted() {
                            println!("  {name}: {}", describe_feedback(fb));
                        }
                    }
                }
                Some(arg) => println!("usage: \\feedback [clear]  (got {arg:?})"),
            },
            Some("explain") => {
                let query_text: String = parts.collect::<Vec<_>>().join(" ");
                self.query(&query_text, QueryMode::Explain)?;
            }
            Some("analyze") => {
                let query_text: String = parts.collect::<Vec<_>>().join(" ");
                self.query(&query_text, QueryMode::Analyze)?;
            }
            Some("stats") => match parts.next() {
                None => {
                    let snap = self.metrics.snapshot();
                    println!(
                        "window:   #{} since unix_ms {}",
                        snap.resets, snap.window_started_unix_ms
                    );
                    println!("executor: {}", self.exec_stats.snapshot());
                    println!("storage:  {}", self.catalog.stats().snapshot());
                    for (name, h) in [
                        ("parse", &snap.parse),
                        ("optimize", &snap.optimize),
                        ("execute", &snap.execute),
                    ] {
                        println!("latency {name:>8}: {}", h.summary_line());
                    }
                }
                Some("reset") => self.reset_measurement(),
                Some(arg) => println!("usage: \\stats [reset]  (got {arg:?})"),
            },
            Some("metrics") => match parts.next() {
                None => self.print_metrics(),
                Some("reset") => self.reset_measurement(),
                Some(arg) => println!("usage: \\metrics [reset]  (got {arg:?})"),
            },
            other => {
                println!("unknown command \\{}; try {COMMANDS}", other.unwrap_or(""))
            }
        }
        Ok(true)
    }

    /// Zero the legacy counters AND the telemetry registry together, and
    /// stamp a new measurement window — a partial reset would leave the
    /// histograms and the cumulative counters describing different spans of
    /// the session.
    fn reset_measurement(&mut self) {
        self.exec_stats.reset();
        self.catalog.reset_measurement();
        self.metrics.reset();
        let snap = self.metrics.snapshot();
        println!(
            "stats + metrics reset (window #{} from unix_ms {})",
            snap.resets, snap.window_started_unix_ms
        );
    }

    fn print_metrics(&self) {
        let snap = self.metrics.snapshot();
        println!("window #{} since unix_ms {}", snap.resets, snap.window_started_unix_ms);
        println!(
            "queries: {} ({} failed) | tuple {} batch {} parallel {} probe {}",
            snap.queries,
            snap.queries_failed,
            snap.path_counts[0],
            snap.path_counts[1],
            snap.path_counts[2],
            snap.path_counts[3],
        );
        println!(
            "rows_out {} | page_reads {} (hits {}) | pages_skipped {} | probes {} | \
             bytes_decoded {}",
            snap.rows_out,
            snap.page_reads,
            snap.page_hits,
            snap.pages_skipped,
            snap.probes,
            snap.bytes_decoded,
        );
        println!(
            "predicate_evals {} | cache {}p/{}s | morsels {}",
            snap.predicate_evals, snap.cache_probes, snap.cache_stores, snap.morsels
        );
        println!(
            "selections_carried {} | slots_compacted {} | columns_pruned {}",
            snap.selections_carried, snap.slots_compacted, snap.columns_pruned
        );
        for (name, h) in [
            ("parse", &snap.parse),
            ("optimize", &snap.optimize),
            ("execute", &snap.execute),
            ("morsel", &snap.morsel),
        ] {
            println!("latency {name:>8}: {}", h.summary_line());
        }
        match self.catalog.buffer() {
            Some(pool) => {
                for (i, s) in pool.stripe_stats().iter().enumerate() {
                    println!(
                        "  stripe {i}: hits {} misses {} contended {}",
                        s.hits, s.misses, s.contended
                    );
                }
            }
            None => println!("buffer pool: none attached"),
        }
        println!(
            "trace ring: {} recorded, {} dropped, capacity {}",
            snap.trace_recorded, snap.trace_dropped, snap.trace_capacity
        );
    }

    fn query(&mut self, text: &str, mode: QueryMode) -> Result<(), SeqError> {
        let parse_start = self.metrics.now_nanos();
        let parse_timer = std::time::Instant::now();
        let parsed = parse_query(text);
        self.metrics.record_phase(Phase::Parse, parse_start, parse_timer.elapsed());
        let graph = match parsed {
            Ok(g) => g,
            Err(e) => {
                println!("{e}");
                return Ok(());
            }
        };
        let mut cfg = OptimizerConfig::new(self.range);
        cfg.parallelism = self.parallelism;
        cfg.pushdown = self.pushdown;
        let base = CatalogRef(&self.catalog);
        let opt_start = self.metrics.now_nanos();
        let opt_timer = std::time::Instant::now();
        let planned = if self.feedback && !self.overlay.is_empty() {
            optimize(&graph, &WithFeedback::new(&base, &self.overlay), &cfg)
        } else {
            optimize(&graph, &base, &cfg)
        };
        self.metrics.record_phase(Phase::Optimize, opt_start, opt_timer.elapsed());
        let optimized = match planned {
            Ok(o) => o,
            Err(e) => {
                println!("{e}");
                return Ok(());
            }
        };
        match mode {
            QueryMode::Explain => {
                println!("{}", optimized.explain);
                Ok(())
            }
            QueryMode::Analyze => self.analyze(&optimized, &cfg),
            QueryMode::Run => self.execute(&optimized),
        }
    }

    fn execute(&mut self, optimized: &Optimized) -> Result<(), SeqError> {
        let storage_before = self.catalog.stats().snapshot();
        let mut ctx = ExecContext::with_stats(&self.catalog, self.exec_stats.clone());
        ctx.share_telemetry(&self.metrics);
        let started = std::time::Instant::now();
        let rows = match optimized.execute(&ctx) {
            Ok(r) => r,
            Err(e) => {
                println!("{e}");
                return Ok(());
            }
        };
        let elapsed = started.elapsed();
        for (pos, rec) in rows.iter().take(self.limit) {
            println!("  {pos}: {rec}");
        }
        if rows.len() > self.limit {
            println!("  ... {} more rows (\\limit to adjust)", rows.len() - self.limit);
        }
        println!(
            "{} rows in {:.2}ms | est cost {:.1} | {} | {}",
            rows.len(),
            elapsed.as_secs_f64() * 1e3,
            optimized.est_cost,
            optimized.exec_mode,
            self.catalog.stats().snapshot().since(&storage_before)
        );
        Ok(())
    }

    fn analyze(&mut self, optimized: &Optimized, cfg: &OptimizerConfig) -> Result<(), SeqError> {
        let outcome = {
            let mut ctx = ExecContext::with_stats(&self.catalog, self.exec_stats.clone());
            ctx.share_telemetry(&self.metrics);
            let base = CatalogRef(&self.catalog);
            if self.feedback && !self.overlay.is_empty() {
                // Estimates in the report come from the same refreshed
                // statistics the plan was priced with.
                let info = WithFeedback::new(&base, &self.overlay);
                explain_analyze_with(optimized, &mut ctx, &cfg.cost, &info)
            } else {
                explain_analyze(optimized, &mut ctx, &cfg.cost)
            }
        };
        let mut report = match outcome {
            Ok(r) => r,
            Err(e) => {
                println!("{e}");
                return Ok(());
            }
        };
        if self.feedback {
            let folded = absorb_feedback(optimized, &report, &mut self.overlay);
            if folded > 0 {
                println!(
                    "feedback: refreshed measured stats for {folded} operator(s) \
                     (\\tables or \\feedback to inspect)"
                );
            }
            report.refreshed = self
                .overlay
                .iter_sorted()
                .into_iter()
                .map(|(name, fb)| (name.to_string(), fb.clone()))
                .collect();
        }
        print!("{}", report.text);
        if let Some(path) = &self.profile_out {
            let json = report.to_json(&optimized.exec_mode.to_string());
            match std::fs::write(path, json) {
                Ok(()) => println!("profile JSON written to {}", path.display()),
                Err(e) => println!("could not write {}: {e}", path.display()),
            }
        }
        Ok(())
    }
}

/// One-line rendering of a sequence's measured statistics.
fn describe_feedback(fb: &FeedbackStats) -> String {
    let mut parts = Vec::new();
    if let Some(d) = fb.density {
        parts.push(format!("density={d:.3}"));
    }
    if let Some(s) = fb.selectivity {
        parts.push(format!("selectivity={s:.3}"));
    }
    if let Some(f) = fb.skip_fraction {
        parts.push(format!("skip_fraction={f:.3}"));
    }
    parts.push(format!("rows={}", fb.observed_rows));
    parts.push(format!("refreshes={}", fb.refreshes));
    parts.join(" ")
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut world = "table1".to_string();
    let mut scale = 10i64;
    let mut inline: Vec<String> = Vec::new();
    let mut profile_out: Option<PathBuf> = None;
    let mut trace_out: Option<PathBuf> = None;
    let mut metrics_out: Option<PathBuf> = None;
    let mut connect: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--world" => {
                world = args.get(i + 1).cloned().unwrap_or_default();
                i += 2;
            }
            "--connect" => {
                connect = args.get(i + 1).cloned();
                i += 2;
            }
            "--scale" => {
                scale = args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(10);
                i += 2;
            }
            "--profile-out" => {
                profile_out = args.get(i + 1).map(PathBuf::from);
                i += 2;
            }
            "--trace-out" => {
                trace_out = args.get(i + 1).map(PathBuf::from);
                i += 2;
            }
            "--metrics-out" => {
                metrics_out = args.get(i + 1).map(PathBuf::from);
                i += 2;
            }
            "-e" => {
                inline.push(args.get(i + 1).cloned().unwrap_or_default());
                i += 2;
            }
            other => {
                eprintln!(
                    "unknown argument {other:?}; usage: seqsh [--world table1|weather] \
                     [--scale N] [--profile-out FILE] [--trace-out FILE] \
                     [--metrics-out FILE] [--connect HOST:PORT] [-e QUERY]..."
                );
                std::process::exit(2);
            }
        }
    }

    // Client mode: forward lines to a seqd server instead of evaluating
    // locally (session state like \set and \range then lives server-side).
    if let Some(addr) = connect {
        run_remote(&addr, &inline);
        return;
    }

    let (catalog, range) = match world.as_str() {
        "table1" => {
            let c = table1_catalog(scale, 42, 64);
            let range = Span::new(1, 750 * scale);
            (c, range)
        }
        "weather" => {
            let span = Span::new(1, 20_000 * scale);
            let (c, _) = weather_catalog(
                &WeatherSpec::new(span, 800 * scale as usize, 150 * scale as usize, 42),
                64,
            );
            (c, span)
        }
        other => {
            eprintln!("unknown world {other:?} (expected table1 or weather)");
            std::process::exit(2);
        }
    };

    let mut shell = Shell {
        catalog,
        range,
        limit: 20,
        parallelism: 1,
        pushdown: true,
        feedback: true,
        overlay: StatsOverlay::new(),
        exec_stats: ExecStats::new(),
        profile_out,
        metrics: std::sync::Arc::new(SessionMetrics::new()),
    };
    println!("seqsh — world {world} (scale {scale}), range {range}. \\tables to inspect, \\quit to exit.");

    if !inline.is_empty() {
        for q in inline {
            if let Err(e) = shell.run_line(&q) {
                eprintln!("{e}");
            }
        }
        write_telemetry(&shell, trace_out.as_deref(), metrics_out.as_deref());
        return;
    }

    let stdin = std::io::stdin();
    loop {
        print!("seq> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => match shell.run_line(&line) {
                Ok(true) => {}
                Ok(false) => break,
                Err(e) => println!("{e}"),
            },
            Err(e) => {
                eprintln!("{e}");
                break;
            }
        }
    }
    write_telemetry(&shell, trace_out.as_deref(), metrics_out.as_deref());
}

/// Client mode (`--connect host:port`): forward each input line to a seqd
/// server over the wire protocol and print the payload. `-e` lines run
/// first; without them, stdin becomes an interactive remote session.
fn run_remote(addr: &str, inline: &[String]) {
    use seqproc::seq_serve::client::{Client, Response};
    let mut client = match Client::connect(addr) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("could not connect to {addr}: {e}");
            std::process::exit(1);
        }
    };
    let send = |client: &mut Client, line: &str| -> bool {
        let line = line.trim();
        if line.is_empty() || line.starts_with(';') {
            return true;
        }
        if line == "\\quit" || line == "\\q" {
            let _ = client.send(line);
            return false;
        }
        match client.send(line) {
            Ok(Response::Ok(lines)) => {
                for l in lines {
                    println!("{l}");
                }
                true
            }
            Ok(Response::Err { code, message }) => {
                println!("error [{code}]: {message}");
                true
            }
            Err(e) => {
                eprintln!("connection lost: {e}");
                false
            }
        }
    };
    for q in inline {
        if !send(&mut client, q) {
            return;
        }
    }
    if !inline.is_empty() {
        return;
    }
    println!("seqsh — connected to {addr}. \\quit to exit.");
    let stdin = std::io::stdin();
    loop {
        print!("seq> ");
        std::io::stdout().flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {
                if !send(&mut client, &line) {
                    break;
                }
            }
            Err(e) => {
                eprintln!("{e}");
                break;
            }
        }
    }
}

/// Write the session's telemetry exports on exit: the Chrome `trace_event`
/// JSON (`--trace-out`) and the metrics snapshot (`--metrics-out`).
fn write_telemetry(
    shell: &Shell,
    trace_out: Option<&std::path::Path>,
    metrics_out: Option<&std::path::Path>,
) {
    if let Some(path) = trace_out {
        match std::fs::write(path, shell.metrics.trace_to_chrome_json()) {
            Ok(()) => println!("trace JSON written to {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }
    if let Some(path) = metrics_out {
        match std::fs::write(path, shell.metrics.to_json(shell.catalog.buffer().map(|p| &**p))) {
            Ok(()) => println!("metrics JSON written to {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }
}
