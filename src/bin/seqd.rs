//! seqd — the sequence query daemon.
//!
//! Serves the `seqsh` line protocol over TCP to many concurrent sessions,
//! with a shared normalized plan cache, snapshot reads over the published
//! catalog, and bounded-queue admission control (overload is answered with
//! `ERR busy`, not unbounded latency).
//!
//! ```sh
//! cargo run --release --bin seqd -- --world table1 --port 7878 --workers 4
//! seqsh --connect 127.0.0.1:7878
//! ```
//!
//! SIGTERM or ctrl-c drains in-flight queries, refuses new admissions, and
//! flushes `--metrics-out` / `--trace-out` before exiting.

use std::path::PathBuf;

use seqproc::prelude::*;
use seqproc::seq_serve::{
    install_signal_handlers, serve, signal_shutdown_requested, Engine, ServerConfig,
};
use seqproc::seq_workload::{table1_catalog, weather_catalog, WeatherSpec};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut world = "table1".to_string();
    let mut scale = 10i64;
    let mut port = 7878u16;
    let mut workers = 4usize;
    let mut queue_depth = 16usize;
    let mut cache_capacity = 256usize;
    let mut metrics_out: Option<PathBuf> = None;
    let mut trace_out: Option<PathBuf> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--world" => {
                world = args.get(i + 1).cloned().unwrap_or_default();
                i += 2;
            }
            "--scale" => {
                scale = args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(10);
                i += 2;
            }
            "--port" => {
                port = args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(7878);
                i += 2;
            }
            "--workers" => {
                workers = args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(4);
                i += 2;
            }
            "--queue-depth" => {
                queue_depth = args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(16);
                i += 2;
            }
            "--cache-capacity" => {
                cache_capacity = args.get(i + 1).and_then(|s| s.parse().ok()).unwrap_or(256);
                i += 2;
            }
            "--metrics-out" => {
                metrics_out = args.get(i + 1).map(PathBuf::from);
                i += 2;
            }
            "--trace-out" => {
                trace_out = args.get(i + 1).map(PathBuf::from);
                i += 2;
            }
            other => {
                eprintln!(
                    "unknown argument {other:?}; usage: seqd [--world table1|weather] \
                     [--scale N] [--port P] [--workers N] [--queue-depth N] \
                     [--cache-capacity N] [--metrics-out FILE] [--trace-out FILE]"
                );
                std::process::exit(2);
            }
        }
    }

    let (catalog, range) = match world.as_str() {
        "table1" => (table1_catalog(scale, 42, 64), Span::new(1, 750 * scale)),
        "weather" => {
            let span = Span::new(1, 20_000 * scale);
            let (c, _) = weather_catalog(
                &WeatherSpec::new(span, 800 * scale as usize, 150 * scale as usize, 42),
                64,
            );
            (c, span)
        }
        other => {
            eprintln!("unknown world {other:?} (expected table1 or weather)");
            std::process::exit(2);
        }
    };

    install_signal_handlers();
    let engine = Engine::new(catalog, cache_capacity);
    let config = ServerConfig {
        addr: format!("127.0.0.1:{port}"),
        workers,
        queue_depth,
        cache_capacity,
        range,
    };
    let handle = match serve(engine, &config) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("could not bind {}: {e}", config.addr);
            std::process::exit(1);
        }
    };
    println!(
        "seqd — world {world} (scale {scale}) on {} | {} workers, queue depth {}, \
         plan cache {} | SIGTERM/ctrl-c to drain",
        handle.addr(),
        workers,
        queue_depth,
        cache_capacity
    );

    while !signal_shutdown_requested() && !handle.shutdown_requested() {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    println!("seqd: draining in-flight queries...");
    let engine = handle.join();

    if let Some(path) = &trace_out {
        match std::fs::write(path, engine.metrics.trace_to_chrome_json()) {
            Ok(()) => println!("trace JSON written to {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }
    if let Some(path) = &metrics_out {
        let json = engine.metrics_json(8);
        match std::fs::write(path, json) {
            Ok(()) => println!("metrics JSON written to {}", path.display()),
            Err(e) => eprintln!("could not write {}: {e}", path.display()),
        }
    }
    println!("seqd: bye");
}
