//! Proposition 2.1 (§2.3), verified against actual evaluation: the composed
//! scope of a whole query over each base input, computed symbolically with
//! [`ScopeShape::compose`], must *soundly contain* the positions the query
//! actually depends on — perturbing data outside the composed effective
//! window around `i` never changes the output at `i`.

use std::collections::HashMap;
use std::sync::Arc;

use seqproc::prelude::*;
use seqproc::seq_ops::{ReferenceEvaluator, ScopeShape, ScopeSize};

fn stock_schema() -> Schema {
    schema(&[("time", AttrType::Int), ("close", AttrType::Float)])
}

fn base_from(positions: &[(i64, f64)]) -> BaseSequence {
    BaseSequence::from_entries(
        stock_schema(),
        positions.iter().map(|&(p, v)| (p, record![p, v])).collect(),
    )
    .unwrap()
}

fn eval_all(query: &QueryGraph, data: &[(i64, f64)], range: Span) -> Vec<(i64, Option<Record>)> {
    let mut seqs: HashMap<String, Arc<dyn Sequence>> = HashMap::new();
    seqs.insert("S".into(), Arc::new(base_from(data)));
    let schemas: HashMap<String, Schema> =
        [("S".to_string(), stock_schema())].into_iter().collect();
    let resolved = query.resolve(&schemas).unwrap();
    let eval = ReferenceEvaluator::new(&resolved, &seqs).unwrap();
    range.positions().map(|p| (p, eval.eval(p).unwrap())).collect()
}

/// For a single-base query with a *relative, fixed* composed scope, check:
/// changing the input record at position `q` can only change outputs at
/// positions `i` with `q ∈ [i+lo, i+hi]` — i.e. `i ∈ [q−hi, q−lo]`.
fn assert_scope_sound(query: &QueryGraph, window: (i64, i64)) {
    let (lo, hi) = window;
    let data: Vec<(i64, f64)> = (1..=40).map(|p| (p, p as f64)).collect();
    let range = Span::new(-10, 60);
    let baseline = eval_all(query, &data, range);

    for perturb in [5i64, 20, 37] {
        let mut changed = data.clone();
        let idx = changed.iter().position(|(p, _)| *p == perturb).unwrap();
        changed[idx].1 = 999.0;
        let perturbed = eval_all(query, &changed, range);
        for ((pos, a), (pos2, b)) in baseline.iter().zip(perturbed.iter()) {
            assert_eq!(pos, pos2);
            let in_scope = *pos >= perturb - hi && *pos <= perturb - lo;
            if !in_scope {
                assert_eq!(
                    a, b,
                    "output at {pos} changed when perturbing {perturb}, \
                     outside composed scope [i{lo:+}, i{hi:+}]"
                );
            }
        }
    }
}

#[test]
fn select_project_chain_has_unit_scope() {
    let q = SeqQuery::base("S")
        .select(Expr::attr("close").gt(Expr::lit(0.0)))
        .project(["close"])
        .build();
    let schemas: HashMap<String, Schema> =
        [("S".to_string(), stock_schema())].into_iter().collect();
    let r = q.resolve(&schemas).unwrap();
    let scopes = r.composed_base_scopes();
    assert_eq!(scopes.len(), 1);
    assert_eq!(scopes[0].2, ScopeShape::Point(0));
    assert!(scopes[0].2.sequential());
    assert_scope_sound(&q, (0, 0));
}

#[test]
fn offset_chains_compose_additively() {
    let q = SeqQuery::base("S").positional_offset(-3).positional_offset(-2).build();
    let schemas: HashMap<String, Schema> =
        [("S".to_string(), stock_schema())].into_iter().collect();
    let r = q.resolve(&schemas).unwrap();
    let scopes = r.composed_base_scopes();
    assert_eq!(scopes[0].2, ScopeShape::Point(-5));
    assert!(!scopes[0].2.sequential()); // the paper: offsets are not sequential
    assert_eq!(scopes[0].2.effective_window(), Some((-5, 0)));
    assert_scope_sound(&q, (-5, -5));
}

#[test]
fn aggregate_over_offset_shifts_window() {
    let q = SeqQuery::base("S")
        .positional_offset(-1)
        .aggregate(AggFunc::Sum, "close", Window::trailing(3))
        .build();
    let schemas: HashMap<String, Schema> =
        [("S".to_string(), stock_schema())].into_iter().collect();
    let r = q.resolve(&schemas).unwrap();
    let scopes = r.composed_base_scopes();
    assert_eq!(scopes[0].2, ScopeShape::Interval { lo: Some(-3), hi: -1 });
    assert_eq!(scopes[0].2.size(), ScopeSize::Fixed(3));
    assert_scope_sound(&q, (-3, -1));
}

#[test]
fn stacked_aggregates_add_windows() {
    let q = SeqQuery::base("S")
        .aggregate(AggFunc::Sum, "close", Window::trailing(3))
        .aggregate(AggFunc::Max, "sum_close", Window::trailing(4))
        .build();
    let schemas: HashMap<String, Schema> =
        [("S".to_string(), stock_schema())].into_iter().collect();
    let r = q.resolve(&schemas).unwrap();
    let scopes = r.composed_base_scopes();
    // [-2,0] composed with [-3,0] = [-5,0].
    assert_eq!(scopes[0].2, ScopeShape::Interval { lo: Some(-5), hi: 0 });
    assert!(scopes[0].2.sequential()); // Prop 2.1(b)
    assert_scope_sound(&q, (-5, 0));
}

#[test]
fn previous_makes_scope_variable() {
    let q = SeqQuery::base("S").previous().build();
    let schemas: HashMap<String, Schema> =
        [("S".to_string(), stock_schema())].into_iter().collect();
    let r = q.resolve(&schemas).unwrap();
    let scopes = r.composed_base_scopes();
    assert_eq!(scopes[0].2, ScopeShape::VariableBack);
    assert_eq!(scopes[0].2.size(), ScopeSize::Variable);
    assert!(scopes[0].2.incremental()); // Cache-Strategy-B applies
                                        // Soundness: Previous at i only depends on positions < i.
    assert_scope_sound(&q, (i64::MIN / 2, -1));
}

#[test]
fn proposition_2_1_on_random_compositions() {
    // Systematic closure check over the full shape alphabet: for any chain
    // of operators whose per-operator scopes are (fixed, sequential,
    // relative), the composition keeps each property — and the derived
    // effective windows add up.
    use ScopeShape::*;
    let shapes = [
        Point(0),
        Point(-2),
        Interval { lo: Some(-3), hi: 0 },
        Interval { lo: Some(-1), hi: 0 },
        Interval { lo: None, hi: 0 },
        VariableBack,
        WholeSpan,
    ];
    for &a in &shapes {
        for &b in &shapes {
            for &c in &shapes {
                let ab = ScopeShape::compose(a, b);
                let abc = ScopeShape::compose(ab, c);
                // Associativity of interval hulls for the relative shapes.
                let bc = ScopeShape::compose(b, c);
                let abc2 = ScopeShape::compose(a, bc);
                assert_eq!(abc, abc2, "compose not associative: {a} {b} {c}");
                // Prop 2.1 closures.
                if a.size().is_fixed() && b.size().is_fixed() && c.size().is_fixed() {
                    assert!(abc.size().is_fixed());
                }
                if a.sequential() && b.sequential() && c.sequential() {
                    assert!(abc.sequential());
                }
                if a.relative() && b.relative() && c.relative() {
                    assert!(abc.relative());
                }
            }
        }
    }
}
