//! §3.1 rewrite rules preserve query semantics: the reference evaluator
//! produces identical outputs for the original and the transformed graph,
//! over randomized queries and data.

mod common;

use common::*;
use seqproc::prelude::*;
use seqproc::seq_ops::ReferenceEvaluator;
use seqproc::seq_opt::apply_transformations;
use seqproc::seq_workload::Rng;

fn rows_of(
    world: &World,
    resolved: &seqproc::seq_ops::ResolvedGraph,
    range: Span,
) -> Option<Vec<(i64, Vec<Value>)>> {
    let eval = ReferenceEvaluator::new(resolved, &world.sequences).ok()?;
    match eval.materialize(range) {
        // Compare value vectors, not schemas: rewrites may re-derive
        // attribute names (positional semantics are what matters).
        Ok(rows) => Some(rows.into_iter().map(|(p, r)| (p, r.values().to_vec())).collect()),
        Err(SeqError::Unsupported(_)) => None,
        Err(e) => panic!("reference evaluation failed: {e}"),
    }
}

#[test]
fn transformed_queries_agree_with_originals() {
    let range = Span::new(-5, 120);
    let mut checked = 0;
    for seed in 0..200 {
        let world = random_world(seed, 30);
        let mut rng = Rng::seed_from_u64(seed ^ 0xFACE);
        let (query, _) = random_query(&mut rng, 3);
        let query = query.build();
        let Ok(resolved) = query.resolve(&world.schemas) else { continue };
        let (transformed, report) = apply_transformations(&resolved).unwrap();
        let Some(a) = rows_of(&world, &resolved, range) else { continue };
        let Some(b) = rows_of(&world, &transformed, range) else {
            panic!("seed {seed}: transformation made the query unevaluable");
        };
        assert_eq!(a.len(), b.len(), "seed {seed} ({:?})", report.applied);
        for ((pa, va), (pb, vb)) in a.iter().zip(b.iter()) {
            assert_eq!(pa, pb, "seed {seed}");
            assert_eq!(va, vb, "seed {seed} at {pa} ({:?})", report.applied);
        }
        checked += 1;
    }
    assert!(checked > 100, "only {checked} cases were checkable");
}

#[test]
fn transformations_reach_fixpoint_on_random_queries() {
    for seed in 0..100 {
        let world = random_world(seed, 20);
        let mut rng = Rng::seed_from_u64(seed ^ 0xBEEF);
        let (query, _) = random_query(&mut rng, 4);
        let query = query.build();
        let Ok(resolved) = query.resolve(&world.schemas) else { continue };
        let (once, _) = apply_transformations(&resolved).unwrap();
        let (twice, second_report) = apply_transformations(&once).unwrap();
        assert_eq!(
            second_report.total(),
            0,
            "seed {seed}: second pass applied {:?}",
            second_report.applied
        );
        assert_eq!(once.render(), twice.render(), "seed {seed}");
    }
}
