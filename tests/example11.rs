//! Example 1.1 / Figure 1 end-to-end: the sequence plan and the relational
//! nested-subquery baselines answer identically, and the access shapes match
//! the paper's claims — single scan for the sequence plan, O(|V|·|E|) for
//! the naive relational plan.

use seq_relational::{indexed_nested_plan, nested_subquery_plan, RelStats, Relation};
use seq_workload::{queries, weather_catalog, WeatherSpec};
use seqproc::prelude::*;

fn run_world(seed: u64, n_quakes: usize, n_volcanos: usize) {
    let span = Span::new(1, (n_quakes + n_volcanos) as i64 * 20);
    let spec = WeatherSpec::new(span, n_quakes, n_volcanos, seed);
    let (catalog, world) = weather_catalog(&spec, 32);

    // Sequence plan.
    let query = queries::example_1_1(7.0);
    let optimized = optimize(&query, &CatalogRef(&catalog), &OptimizerConfig::new(span)).unwrap();
    catalog.reset_measurement();
    let ctx = ExecContext::new(&catalog);
    let rows = execute(&optimized.plan, &ctx).unwrap();
    let seq_stats = catalog.stats().snapshot();

    // Relational baselines.
    let volcanos =
        Relation::from_sequence_entries(world.volcanos.schema().clone(), world.volcanos.entries())
            .unwrap();
    let quakes =
        Relation::from_sequence_entries(world.quakes.schema().clone(), world.quakes.entries())
            .unwrap();
    let naive_stats = RelStats::new();
    let naive = nested_subquery_plan(&volcanos, &quakes, 7.0, &naive_stats).unwrap();
    let idx_stats = RelStats::new();
    let indexed = indexed_nested_plan(&volcanos, &quakes, 7.0, &idx_stats).unwrap();

    // Same answers (as (name, time) sets — the sequence plan emits in
    // positional order, the relational ones in volcano order, which for our
    // generators are both time-ascending).
    let seq_answers: Vec<(String, i64)> = rows
        .iter()
        .map(|(pos, r)| (r.value(0).unwrap().as_str().unwrap().to_string(), *pos))
        .collect();
    let rel_answers: Vec<(String, i64)> = naive
        .iter()
        .map(|(r, t)| (r.value(0).unwrap().as_str().unwrap().to_string(), *t))
        .collect();
    let idx_answers: Vec<(String, i64)> = indexed
        .iter()
        .map(|(r, t)| (r.value(0).unwrap().as_str().unwrap().to_string(), *t))
        .collect();
    assert_eq!(seq_answers, rel_answers, "seed {seed}");
    assert_eq!(seq_answers, idx_answers, "seed {seed}");

    // The paper's claim: "this query can therefore be processed with a
    // single scan of the two sequences" — every record streamed at most
    // once, no probes.
    let total_records = world.quakes.record_count() + world.volcanos.record_count();
    assert!(seq_stats.probes == 0, "seed {seed}: sequence plan probed");
    assert!(
        seq_stats.stream_records <= total_records,
        "seed {seed}: streamed {} of {total_records} records — not a single scan",
        seq_stats.stream_records
    );

    // The naive relational plan's quadratic shape.
    assert!(
        naive_stats.tuples_scanned() >= (n_volcanos * n_quakes) as u64,
        "seed {seed}: expected O(V*E) scans"
    );
}

#[test]
fn example11_small_world() {
    run_world(1, 200, 50);
}

#[test]
fn example11_quake_heavy_world() {
    run_world(2, 2_000, 20);
}

#[test]
fn example11_volcano_heavy_world() {
    run_world(3, 50, 500);
}

#[test]
fn example11_uses_lockstep_and_cache_b() {
    let span = Span::new(1, 50_000);
    let spec = WeatherSpec::new(span, 1_000, 200, 7);
    let (catalog, _) = weather_catalog(&spec, 32);
    let optimized =
        optimize(&queries::example_1_1(7.0), &CatalogRef(&catalog), &OptimizerConfig::new(span))
            .unwrap();
    let plan = optimized.plan.render();
    assert!(plan.contains("IncrementalCacheB"), "plan:\n{plan}");
    assert!(plan.contains("LockStep"), "plan:\n{plan}");
}

#[test]
fn example11_threshold_sweep_consistency() {
    let span = Span::new(1, 20_000);
    let spec = WeatherSpec::new(span, 500, 100, 11);
    let (catalog, world) = weather_catalog(&spec, 32);
    let volcanos =
        Relation::from_sequence_entries(world.volcanos.schema().clone(), world.volcanos.entries())
            .unwrap();
    let quakes =
        Relation::from_sequence_entries(world.quakes.schema().clone(), world.quakes.entries())
            .unwrap();
    let mut last_count = usize::MAX;
    for threshold in [4.5, 6.0, 7.0, 8.5] {
        let optimized = optimize(
            &queries::example_1_1(threshold),
            &CatalogRef(&catalog),
            &OptimizerConfig::new(span),
        )
        .unwrap();
        let ctx = ExecContext::new(&catalog);
        let rows = execute(&optimized.plan, &ctx).unwrap();
        let stats = RelStats::new();
        let rel = nested_subquery_plan(&volcanos, &quakes, threshold, &stats).unwrap();
        assert_eq!(rows.len(), rel.len(), "threshold {threshold}");
        // Higher thresholds keep fewer eruptions.
        assert!(rows.len() <= last_count);
        last_count = rows.len();
    }
}
