//! Optimizer-level dispatch of morsel-driven parallel execution: with
//! `parallelism > 1` the planner must select `parallel(N)` exactly for
//! position-partitionable bounded plans, and whatever it selects must
//! return the record-path rows — over the full randomized query grammar.

mod common;

use common::*;
use seqproc::prelude::*;
use seqproc::seq_exec::execute;
use seqproc::seq_opt::ExecMode;
use seqproc::seq_workload::Rng;

/// Optimize with `parallelism` workers and compare the dispatched result
/// against the record path; `false` when the plan was skipped (unbounded).
fn check_seed(seed: u64, depth: u32, parallelism: usize) -> Option<ExecMode> {
    let world = random_world(seed, 40);
    let mut rng = Rng::seed_from_u64(seed ^ 0xBA7C4);
    let (query, _) = random_query(&mut rng, depth);
    let query = query.build();
    let range = Span::new(-5, 120);
    let mut config = OptimizerConfig::new(range);
    config.parallelism = parallelism;

    let optimized = match optimize(&query, &CatalogRef(&world.catalog), &config) {
        Ok(o) => o,
        Err(SeqError::Unsupported(_)) => return None,
        Err(e) => panic!("seed {seed}: optimization failed: {e}"),
    };

    // The chosen mode must agree with the plan's shape.
    let partitionable = optimized.plan.root.is_position_partitionable();
    match optimized.exec_mode {
        ExecMode::Parallel { workers } => {
            assert_eq!(workers, parallelism, "seed {seed}: worker count");
            assert!(partitionable, "seed {seed}: parallel mode on a non-partitionable plan");
        }
        _ => assert!(
            parallelism <= 1
                || !partitionable
                || !optimized.plan.range.intersect(&optimized.plan.root.span()).is_bounded(),
            "seed {seed}: partitionable bounded plan not parallelized ({})",
            optimized.exec_mode
        ),
    }

    let ctx = ExecContext::new(&world.catalog);
    let record_path = match execute(&optimized.plan, &ctx) {
        Ok(rows) => rows,
        Err(SeqError::Unsupported(_)) => return None,
        Err(e) => panic!("seed {seed}: record execution failed: {e}"),
    };

    let ctx2 = ExecContext::new(&world.catalog);
    let dispatched = optimized.execute(&ctx2).unwrap_or_else(|e| {
        panic!(
            "seed {seed}: dispatched execution ({}) failed: {e}\nplan:\n{}",
            optimized.exec_mode,
            optimized.plan.render()
        )
    });
    assert_rows_equal(&record_path, &dispatched, &format!("seed {seed}"));
    Some(optimized.exec_mode)
}

#[test]
fn randomized_plans_match_under_parallel_dispatch() {
    let mut parallel_hits = 0;
    let mut checked = 0;
    for seed in 0..120 {
        if let Some(mode) = check_seed(seed, 3, 4) {
            checked += 1;
            if matches!(mode, ExecMode::Parallel { .. }) {
                parallel_hits += 1;
            }
        }
    }
    assert!(checked > 40, "only {checked} cases were checkable");
    // The grammar must actually exercise the parallel arm, not just fall
    // back everywhere.
    assert!(parallel_hits > 10, "only {parallel_hits} plans ran parallel");
}

#[test]
fn parallelism_one_keeps_the_sequential_modes() {
    for seed in [3u64, 17, 42] {
        if let Some(mode) = check_seed(seed, 3, 1) {
            assert!(
                !matches!(mode, ExecMode::Parallel { .. }),
                "seed {seed}: parallelism 1 must not select parallel mode"
            );
        }
    }
}
