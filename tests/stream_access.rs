//! Theorem 3.1 / Lemmas 3.1–3.2 (§3.4): queries whose operators all have
//! sequential fixed-size (effective) scopes admit a *stream-access
//! evaluation* — cache-finite, single scan of the base sequences in
//! positional order.
//!
//! We verify the property physically: each base page is read exactly once
//! per scan, no probes are issued, and the operator caches stay within the
//! effective-scope bound.

use seqproc::prelude::*;
use seqproc::seq_workload::SeqSpec;

fn world() -> Catalog {
    let mut catalog = Catalog::new();
    catalog.set_page_capacity(16);
    let a = SeqSpec::new(Span::new(1, 2_000), 0.8, 1).generate();
    let b = SeqSpec::new(Span::new(1, 2_000), 0.6, 2).generate();
    catalog.register("A", &a);
    catalog.register("B", &b);
    catalog
}

/// Run and assert the single-scan property: every page read at most once,
/// zero probes.
fn assert_stream_access(catalog: &Catalog, query: &QueryGraph, range: Span) {
    let opt = optimize(query, &CatalogRef(catalog), &OptimizerConfig::new(range)).unwrap();
    catalog.reset_measurement();
    let ctx = ExecContext::new(catalog);
    let rows = execute(&opt.plan, &ctx).unwrap();
    assert!(!rows.is_empty(), "query produced no data — vacuous check");
    let snap = catalog.stats().snapshot();
    assert_eq!(snap.probes, 0, "stream-access plans never probe\n{}", opt.plan.render());
    let total_pages: u64 =
        ["A", "B"].iter().filter_map(|n| catalog.get(n).ok()).map(|s| s.page_count() as u64).sum();
    assert!(
        snap.page_reads <= total_pages,
        "each page read at most once: {} reads vs {total_pages} pages\n{}",
        snap.page_reads,
        opt.plan.render()
    );
}

#[test]
fn selection_projection_pipeline_is_single_scan() {
    let catalog = world();
    let q = SeqQuery::base("A")
        .select(Expr::attr("close").gt(Expr::lit(50.0)))
        .project(["close"])
        .build();
    assert_stream_access(&catalog, &q, Span::new(1, 2_000));
}

#[test]
fn trailing_aggregate_is_single_scan() {
    // Sequential fixed scope (Theorem 3.1's direct case).
    let catalog = world();
    let q = SeqQuery::base("A").aggregate(AggFunc::Avg, "close", Window::trailing(8)).build();
    assert_stream_access(&catalog, &q, Span::new(1, 2_007));
}

#[test]
fn positional_offset_minus_five_is_single_scan() {
    // The §3.4 example: scope {i−5} is not sequential, but the effective
    // scope [i−5, i] of size six is — a six-record cache suffices and the
    // evaluation remains a single scan.
    let catalog = world();
    let q = SeqQuery::base("A").positional_offset(-5).compose_with(SeqQuery::base("B")).build();
    assert_stream_access(&catalog, &q, Span::new(1, 2_005));
}

#[test]
fn lockstep_join_is_single_scan() {
    let catalog = world();
    let q = SeqQuery::base("A")
        .compose_filtered(SeqQuery::base("B"), Expr::attr("close").gt(Expr::attr("close_r")))
        .build();
    // Force lock-step (Join-Strategy-B) to pin the theorem's structure.
    let mut cfg = OptimizerConfig::new(Span::new(1, 2_000));
    cfg.forced_join_strategy = Some(JoinStrategy::LockStep);
    let opt = optimize(&q, &CatalogRef(&catalog), &cfg).unwrap();
    catalog.reset_measurement();
    let ctx = ExecContext::new(&catalog);
    execute(&opt.plan, &ctx).unwrap();
    let snap = catalog.stats().snapshot();
    assert_eq!(snap.probes, 0);
    assert_eq!(snap.scans_opened, 2, "exactly one scan per base sequence");
}

#[test]
fn previous_with_cache_b_is_single_scan() {
    // Variable scope, but the incremental rewrite of §3.5 restores the
    // stream-access property (the paper presents this as Cache-Strategy-B).
    let catalog = world();
    let q = SeqQuery::base("A").previous().compose_with(SeqQuery::base("B")).build();
    assert_stream_access(&catalog, &q, Span::new(1, 2_000));
}

#[test]
fn cache_sizes_are_constant_in_the_data() {
    // Cache-finiteness (Definition 3.2): the same plan over 4x the data
    // stores more records *through* the cache, but the cache capacity —
    // reflected in peak resident entries — is unchanged. We proxy this by
    // checking cache stores scale with data while the plan (and thus cache
    // capacity, the window size) is identical.
    let q = SeqQuery::base("A").aggregate(AggFunc::Sum, "close", Window::trailing(8)).build();

    let run = |n: i64| -> (String, u64) {
        let mut catalog = Catalog::new();
        catalog.set_page_capacity(16);
        catalog.register("A", &SeqSpec::new(Span::new(1, n), 0.9, 5).generate());
        let opt = optimize(&q, &CatalogRef(&catalog), &OptimizerConfig::new(Span::new(1, n + 7)))
            .unwrap();
        let ctx = ExecContext::new(&catalog);
        execute(&opt.plan, &ctx).unwrap();
        (opt.plan.render(), ctx.stats.snapshot().cache_stores)
    };
    let (plan_small, stores_small) = run(1_000);
    let (plan_big, stores_big) = run(4_000);
    // Same plan shape modulo spans.
    assert_eq!(plan_small.matches("CacheA").count(), plan_big.matches("CacheA").count());
    assert!(stores_big > 3 * stores_small, "{stores_big} vs {stores_small}");
}
