//! Differential testing: the optimized physical executor against the naive
//! reference evaluator, over randomized queries and randomized data.
//!
//! The reference evaluator (`seq_ops::semantics`) implements the §2.1
//! denotations by structural recursion; any divergence means the optimizer
//! or an execution strategy changed query semantics.

mod common;

use common::*;
use seqproc::prelude::*;
use seqproc::seq_workload::Rng;

fn check_seed(seed: u64, depth: u32) -> bool {
    let world = random_world(seed, 40);
    let mut rng = Rng::seed_from_u64(seed ^ 0xDEAD_BEEF);
    let (query, _) = random_query(&mut rng, depth);
    let query = query.build();
    let range = Span::new(-5, 120);

    let Some(expected) = reference_rows(&world, &query, range) else {
        return false;
    };
    let Some(got) = optimized_rows(&world, &query, &OptimizerConfig::new(range)) else {
        panic!("reference evaluated but optimized execution was unsupported");
    };
    assert_rows_equal(&expected, &got, &format!("seed {seed}"));
    true
}

#[test]
fn randomized_queries_match_reference_shallow() {
    let mut checked = 0;
    for seed in 0..120 {
        if check_seed(seed, 2) {
            checked += 1;
        }
    }
    assert!(checked > 60, "only {checked} cases were checkable");
}

#[test]
fn randomized_queries_match_reference_deep() {
    let mut checked = 0;
    for seed in 1_000..1_080 {
        if check_seed(seed, 4) {
            checked += 1;
        }
    }
    assert!(checked > 30, "only {checked} cases were checkable");
}

#[test]
fn randomized_queries_match_reference_under_every_ablation() {
    let range = Span::new(-5, 120);
    let mut configs: Vec<(&str, OptimizerConfig)> = Vec::new();
    let base_cfg = OptimizerConfig::new(range);
    configs.push(("full", base_cfg.clone()));
    let mut c = base_cfg.clone();
    c.span_propagation = false;
    configs.push(("no-span-propagation", c));
    let mut c = base_cfg.clone();
    c.transformations = false;
    configs.push(("no-transformations", c));
    let mut c = base_cfg.clone();
    c.join_reordering = false;
    configs.push(("no-reordering", c));
    let mut c = base_cfg.clone();
    c.cache_strategy_b = false;
    configs.push(("no-cache-b", c));
    let mut c = base_cfg.clone();
    c.naive_aggregates = true;
    configs.push(("naive-aggregates", c));
    for strat in [
        JoinStrategy::LockStep,
        JoinStrategy::StreamLeftProbeRight,
        JoinStrategy::StreamRightProbeLeft,
    ] {
        let mut c = base_cfg.clone();
        c.forced_join_strategy = Some(strat);
        configs.push(("forced-strategy", c));
    }

    let mut checked = 0;
    for seed in 300..340 {
        let world = random_world(seed, 30);
        let mut rng = Rng::seed_from_u64(seed ^ 0xABCD);
        let (query, _) = random_query(&mut rng, 3);
        let query = query.build();
        let Some(expected) = reference_rows(&world, &query, range) else { continue };
        for (name, cfg) in &configs {
            if let Some(got) = optimized_rows(&world, &query, cfg) {
                assert_rows_equal(&expected, &got, &format!("seed {seed} config {name}"));
                checked += 1;
            }
        }
    }
    assert!(checked > 100, "only {checked} (seed, config) cases were checkable");
}

#[test]
fn probed_mode_matches_reference_point_lookups() {
    use seqproc::prelude::probe_positions;
    let range = Span::new(-5, 120);
    let mut checked = 0;
    for seed in 600..640 {
        let world = random_world(seed, 30);
        let mut rng = Rng::seed_from_u64(seed ^ 0x5555);
        let (query, _) = random_query(&mut rng, 2);
        let query = query.build();
        let Some(expected) = reference_rows(&world, &query, range) else { continue };
        let optimized =
            match optimize(&query, &CatalogRef(&world.catalog), &OptimizerConfig::new(range)) {
                Ok(o) => o,
                Err(SeqError::Unsupported(_)) => continue,
                Err(e) => panic!("{e}"),
            };
        let positions: Vec<i64> = (-5..=120).collect();
        let ctx = ExecContext::new(&world.catalog);
        let probed = match probe_positions(&optimized.plan, &ctx, &positions) {
            Ok(p) => p,
            Err(SeqError::Unsupported(_)) => continue,
            Err(e) => panic!("{e}"),
        };
        let mut expected_at: std::collections::HashMap<i64, Record> =
            expected.into_iter().collect();
        for (pos, rec) in probed {
            match (expected_at.remove(&pos), rec) {
                (Some(e), Some(g)) => assert_eq!(e, g, "seed {seed} at {pos}"),
                (None, None) => {}
                (e, g) => panic!(
                    "seed {seed} at {pos}: reference {:?} vs probed {:?}",
                    e.is_some(),
                    g.is_some()
                ),
            }
        }
        assert!(expected_at.is_empty(), "seed {seed}: positions missing from probe");
        checked += 1;
    }
    assert!(checked > 15, "only {checked} cases were checkable");
}
