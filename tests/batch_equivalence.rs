//! Differential testing of the vectorized batch path against the
//! record-at-a-time path over the full randomized query grammar: whatever
//! plan the optimizer selects, `execute_batched` must produce exactly the
//! rows `execute` produces, and `Optimized::execute` must dispatch to the
//! mode the planner chose.

mod common;

use common::*;
use seqproc::prelude::*;
use seqproc::seq_exec::{execute, execute_batched, execute_batched_with};
use seqproc::seq_opt::ExecMode;
use seqproc::seq_workload::Rng;

/// Optimize a query and run it down both execution paths; `false` when the
/// plan cannot be stream-materialized (unbounded spans) and was skipped.
fn check_seed(seed: u64, depth: u32, batch_size: Option<usize>) -> bool {
    let world = random_world(seed, 40);
    let mut rng = Rng::seed_from_u64(seed ^ 0xBA7C4);
    let (query, _) = random_query(&mut rng, depth);
    let query = query.build();
    let range = Span::new(-5, 120);
    let config = OptimizerConfig::new(range);

    let optimized = match optimize(&query, &CatalogRef(&world.catalog), &config) {
        Ok(o) => o,
        Err(SeqError::Unsupported(_)) => return false,
        Err(e) => panic!("seed {seed}: optimization failed: {e}"),
    };

    let ctx = ExecContext::new(&world.catalog);
    let record_path = match execute(&optimized.plan, &ctx) {
        Ok(rows) => rows,
        Err(SeqError::Unsupported(_)) => return false,
        Err(e) => panic!("seed {seed}: record execution failed: {e}"),
    };

    let ctx2 = ExecContext::new(&world.catalog);
    let batch_path = match batch_size {
        Some(n) => execute_batched_with(&optimized.plan, &ctx2, n),
        None => execute_batched(&optimized.plan, &ctx2),
    }
    .unwrap_or_else(|e| {
        panic!("seed {seed}: batched execution failed: {e}\nplan:\n{}", optimized.plan.render())
    });
    assert_rows_equal(&record_path, &batch_path, &format!("seed {seed}"));

    // The planner-chosen mode must round-trip through the dispatcher too.
    let ctx3 = ExecContext::new(&world.catalog);
    let dispatched = optimized.execute(&ctx3).unwrap_or_else(|e| {
        panic!("seed {seed}: dispatched execution ({}) failed: {e}", optimized.exec_mode)
    });
    assert_rows_equal(&record_path, &dispatched, &format!("seed {seed} dispatch"));
    true
}

#[test]
fn randomized_plans_match_across_paths_shallow() {
    let mut checked = 0;
    for seed in 0..120 {
        if check_seed(seed, 2, None) {
            checked += 1;
        }
    }
    assert!(checked > 60, "only {checked} cases were checkable");
}

#[test]
fn randomized_plans_match_across_paths_deep() {
    let mut checked = 0;
    for seed in 2_000..2_080 {
        if check_seed(seed, 4, None) {
            checked += 1;
        }
    }
    assert!(checked > 30, "only {checked} cases were checkable");
}

#[test]
fn randomized_plans_match_at_awkward_batch_sizes() {
    // Batch sizes that straddle page boundaries (capacity 8 in random_world)
    // and degenerate to one row per batch.
    for batch_size in [1usize, 3, 8, 13] {
        let mut checked = 0;
        for seed in 500..540 {
            if check_seed(seed, 3, Some(batch_size)) {
                checked += 1;
            }
        }
        assert!(checked > 15, "batch {batch_size}: only {checked} cases were checkable");
    }
}

#[test]
fn planner_vectorizes_exactly_when_enabled_and_capable() {
    let world = random_world(99, 40);
    let range = Span::new(-5, 120);
    let query = SeqQuery::base("S0").select(Expr::attr("close").gt(Expr::lit(10.0))).build();

    let full = OptimizerConfig::new(range);
    let optimized = optimize(&query, &CatalogRef(&world.catalog), &full).unwrap();
    assert_eq!(optimized.exec_mode, ExecMode::Batched);
    assert!(
        optimized.explain.contains("exec mode: batched"),
        "explain output should surface the chosen mode"
    );

    let naive = OptimizerConfig::naive(range);
    let optimized = optimize(&query, &CatalogRef(&world.catalog), &naive).unwrap();
    assert_eq!(optimized.exec_mode, ExecMode::RecordAtATime);

    let mut no_vec = OptimizerConfig::new(range);
    no_vec.vectorized = false;
    let optimized = optimize(&query, &CatalogRef(&world.catalog), &no_vec).unwrap();
    assert_eq!(optimized.exec_mode, ExecMode::RecordAtATime);
}
