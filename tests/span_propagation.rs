//! Figure 3 / §3.2: the global span optimization, exactly as illustrated.

use seq_workload::{queries, table1_catalog};
use seqproc::prelude::*;
use seqproc::seq_ops::ResolvedKind;
use seqproc::seq_opt::{annotate, identify_blocks, Block, CatalogRef as OptCatalogRef};

#[test]
fn figure3_restricts_all_bases_to_200_350() {
    // The exact Table 1 configuration.
    let catalog = table1_catalog(1, 42, 64);
    let info = seqproc::seq_opt::CatalogRef(&catalog);
    let resolved = queries::fig3_span_query().resolve(&info).unwrap();
    let ann = annotate(resolved, &info, Span::all(), true).unwrap();
    for id in ann.graph.postorder() {
        if let ResolvedKind::Base { name } = &ann.graph.node(id).kind {
            assert_eq!(
                ann.restricted[id],
                Span::new(200, 350),
                "Figure 3.B: base {name} must be restricted to [200, 350]"
            );
        }
    }
}

#[test]
fn figure3_block_is_a_three_way_join() {
    let catalog = table1_catalog(1, 42, 64);
    let info = OptCatalogRef(&catalog);
    let resolved = queries::fig3_span_query().resolve(&info).unwrap();
    let ann = annotate(resolved, &info, Span::all(), true).unwrap();
    let blocks = identify_blocks(&ann).unwrap();
    assert_eq!(blocks.blocks.len(), 1);
    let Block::Joins(jb) = blocks.root_block() else { panic!("join block") };
    assert_eq!(jb.inputs.len(), 3);
    assert_eq!(jb.span, Span::new(200, 350));
}

#[test]
fn span_restriction_cuts_accesses_and_cost_estimate() {
    // Scale up so the page counts are meaningful.
    let catalog = table1_catalog(30, 42, 64);
    let query = queries::fig3_span_query();
    let info = CatalogRef(&catalog);

    let with = optimize(&query, &info, &OptimizerConfig::new(Span::all())).unwrap();
    let mut cfg = OptimizerConfig::new(Span::all());
    cfg.span_propagation = false;
    let without = optimize(&query, &info, &cfg).unwrap();

    assert!(with.est_cost < without.est_cost);

    catalog.reset_measurement();
    let a = execute(&with.plan, &ExecContext::new(&catalog)).unwrap();
    let s_with = catalog.stats().snapshot();
    catalog.reset_measurement();
    let b = execute(&without.plan, &ExecContext::new(&catalog)).unwrap();
    let s_without = catalog.stats().snapshot();

    assert_eq!(a, b, "restriction must not change the answer");
    assert!(
        (s_with.page_reads as f64) < 0.8 * s_without.page_reads as f64,
        "span restriction should cut page reads substantially: {} vs {}",
        s_with.page_reads,
        s_without.page_reads
    );
}

#[test]
fn narrow_query_ranges_propagate_to_leaves() {
    let catalog = table1_catalog(1, 42, 64);
    let query = queries::fig3_span_query();
    let info = CatalogRef(&catalog);
    // Ask for positions [300, 310] only.
    let opt = optimize(&query, &info, &OptimizerConfig::new(Span::new(300, 310))).unwrap();
    let rendered = opt.plan.render();
    assert!(
        rendered.contains("span=[300, 310]"),
        "leaf scans should be clamped to the requested range:\n{rendered}"
    );
    let rows = execute(&opt.plan, &ExecContext::new(&catalog)).unwrap();
    assert!(rows.iter().all(|(p, _)| (300..=310).contains(p)));
}

#[test]
fn disjoint_spans_yield_empty_plans_cheaply() {
    let catalog = table1_catalog(1, 42, 64);
    // IBM lives in [200,500]; ask for [1,100] — the intersection is empty.
    let query = queries::fig3_span_query();
    let info = CatalogRef(&catalog);
    let opt = optimize(&query, &info, &OptimizerConfig::new(Span::new(1, 100))).unwrap();
    catalog.reset_measurement();
    let rows = execute(&opt.plan, &ExecContext::new(&catalog)).unwrap();
    assert!(rows.is_empty());
    assert_eq!(catalog.stats().snapshot().page_reads, 0, "no I/O for an empty range");
}
