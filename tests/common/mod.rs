//! Shared helpers for the cross-crate integration tests.

use std::collections::HashMap;
use std::sync::Arc;

use seqproc::prelude::*;
use seqproc::seq_ops::ReferenceEvaluator;
use seqproc::seq_workload::Rng;

/// A generated world: the same base sequences registered in a storage
/// catalog (for the physical executor) and held as trait objects (for the
/// reference evaluator).
pub struct World {
    pub catalog: Catalog,
    pub sequences: HashMap<String, Arc<dyn Sequence>>,
    pub schemas: HashMap<String, Schema>,
}

impl World {
    pub fn new(page_capacity: usize) -> World {
        let mut catalog = Catalog::new();
        catalog.set_page_capacity(page_capacity);
        World { catalog, sequences: HashMap::new(), schemas: HashMap::new() }
    }

    pub fn add(&mut self, name: &str, base: BaseSequence) {
        self.catalog.register(name, &base);
        self.schemas.insert(name.to_string(), base.schema().clone());
        self.sequences.insert(name.to_string(), Arc::new(base));
    }
}

/// Generate a random stock-schema base sequence.
#[allow(dead_code)]
pub fn random_stock_sequence(rng: &mut Rng, max_span: i64) -> BaseSequence {
    let start = rng.gen_range(1i64..=10);
    let end = start + rng.gen_range(5..=max_span.max(6));
    let density = rng.gen_range(0.2..=1.0);
    let mut entries = Vec::new();
    for p in start..=end {
        if rng.gen_bool(density) {
            entries.push((p, record![p, rng.gen_range(1.0..200.0_f64)]));
        }
    }
    BaseSequence::from_entries(
        schema(&[("time", AttrType::Int), ("close", AttrType::Float)]),
        entries,
    )
    .unwrap()
    .with_declared_span(Span::new(start, end))
}

/// A world of three random stock sequences S0/S1/S2.
#[allow(dead_code)]
pub fn random_world(seed: u64, max_span: i64) -> World {
    let mut rng = Rng::seed_from_u64(seed);
    let mut world = World::new(8);
    for i in 0..3 {
        let base = random_stock_sequence(&mut rng, max_span);
        world.add(&format!("S{i}"), base);
    }
    world
}

/// Build a random query over the world, returning the graph and the name of
/// a numeric attribute valid in its output schema. Grammar: chains of
/// selections, offsets, value offsets, windowed aggregates, and composes.
#[allow(dead_code)]
pub fn random_query(rng: &mut Rng, depth: u32) -> (SeqQuery, String) {
    if depth == 0 || rng.gen_bool(0.25) {
        let base = format!("S{}", rng.gen_range(0u32..3));
        return (SeqQuery::base(base), "close".to_string());
    }
    match rng.gen_range(0u32..6) {
        0 => {
            let (q, attr) = random_query(rng, depth - 1);
            let lit = rng.gen_range(0.0..200.0);
            (q.select(Expr::attr(&attr).gt(Expr::lit(lit))), attr)
        }
        1 => {
            let (q, attr) = random_query(rng, depth - 1);
            let off = rng.gen_range(-4i64..=4);
            (q.positional_offset(off), attr)
        }
        2 => {
            let (q, attr) = random_query(rng, depth - 1);
            // Backward only: forward value offsets over derived unbounded
            // spans are rejected by the reference evaluator.
            let off = -rng.gen_range(1i64..=2);
            (q.value_offset(off), attr)
        }
        3 | 4 => {
            let (q, attr) = random_query(rng, depth - 1);
            let func = match rng.gen_range(0u32..5) {
                0 => AggFunc::Sum,
                1 => AggFunc::Avg,
                2 => AggFunc::Count,
                3 => AggFunc::Min,
                _ => AggFunc::Max,
            };
            let window = match rng.gen_range(0u32..3) {
                0 => Window::trailing(rng.gen_range(1u32..=5)),
                1 => {
                    let lo = rng.gen_range(-4i64..=0);
                    let hi = rng.gen_range(lo..=lo + 4);
                    Window::Sliding { lo, hi }
                }
                _ => Window::Cumulative,
            };
            let name = format!("{}_{}", func.to_string().to_lowercase(), attr);
            (q.aggregate(func, &attr, window), name)
        }
        _ => {
            let (l, la) = random_query(rng, depth - 1);
            let (r, ra) = random_query(rng, depth.saturating_sub(2));
            if rng.gen_bool(0.5) {
                (l.compose_with(r), la)
            } else {
                // Join predicate referencing both sides where possible.
                let rattr = if ra == la { format!("{ra}_r") } else { ra };
                let pred = Expr::attr(&la).le(Expr::attr(&rattr));
                (l.compose_filtered(r, pred), la)
            }
        }
    }
}

/// Materialize via the reference evaluator; `None` when the query is outside
/// the reference evaluator's (bounded-walk) capabilities.
#[allow(dead_code)]
pub fn reference_rows(
    world: &World,
    query: &QueryGraph,
    range: Span,
) -> Option<Vec<(i64, Record)>> {
    let resolved = query.resolve(&world.schemas).ok()?;
    let eval = ReferenceEvaluator::new(&resolved, &world.sequences).ok()?;
    match eval.materialize(range) {
        Ok(rows) => Some(rows),
        Err(SeqError::Unsupported(_)) => None,
        Err(e) => panic!("reference evaluation failed: {e}"),
    }
}

/// Materialize via optimize + execute; `None` for plans that cannot be
/// stream-materialized under the given config (unbounded intermediate spans).
#[allow(dead_code)]
pub fn optimized_rows(
    world: &World,
    query: &QueryGraph,
    config: &OptimizerConfig,
) -> Option<Vec<(i64, Record)>> {
    let optimized = match optimize(query, &CatalogRef(&world.catalog), config) {
        Ok(o) => o,
        Err(SeqError::Unsupported(_)) => return None,
        Err(e) => panic!("optimization failed: {e}"),
    };
    let ctx = ExecContext::new(&world.catalog);
    match execute(&optimized.plan, &ctx) {
        Ok(rows) => Some(rows),
        Err(SeqError::Unsupported(_)) => None,
        Err(e) => panic!("execution failed: {e}\nplan:\n{}", optimized.plan.render()),
    }
}

/// Assert two row sets are identical (positions and records).
#[allow(dead_code)]
pub fn assert_rows_equal(a: &[(i64, Record)], b: &[(i64, Record)], label: &str) {
    assert_eq!(a.len(), b.len(), "{label}: row counts differ");
    for ((pa, ra), (pb, rb)) in a.iter().zip(b.iter()) {
        assert_eq!(pa, pb, "{label}: positions diverge");
        assert_eq!(ra, rb, "{label}: records diverge at position {pa}");
    }
}
