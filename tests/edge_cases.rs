//! End-to-end edge cases: degenerate sequences, extreme offsets, negative
//! positions, and boundary spans through the full optimize+execute pipeline.

use seqproc::prelude::*;

fn world_with(entries: Vec<(i64, f64)>) -> Catalog {
    let mut c = Catalog::new();
    c.set_page_capacity(4);
    let base = BaseSequence::from_entries(
        schema(&[("time", AttrType::Int), ("close", AttrType::Float)]),
        entries.into_iter().map(|(p, v)| (p, record![p, v])).collect(),
    )
    .unwrap();
    c.register("S", &base);
    c
}

fn run(catalog: &Catalog, q: QueryGraph, range: Span) -> Vec<(i64, Record)> {
    let optimized = optimize(&q, &CatalogRef(catalog), &OptimizerConfig::new(range)).unwrap();
    execute(&optimized.plan, &ExecContext::new(catalog)).unwrap()
}

#[test]
fn empty_base_sequence_everywhere() {
    let catalog = world_with(vec![]);
    let range = Span::new(-10, 10);
    for q in [
        SeqQuery::base("S").build(),
        SeqQuery::base("S").select(Expr::attr("close").gt(Expr::lit(0.0))).build(),
        SeqQuery::base("S").previous().build(),
        SeqQuery::base("S").aggregate(AggFunc::Sum, "close", Window::trailing(3)).build(),
        SeqQuery::base("S").compose_with(SeqQuery::base("S2")).build(),
    ] {
        let mut catalog2 = world_with(vec![]);
        catalog2.register(
            "S2",
            &BaseSequence::from_entries(
                schema(&[("time", AttrType::Int), ("close", AttrType::Float)]),
                vec![],
            )
            .unwrap(),
        );
        let c = if q.resolve(&CatalogRef(&catalog)).is_ok() { &catalog } else { &catalog2 };
        assert!(run(c, q, range).is_empty());
    }
}

#[test]
fn single_record_sequence() {
    let catalog = world_with(vec![(5, 42.0)]);
    let range = Span::new(0, 20);

    let rows = run(&catalog, SeqQuery::base("S").build(), range);
    assert_eq!(rows.len(), 1);

    // Previous of a single record: defined strictly after it.
    let rows = run(&catalog, SeqQuery::base("S").previous().build(), range);
    assert_eq!(rows.first().map(|(p, _)| *p), Some(6));
    assert_eq!(rows.len(), 15); // positions 6..=20

    // Whole-span max == the record itself.
    let rows = run(
        &catalog,
        SeqQuery::base("S").aggregate(AggFunc::Max, "close", Window::WholeSpan).build(),
        range,
    );
    assert!(rows.iter().all(|(_, r)| r.value(0).unwrap().as_f64().unwrap() == 42.0));
}

#[test]
fn negative_positions_end_to_end() {
    let catalog = world_with(vec![(-10, 1.0), (-5, 2.0), (0, 3.0), (5, 4.0)]);
    let range = Span::new(-20, 20);
    let rows = run(
        &catalog,
        SeqQuery::base("S").aggregate(AggFunc::Sum, "close", Window::trailing(6)).build(),
        range,
    );
    // At position -5: window [-10, -5] covers records at -10 and -5.
    let at = rows.iter().find(|(p, _)| *p == -5).unwrap();
    assert_eq!(at.1.value(0).unwrap().as_f64().unwrap(), 3.0);
    // At position 0: window [-5, 0] covers -5 and 0.
    let at = rows.iter().find(|(p, _)| *p == 0).unwrap();
    assert_eq!(at.1.value(0).unwrap().as_f64().unwrap(), 5.0);
}

#[test]
fn offset_larger_than_span() {
    let catalog = world_with(vec![(1, 1.0), (2, 2.0)]);
    // Shifting by more than the span pushes everything outside the range.
    let rows = run(&catalog, SeqQuery::base("S").positional_offset(100).build(), Span::new(1, 10));
    assert!(rows.is_empty());
    // Shift the other way: Out(i) = In(i+(-100)) puts records at 101, 102.
    let rows =
        run(&catalog, SeqQuery::base("S").positional_offset(-100).build(), Span::new(90, 110));
    let pos: Vec<i64> = rows.iter().map(|(p, _)| *p).collect();
    assert_eq!(pos, vec![101, 102]);
}

#[test]
fn value_offset_beyond_record_count() {
    let catalog = world_with(vec![(1, 1.0), (2, 2.0), (3, 3.0)]);
    // The 5th-most-recent record never exists.
    let rows = run(&catalog, SeqQuery::base("S").value_offset(-5).build(), Span::new(1, 50));
    assert!(rows.is_empty());
}

#[test]
fn window_larger_than_data() {
    let catalog = world_with(vec![(10, 1.0), (11, 2.0)]);
    let rows = run(
        &catalog,
        SeqQuery::base("S").aggregate(AggFunc::Avg, "close", Window::trailing(1000)).build(),
        Span::new(1, 100),
    );
    // Output exists from the first record through range end.
    assert_eq!(rows.first().map(|(p, _)| *p), Some(10));
    assert_eq!(rows.last().map(|(p, _)| *p), Some(100));
    assert!(rows.iter().skip(1).all(|(_, r)| r.value(0).unwrap().as_f64().unwrap() == 1.5));
}

#[test]
fn range_touching_span_edges() {
    let catalog = world_with((1..=20).map(|p| (p, p as f64)).collect());
    // Exactly the first and last positions.
    let rows = run(&catalog, SeqQuery::base("S").build(), Span::new(1, 1));
    assert_eq!(rows.len(), 1);
    let rows = run(&catalog, SeqQuery::base("S").build(), Span::new(20, 20));
    assert_eq!(rows.len(), 1);
    // Inverted range == empty.
    let rows = run(&catalog, SeqQuery::base("S").build(), Span::new(15, 5));
    assert!(rows.is_empty());
}

#[test]
fn self_join_of_disjoint_derivations() {
    // Compose two disjoint selections of the same base: empty result, no
    // wasted scans beyond the inputs.
    let catalog = world_with((1..=50).map(|p| (p, p as f64)).collect());
    let q = SeqQuery::base("S")
        .select(Expr::attr("close").lt(Expr::lit(10.0)))
        .compose_with(SeqQuery::base("S").select(Expr::attr("close").gt(Expr::lit(40.0))))
        .build();
    // The same base twice is fine — distinct leaf nodes.
    let rows = run(&catalog, q, Span::new(1, 50));
    assert!(rows.is_empty());
}

#[test]
fn deep_operator_chain() {
    let catalog = world_with((1..=200).map(|p| (p, (p % 17) as f64)).collect());
    // Five stacked non-unit-scope operators: blocks chain correctly.
    let q = SeqQuery::base("S")
        .aggregate(AggFunc::Sum, "close", Window::trailing(3))
        .aggregate(AggFunc::Max, "sum_close", Window::trailing(4))
        .previous()
        .aggregate(AggFunc::Min, "max_sum_close", Window::trailing(2))
        .aggregate(AggFunc::Avg, "min_max_sum_close", Window::trailing(5))
        .build();
    let optimized =
        optimize(&q, &CatalogRef(&catalog), &OptimizerConfig::new(Span::new(1, 220))).unwrap();
    assert_eq!(optimized.block_count, 5);
    let rows = execute(&optimized.plan, &ExecContext::new(&catalog)).unwrap();
    assert!(!rows.is_empty());
}

#[test]
fn probe_positions_outside_everything() {
    use seqproc::prelude::probe_positions;
    let catalog = world_with(vec![(5, 1.0)]);
    let q = SeqQuery::base("S").build();
    let optimized =
        optimize(&q, &CatalogRef(&catalog), &OptimizerConfig::new(Span::new(1, 10))).unwrap();
    let ctx = ExecContext::new(&catalog);
    let out =
        probe_positions(&optimized.plan, &ctx, &[i64::MIN + 2, -1, 5, 11, i64::MAX - 2]).unwrap();
    let hits: Vec<bool> = out.iter().map(|(_, r)| r.is_some()).collect();
    assert_eq!(hits, vec![false, false, true, false, false]);
}

#[test]
fn all_records_filtered_out() {
    let catalog = world_with((1..=30).map(|p| (p, p as f64)).collect());
    let q = SeqQuery::base("S")
        .select(Expr::attr("close").gt(Expr::lit(1e9)))
        .aggregate(AggFunc::Count, "close", Window::Cumulative)
        .build();
    let rows = run(&catalog, q, Span::new(1, 30));
    assert!(rows.is_empty(), "cumulative over an empty selection yields nothing");
}
